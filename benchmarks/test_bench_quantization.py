"""Quantization extension bench: accuracy vs weight precision.

Reproduces the premise of the paper's ref [10] (quantized MANNs):
inference accuracy holds at moderate fixed-point precision and
collapses at very low precision, while model-transfer bytes shrink.
"""

import numpy as np

from benchmarks.conftest import persist
from repro.mann import InferenceEngine
from repro.mann.quantize import QFormat, accuracy_vs_bits
from repro.utils.tables import TextTable


def test_bench_quantization_sweep(benchmark, full_suite):
    systems = [full_suite.tasks[t] for t in full_suite.task_ids[:8]]

    def evaluate_suite(frac_bits_sweep=(12, 8, 6, 4, 2)):
        rows = []
        for frac_bits in frac_bits_sweep:
            accuracies = []
            bytes_total = 0
            for system in systems:
                batch = system.test_batch

                def evaluate(weights, batch=batch):
                    return InferenceEngine(weights).accuracy(
                        batch.stories,
                        batch.questions,
                        batch.answers,
                        batch.story_lengths,
                    )

                sweep = accuracy_vs_bits(
                    system.weights, evaluate, frac_bits_sweep=(frac_bits,)
                )
                _, accuracy, report = sweep[0]
                accuracies.append(accuracy)
                bytes_total += report.quantized_bytes
            rows.append((frac_bits, float(np.mean(accuracies)), bytes_total))
        return rows

    rows = benchmark.pedantic(evaluate_suite, rounds=1, iterations=1)

    baseline = float(
        np.mean(
            [
                InferenceEngine(s.weights).accuracy(
                    s.test_batch.stories,
                    s.test_batch.questions,
                    s.test_batch.answers,
                    s.test_batch.story_lengths,
                )
                for s in systems
            ]
        )
    )
    table = TextTable(
        ["format", "mean accuracy", "total model bytes"],
        title=f"Quantization sweep (float64 baseline {baseline:.3f})",
    )
    for frac_bits, accuracy, nbytes in rows:
        table.add_row([str(QFormat(3, frac_bits)), f"{accuracy:.3f}", str(nbytes)])
    persist("quantization", table.render())

    by_bits = {frac: acc for frac, acc, _ in rows}
    # Accuracy holds at >= 8 fractional bits and collapses at 2.
    assert by_bits[12] >= baseline - 0.01
    assert by_bits[8] >= baseline - 0.03
    assert by_bits[2] < baseline - 0.05
    # Bytes shrink monotonically with precision.
    sizes = [nbytes for _, _, nbytes in rows]
    assert sizes == sorted(sizes, reverse=True)
