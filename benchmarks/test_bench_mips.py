"""Per-query vs batched throughput of every registered MIPS backend.

Runs each backend over an identical 500-query batch (vocabulary-sized
output rows, trained-threshold-style model fitted on synthetic logits)
three ways: the seed per-row Python loop (exact only), a per-query
``search`` loop, and one vectorized ``search_batch`` call. Persists the
table to ``benchmarks/output/mips_backends.txt``. The acceptance floor
is a 5x speedup for the vectorized exact scan over its per-query loop.
"""

import time

import numpy as np

from benchmarks.conftest import persist
from repro.mips import ExactMips, available_backends, build_backend, fit_threshold_model
from repro.utils.tables import TextTable

N_QUERIES = 500
VOCAB = 170  # the suite's shared-vocabulary scale
EMBED = 20
MIN_EXACT_SPEEDUP = 5.0


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_bench_mips_backend_throughput(benchmark):
    rng = np.random.default_rng(17)
    weight = rng.normal(size=(VOCAB, EMBED))
    queries = rng.normal(size=(N_QUERIES, EMBED))
    # Threshold model fitted on the weight's own argmax structure, as
    # Algorithm 1 fits on trained-model logits.
    train = rng.normal(size=(2000, EMBED))
    logits = train @ weight.T
    model = fit_threshold_model(logits, logits.argmax(axis=1))

    table = TextTable(
        [
            "backend",
            "per-query (ms)",
            "batched (ms)",
            "speedup",
            "mean comparisons",
            "early-exit rate",
        ],
        title=(
            f"MIPS backends — {N_QUERIES} queries, |I|={VOCAB}, |E|={EMBED} "
            "(per-query search loop vs vectorized search_batch)"
        ),
    )

    exact_speedup = None
    for name in available_backends():
        engine = build_backend(name, weight, threshold_model=model, seed=0)

        def per_query(engine=engine):
            return [engine.search(q) for q in queries]

        def batched(engine=engine):
            return engine.search_batch(queries)

        reference = per_query()  # warm-up + reference results
        batch_results = batched()
        assert np.array_equal(
            batch_results.labels, [r.label for r in reference]
        ), f"{name}: batch kernel disagrees with per-query loop"

        # Best-of-N on both sides keeps the ratio stable on noisy runners.
        loop_seconds = min(_timed(per_query) for _ in range(3))
        batch_seconds = min(_timed(batched) for _ in range(5))
        speedup = loop_seconds / batch_seconds
        if name == "exact":
            exact_speedup = speedup

        table.add_row(
            [
                name,
                f"{loop_seconds * 1e3:.2f}",
                f"{batch_seconds * 1e3:.2f}",
                f"{speedup:.1f}x",
                f"{batch_results.mean_comparisons:.1f}",
                f"{batch_results.early_exit_rate:.3f}",
            ]
        )

    # The seed implementation for context: the O(V) per-row Python loop
    # the vectorized exact scan replaced.
    exact = ExactMips(weight)
    seed_seconds = min(
        _timed(lambda: [exact._search_loop(q) for q in queries]) for _ in range(3)
    )
    batch_seconds = min(_timed(lambda: exact.search_batch(queries)) for _ in range(5))
    table.add_row(
        [
            "exact python loop (seed)",
            f"{seed_seconds * 1e3:.2f}",
            f"{batch_seconds * 1e3:.2f}",
            f"{seed_seconds / batch_seconds:.1f}x",
            f"{VOCAB}.0",
            "0.000",
        ]
    )

    benchmark(lambda: exact.search_batch(queries))
    persist("mips_backends", table.render())
    assert exact_speedup is not None and exact_speedup >= MIN_EXACT_SPEEDUP, (
        f"vectorized exact search_batch only {exact_speedup:.1f}x faster "
        f"than the per-query loop (floor {MIN_EXACT_SPEEDUP}x)"
    )
