"""Fig. 4: per-task energy efficiency normalised to the GPU."""

import numpy as np
import pytest

from benchmarks.conftest import persist
from repro.eval.experiments import run_fig4


@pytest.fixture(scope="module")
def fig4(full_suite):
    return run_fig4(full_suite)


def test_bench_fig4(benchmark, full_suite):
    result = benchmark.pedantic(
        run_fig4, args=(full_suite,), rounds=1, iterations=1
    )
    lines = [result.to_table().render(), ""]
    best = result.best_config_per_task()
    lines.append(
        "best configuration per task: "
        + ", ".join(f"{t}:{best[t]}" for t in result.task_ids)
    )
    persist("fig4", "\n".join(lines))


class TestFig4PaperShape:
    def test_fpga_wins_every_task(self, fig4):
        """Paper: FPGA most energy-efficient across all 20 tasks."""
        for task_id in fig4.task_ids:
            fpga_best = max(
                fig4.series[name][task_id]
                for name in fig4.series
                if name.startswith("FPGA")
            )
            assert fpga_best > fig4.series["CPU"][task_id]
            assert fpga_best > 1.0  # > GPU

    def test_ith_increases_margin(self, fig4):
        """Paper: 'inference thresholding increased the margin'.

        Per task the margin is >= (tasks whose thresholds never fire
        tie exactly); across the suite it must be strictly positive.
        """
        import numpy as np

        for mhz in (25, 100):
            ith = np.array(
                [fig4.series[f"FPGA+ITH {mhz} MHz"][t] for t in fig4.task_ids]
            )
            plain = np.array(
                [fig4.series[f"FPGA {mhz} MHz"][t] for t in fig4.task_ids]
            )
            assert (ith >= plain - 1e-9).all()
            assert ith.mean() > plain.mean()

    def test_per_task_spread(self, fig4):
        """Paper's per-task ratios span 19x-534x; ours must spread too."""
        values = list(fig4.series["FPGA+ITH 100 MHz"].values())
        assert max(values) / min(values) > 1.5
        assert 40.0 < np.mean(values) < 350.0

    def test_cpu_band_per_task(self, fig4):
        for value in fig4.series["CPU"].values():
            assert 1.2 < value < 2.6  # paper average ~1.7

    def test_efficiency_magnitude_band(self, fig4):
        """Every FPGA config should sit in the tens-to-hundreds range."""
        for name in fig4.series:
            if not name.startswith("FPGA"):
                continue
            for value in fig4.series[name].values():
                assert 20.0 < value < 600.0, (name, value)
