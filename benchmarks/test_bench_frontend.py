"""Open-loop goodput ladder: the async SLO front end under overload.

Closed-loop benchmarks (submit, wait, repeat) can never overload a
server — the client self-throttles to the service rate. Production
traffic doesn't: arrivals follow the *offered* rate, and when that
exceeds capacity the pending queue grows without bound, every request
ages past its deadline while queued, and measured "throughput" stays
flat while **goodput** (answers that land inside their SLO budget)
collapses. Admission control exists for exactly this regime: shedding
the excess at the door keeps the queue — and therefore the latency of
every *admitted* request — bounded, trading rejected requests for
answers that still arrive in time.

This benchmark measures that trade directly. It calibrates the
predictor's closed-loop capacity R, then drives an open-loop qps
ladder (0.5x, 2x, 6x R) through :class:`AsyncFrontend` twice per
rung — no admission control (unbounded queue) vs a bounded queue with
``overload_policy="shed"`` — with every request carrying the same
deadline. Persisted artifacts:

* ``benchmarks/output/frontend.txt`` — the human-readable ladder, and
* the ``serving_frontend`` summary in
  ``benchmarks/output/BENCH_serving.json`` (goodput, shed/expired
  counts, admitted-latency percentiles per rung) that CI archives and
  asserts on.

The acceptance floor this PR ships on: at the top rung the shed
policy's goodput is strictly above the no-admission-control baseline,
and its admitted p99 stays below the baseline's (which scales with the
backlog, not the batch). The model is a production-shaped synthetic
MANN (vocab 400, embed 64) with 128 memory slots — deliberately heavy,
~1k req/s, so flush times (tens of ms) dwarf thread-wakeup jitter and
the contrast is queueing theory, not scheduler noise. Single-core
safe; the deadline and request count both scale with the measured
capacity to keep the margins machine-independent.
"""

from __future__ import annotations

import asyncio
import math
import time

import numpy as np

from benchmarks.conftest import persist, persist_bench_summary

from repro.mann.batch import BatchInferenceEngine
from repro.mann.config import MannConfig
from repro.mann.weights import MannWeights
from repro.serving import (
    AsyncFrontend,
    BatchScheduler,
    DeadlineExceededError,
    OverloadError,
    QueryRequest,
)
from repro.serving.predictor import SoftwarePredictor
from repro.utils.tables import TextTable

VOCAB = 400
EMBED = 64
MEMORY = 128
WORDS = 10
MAX_BATCH = 32
QUEUE_CAP = 32
N_CALIBRATE = 256
#: Offered load as multiples of the calibrated closed-loop capacity.
LADDER = (0.5, 2.0, 6.0)
OVERLOAD_X = 6.0
#: Deadline budget in flush-times (MAX_BATCH / capacity), floored in
#: seconds so scheduler wakeup jitter never dominates the budget.
DEADLINE_FLUSHES = 4.0
DEADLINE_FLOOR_S = 0.05
#: Requests at the overload rung: sized so the baseline's unbounded
#: backlog outgrows the deadline with ~2x margin over the shed path's
#: goodput (see the derivation in _ladder_plan).
OVERLOAD_DEMAND = 15.0


def _production_weights() -> MannWeights:
    rng = np.random.default_rng(11)
    config = MannConfig(
        vocab_size=VOCAB, embed_dim=EMBED, memory_size=MEMORY, hops=3
    )

    def w(*shape):
        return rng.normal(0.0, 0.1, shape)

    return MannWeights(
        config,
        w(VOCAB, EMBED),
        w(VOCAB, EMBED),
        w(VOCAB, EMBED),
        w(EMBED, EMBED),
        w(VOCAB, EMBED),
        w(MEMORY, EMBED),
        w(MEMORY, EMBED),
    )


def _requests(n: int, deadline_s: float | None, seed: int) -> list[QueryRequest]:
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n):
        length = int(rng.integers(MEMORY // 2, MEMORY + 1))
        story = np.zeros((MEMORY, WORDS), dtype=np.int64)
        story[:length] = rng.integers(1, VOCAB, (length, WORDS))
        requests.append(
            QueryRequest(
                story,
                rng.integers(1, VOCAB, WORDS).astype(np.int64),
                n_sentences=length,
                request_id=i,
                deadline_s=deadline_s,
            )
        )
    return requests


def _calibrate_capacity(predictor) -> float:
    """Closed-loop service rate (requests/s) at full batches — the
    ceiling any open-loop rung is offered against."""
    requests = _requests(N_CALIBRATE, None, seed=3)
    best = math.inf
    for _ in range(2):  # first pass doubles as BLAS warm-up
        with BatchScheduler(
            predictor, max_batch=MAX_BATCH, start_worker=False
        ) as scheduler:
            start = time.perf_counter()
            futures = [scheduler.submit(r) for r in requests]
            scheduler.flush()
            for future in futures:
                future.result()
            best = min(best, time.perf_counter() - start)
    return N_CALIBRATE / best


def _drive_open_loop(predictor, requests, offered_qps, queue_cap, policy):
    """One open-loop pass: arrivals paced at ``offered_qps`` regardless
    of completions. Returns (wall_seconds, outcome counts, stats)."""
    scheduler = BatchScheduler(
        predictor,
        max_batch=MAX_BATCH,
        max_wait_s=0.002,
        queue_cap=queue_cap,
        overload_policy=policy,
        inline_flush=False,
    )

    async def drive():
        async with AsyncFrontend(scheduler) as frontend:
            loop = asyncio.get_running_loop()
            epoch = loop.time()
            waves = []
            for i, request in enumerate(requests):
                delay = epoch + i / offered_qps - loop.time()
                if delay > 0.0005:  # sub-ms pacing is wakeup noise
                    await asyncio.sleep(delay)
                waves.append(asyncio.ensure_future(frontend.query(request)))
            return await asyncio.gather(*waves, return_exceptions=True)

    start = time.perf_counter()
    results = asyncio.run(drive())
    seconds = time.perf_counter() - start

    served = sum(not isinstance(r, BaseException) for r in results)
    shed = sum(isinstance(r, OverloadError) for r in results)
    expired = sum(isinstance(r, DeadlineExceededError) for r in results)
    # The never-strand contract: every result is an answer or typed.
    assert served + shed + expired == len(results)
    return seconds, served, shed, expired, scheduler.stats


def _ladder_plan(capacity_qps: float) -> tuple[float, int]:
    """(deadline_s, n_overload): both scale with measured capacity.

    At overload factor k the unbounded baseline's backlog grows at
    (k-1)/k of arrivals, so only ~capacity * deadline * k/(k-1)
    requests complete inside the budget regardless of n; the shed
    path's goodput is ~n/k. n = OVERLOAD_DEMAND * capacity * deadline
    makes the shed path ~2x the baseline with machine-independent
    margins.
    """
    deadline_s = max(DEADLINE_FLUSHES * MAX_BATCH / capacity_qps,
                     DEADLINE_FLOOR_S)
    n_overload = int(math.ceil(OVERLOAD_DEMAND * capacity_qps * deadline_s))
    return deadline_s, n_overload


def test_bench_open_loop_goodput_ladder():
    predictor = SoftwarePredictor(
        BatchInferenceEngine(_production_weights(), "exact")
    )
    capacity_qps = _calibrate_capacity(predictor)
    deadline_s, n_overload = _ladder_plan(capacity_qps)

    table = TextTable(
        [
            "offered",
            "policy",
            "requests",
            "served/s",
            "goodput",
            "shed",
            "expired",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
        ],
        title=(
            f"Async front end, open loop — capacity {capacity_qps:.0f} "
            f"req/s, deadline {deadline_s * 1e3:.1f} ms, "
            f"max_batch={MAX_BATCH}, queue cap {QUEUE_CAP}, exact backend"
        ),
    )
    rows = []
    goodput_at_overload = {}
    p99_at_overload = {}
    for factor in LADDER:
        offered_qps = factor * capacity_qps
        # Sub-capacity rungs only demonstrate health — keep them short.
        n = n_overload if factor > 1.0 else max(256, n_overload // 4)
        for policy_label, queue_cap, policy in (
            ("baseline", None, "block"),
            ("shed", QUEUE_CAP, "shed"),
        ):
            requests = _requests(n, deadline_s, seed=int(factor * 10))
            seconds, served, shed, expired, stats = _drive_open_loop(
                predictor, requests, offered_qps, queue_cap, policy
            )
            goodput = stats.goodput_rate
            row = {
                "offered_x": factor,
                "offered_qps": offered_qps,
                "policy": policy_label,
                "requests": n,
                "served": served,
                "shed": shed,
                "expired": expired,
                "served_per_s": served / seconds,
                "goodput": goodput,
                "p50_ms": stats.p50_latency_s * 1e3,
                "p95_ms": stats.p95_latency_s * 1e3,
                "p99_ms": stats.p99_latency_s * 1e3,
            }
            rows.append(row)
            if factor == OVERLOAD_X:
                goodput_at_overload[policy_label] = goodput
                p99_at_overload[policy_label] = stats.p99_latency_s
            table.add_row(
                [
                    f"{factor:.1f}x",
                    policy_label,
                    str(n),
                    f"{row['served_per_s']:.0f}",
                    f"{goodput:.1%}",
                    str(shed),
                    str(expired),
                    f"{row['p50_ms']:.2f}",
                    f"{row['p95_ms']:.2f}",
                    f"{row['p99_ms']:.2f}",
                ]
            )
            # Consistency between frontend-observed and stats counters.
            assert stats.shed == shed and stats.expired == expired
            assert stats.offered == n

    # The acceptance floor: under overload, shedding buys goodput and
    # a bounded admitted-latency tail; without admission control the
    # backlog eats the deadline.
    assert goodput_at_overload["shed"] > goodput_at_overload["baseline"], (
        f"shed goodput {goodput_at_overload['shed']:.1%} not above "
        f"baseline {goodput_at_overload['baseline']:.1%} at "
        f"{OVERLOAD_X}x offered load"
    )
    assert p99_at_overload["shed"] < p99_at_overload["baseline"], (
        "admission control failed to bound the admitted p99 under "
        f"overload: shed {p99_at_overload['shed'] * 1e3:.1f} ms vs "
        f"baseline {p99_at_overload['baseline'] * 1e3:.1f} ms"
    )

    text = table.render()
    persist("frontend", text)
    persist_bench_summary(
        "serving_frontend",
        {
            "benchmark": "serving_frontend",
            "capacity_qps": capacity_qps,
            "deadline_ms": deadline_s * 1e3,
            "max_batch": MAX_BATCH,
            "queue_cap": QUEUE_CAP,
            "overload_x": OVERLOAD_X,
            "goodput_overload_shed": goodput_at_overload["shed"],
            "goodput_overload_baseline": goodput_at_overload["baseline"],
            "p99_overload_shed_ms": p99_at_overload["shed"] * 1e3,
            "p99_overload_baseline_ms": p99_at_overload["baseline"] * 1e3,
            "rows": rows,
        },
    )
