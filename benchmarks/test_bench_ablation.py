"""Ablation benches: the Section V interface estimate plus the design
choices DESIGN.md calls out (index ordering, FIFO depth, transfer
overlap, MIPS baselines)."""

import numpy as np
import pytest

from benchmarks.conftest import persist
from repro.eval.experiments import (
    collect_fpga_artifacts,
    run_interface_ablation,
)
from repro.hw import HwConfig, MannAccelerator
from repro.mips import AlshMips, ClusteringMips, ExactMips, InferenceThresholding
from repro.utils.tables import TextTable


def test_bench_interface_ablation(benchmark, full_suite):
    """Paper: ~162x less energy than the GPU with the interface removed."""
    result = benchmark.pedantic(
        run_interface_ablation, args=(full_suite,), rounds=1, iterations=1
    )
    persist("interface_ablation", result.to_table().render())
    assert result.without_interface > 2.5 * result.with_interface
    assert 60.0 < result.without_interface < 450.0


def test_bench_index_ordering_ablation(benchmark, full_suite):
    """Step 3 ablation across the whole suite: ordering must reduce the
    mean number of comparisons at rho=1.0."""

    def run():
        queries_per_system = {}
        for task_id, system in full_suite.tasks.items():
            batch = system.test_batch
            queries_per_system[task_id] = system.batch_engine.forward_trace(
                batch.stories, batch.questions, batch.story_lengths
            ).h_final
        totals = {}
        for ordering in (True, False):
            comparisons = 0
            queries = 0
            for task_id, system in full_suite.tasks.items():
                engine = InferenceThresholding(
                    system.weights.w_o,
                    system.threshold_model,
                    rho=1.0,
                    use_index_ordering=ordering,
                )
                for h in queries_per_system[task_id]:
                    comparisons += engine.search(h).comparisons
                    queries += 1
            totals[ordering] = comparisons / queries
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["index ordering", "mean comparisons"], title="Step 3 ablation"
    )
    table.add_row(["silhouette order", f"{totals[True]:.1f}"])
    table.add_row(["natural order", f"{totals[False]:.1f}"])
    persist("ordering_ablation", table.render())
    assert totals[True] < totals[False]


def test_bench_transfer_overlap_ablation(benchmark, task1_system):
    """Overlapping the host stream with compute (the DFA's streaming
    promise) bounds wall time by max(interface, compute) instead of the
    sum."""
    weights = task1_system.weights

    def run():
        rows = {}
        for overlap in (False, True):
            config = HwConfig(
                frequency_mhz=25.0, overlap_host_transfer=overlap
            ).with_embed_dim(weights.config.embed_dim)
            accelerator = MannAccelerator(
                weights, config, task1_system.threshold_model
            )
            rows[overlap] = accelerator.run(task1_system.test_batch)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows[True].wall_seconds < rows[False].wall_seconds
    expected = max(
        rows[True].interface_seconds, rows[True].compute_seconds
    )
    assert rows[True].wall_seconds == pytest.approx(expected)


def test_bench_fifo_depth_sensitivity(benchmark, task1_system):
    """The synchronous per-example protocol should be insensitive to
    FIFO depth (no long bursts in flight) — an architectural check."""
    weights = task1_system.weights

    def run():
        cycles = {}
        for depth in (2, 16, 64):
            config = HwConfig(
                frequency_mhz=25.0, fifo_depth=depth
            ).with_embed_dim(weights.config.embed_dim)
            report = MannAccelerator(
                weights, config, task1_system.threshold_model
            ).run(task1_system.test_batch)
            cycles[depth] = report.total_cycles
        return cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    values = list(cycles.values())
    spread = (max(values) - min(values)) / min(values)
    assert spread < 0.02


def test_bench_mips_baselines(benchmark, full_suite):
    """Related-work comparison: ITH vs ALSH vs clustering MIPS."""
    systems = [full_suite.tasks[t] for t in full_suite.task_ids[:6]]

    def run():
        queries_per_system = []
        for system in systems:
            batch = system.test_batch
            idx = np.arange(0, len(batch), 2)
            queries_per_system.append(
                system.batch_engine.forward_trace(
                    batch.stories[idx], batch.questions[idx],
                    batch.story_lengths[idx],
                ).h_final
            )
        rows = []
        for name, factory in (
            ("exact", lambda s: ExactMips(s.weights.w_o)),
            (
                "ITH rho=1.0",
                lambda s: InferenceThresholding(
                    s.weights.w_o, s.threshold_model, rho=1.0
                ),
            ),
            ("ALSH", lambda s: AlshMips(s.weights.w_o, seed=0)),
            ("clustering", lambda s: ClusteringMips(s.weights.w_o, seed=0)),
        ):
            agree = comparisons = total = 0
            for system, h_final in zip(systems, queries_per_system):
                exact = ExactMips(system.weights.w_o)
                engine = factory(system)
                for h in h_final:
                    reference = exact.search(h)
                    result = engine.search(h)
                    agree += int(result.label == reference.label)
                    comparisons += result.comparisons
                    total += 1
            rows.append((name, agree / total, comparisons / total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["engine", "agreement", "mean dots"], title="MIPS baselines"
    )
    for name, agreement, mean_cmp in rows:
        table.add_row([name, f"{agreement:.3f}", f"{mean_cmp:.1f}"])
    persist("mips_baselines", table.render())

    by_name = {name: (agreement, cmp) for name, agreement, cmp in rows}
    assert by_name["exact"][0] == 1.0
    assert by_name["ITH rho=1.0"][0] > 0.95
    # ITH must beat the exact scan on work.
    assert by_name["ITH rho=1.0"][1] < by_name["exact"][1]
