"""Streaming-pipeline bench: the future-work throughput extension.

Compares the paper's synchronous per-example protocol with the
double-buffered streaming pipeline (transfer / write / read+output
overlapped) at several clocks, quantifying how much of the interface
bound the DFA could hide.
"""

import numpy as np

from benchmarks.conftest import persist
from repro.hw import HwConfig
from repro.hw.streaming import run_streaming
from repro.utils.tables import TextTable


def test_bench_streaming_pipeline(benchmark, full_suite):
    systems = [full_suite.tasks[t] for t in (1, 2, 6, 15)]

    def run():
        rows = []
        for mhz in (25.0, 100.0):
            streaming_cycles = 0
            sequential_cycles = 0
            for system in systems:
                config = HwConfig(frequency_mhz=mhz).with_embed_dim(
                    system.weights.config.embed_dim
                )
                report = run_streaming(
                    system.test_batch,
                    config,
                    system.weights.config.hops,
                    system.weights.config.vocab_size,
                )
                streaming_cycles += report.total_cycles_streaming
                sequential_cycles += report.total_cycles_sequential
            rows.append((mhz, sequential_cycles, streaming_cycles))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["clock (MHz)", "synchronous (cycles)", "streaming (cycles)", "speedup"],
        title="Double-buffered streaming vs the paper's synchronous protocol",
    )
    for mhz, sequential, streaming in rows:
        table.add_row(
            [
                f"{mhz:.0f}",
                str(sequential),
                str(streaming),
                f"{sequential / streaming:.2f}x",
            ]
        )
    persist("streaming_pipeline", table.render())

    speedups = {mhz: sequential / streaming for mhz, sequential, streaming in rows}
    for speedup in speedups.values():
        assert 1.05 < speedup < 3.5  # pipeline gains, bounded by 3 stages
    # At high clocks the pipeline is transfer-stage-limited, so the
    # overlap buys less than at low clocks (same bound as Section V).
    assert speedups[25.0] > speedups[100.0]
