"""Fig. 3: accuracy / comparison counts vs rho, with/without ordering."""

import pytest

from benchmarks.conftest import persist
from repro.eval.experiments import run_fig3


@pytest.fixture(scope="module")
def fig3(full_suite):
    return run_fig3(full_suite)


def test_bench_fig3(benchmark, full_suite):
    result = benchmark.pedantic(
        run_fig3, args=(full_suite,), rounds=1, iterations=1
    )
    persist("fig3", result.to_table().render())


class TestFig3PaperShape:
    def test_comparisons_drop_with_ith(self, fig3):
        """Paper: ~55-75% of the full scan depending on rho."""
        for rho in (1.0, 0.99, 0.95, 0.9):
            p = fig3.point(rho, index_ordering=True)
            assert 0.05 < p.normalised_comparisons < 0.9

    def test_comparisons_monotone_in_rho(self, fig3):
        values = [
            fig3.point(rho, True).normalised_comparisons
            for rho in (1.0, 0.99, 0.95, 0.9)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_accuracy_monotone_in_rho(self, fig3):
        """Lower rho trades accuracy for speed (within noise)."""
        values = [
            fig3.point(rho, True).normalised_accuracy
            for rho in (1.0, 0.9)
        ]
        assert values[1] <= values[0] + 0.01

    def test_rho_1_accuracy_loss_tiny(self, fig3):
        """Paper: less than 0.1% at rho=1.0; we allow 2% on the
        synthetic suite."""
        assert fig3.point(1.0, True).normalised_accuracy > 0.98

    def test_ordering_improves_both_axes(self, fig3):
        """Paper: 'Ordering improves both accuracy and speed.'

        Speed improves at every rho. On the synthetic suite the
        accuracy side holds at conservative thresholds (rho >= 0.95)
        but can dip at the aggressive rho = 0.9 point, where ordering
        front-loads indices whose loosened thresholds mis-fire — so the
        accuracy claim is asserted for the conservative sweep only (the
        paper's own operating point is rho = 1.0).
        """
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        rhos = (1.0, 0.99, 0.95, 0.9)
        cmp_ordered = mean(
            [fig3.point(r, True).normalised_comparisons for r in rhos]
        )
        cmp_unordered = mean(
            [fig3.point(r, False).normalised_comparisons for r in rhos]
        )
        assert cmp_ordered < cmp_unordered

        conservative = (1.0, 0.99, 0.95)
        acc_ordered = mean(
            [fig3.point(r, True).normalised_accuracy for r in conservative]
        )
        acc_unordered = mean(
            [fig3.point(r, False).normalised_accuracy for r in conservative]
        )
        assert acc_ordered >= acc_unordered - 0.01
