"""Batch-vs-loop wall time of host-side inference on 500 bAbI examples.

Compares the vectorised :class:`BatchInferenceEngine` against the seed
per-example ``forward_trace`` loop (what `InferenceEngine.predict` did
before it was batched) on an identical 500-example task-1 batch, and
persists the measured speedup. The acceptance floor is 5x.
"""

import time

import numpy as np

from benchmarks.conftest import persist
from repro.babi import generate_task_dataset
from repro.mann import BatchInferenceEngine, InferenceEngine, MemoryNetwork
from repro.mann.config import MannConfig
from repro.utils.tables import TextTable

N_EXAMPLES = 500
MIN_SPEEDUP = 5.0


def _loop_predict(engine: InferenceEngine, batch) -> np.ndarray:
    """The seed implementation: one forward_trace per example."""
    preds = np.zeros(len(batch), dtype=np.int64)
    for i in range(len(batch)):
        preds[i] = engine.forward_trace(
            batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
        ).prediction
    return preds


def test_bench_batch_speedup(benchmark):
    train, _ = generate_task_dataset(
        task_id=1, n_train=N_EXAMPLES, n_test=10, seed=21
    )
    batch = train.encode()
    # Timing is weight-independent; an untrained snapshot keeps the
    # bench self-contained (no session-scoped suite training needed).
    config = MannConfig(
        vocab_size=train.vocab_size,
        embed_dim=20,
        memory_size=train.memory_size,
        seed=5,
    )
    weights = MemoryNetwork(config).export_weights()
    engine = InferenceEngine(weights)
    batch_engine = BatchInferenceEngine(weights)

    loop_preds = _loop_predict(engine, batch)  # warm-up + reference
    # Best-of-N on both sides keeps the ratio stable on noisy runners.
    loop_seconds = min(
        _timed(lambda: _loop_predict(engine, batch)) for _ in range(3)
    )

    def batched():
        return batch_engine.predict(
            batch.stories, batch.questions, batch.story_lengths
        )

    batch_preds = benchmark(batched)
    batch_seconds = min(_timed(batched) for _ in range(5))

    assert np.array_equal(batch_preds, loop_preds)
    speedup = loop_seconds / batch_seconds

    table = TextTable(
        ["path", "wall time (ms)", "per example (us)", "speedup"],
        title=f"Batch vs per-example inference — {len(batch)} bAbI examples",
    )
    table.add_row(
        [
            "per-example forward_trace loop (seed)",
            f"{loop_seconds * 1e3:.2f}",
            f"{loop_seconds / len(batch) * 1e6:.1f}",
            "1.0x",
        ]
    )
    table.add_row(
        [
            "BatchInferenceEngine.predict",
            f"{batch_seconds * 1e3:.2f}",
            f"{batch_seconds / len(batch) * 1e6:.1f}",
            f"{speedup:.1f}x",
        ]
    )
    persist("batch_speedup", table.render())
    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.1f}x faster than the per-example loop"
    )


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
