"""Serving throughput: micro-batching scheduler vs one-at-a-time.

The serving question PR 1/2 left open: vectorised kernels only pay off
if individually arriving requests actually reach them as batches. This
benchmark submits the same request stream (a) one ``predict`` call at a
time — every request is a batch of one — and (b) through
:class:`repro.serving.BatchScheduler`, which coalesces them into
``max_batch``-sized flushes. Persisted to
``benchmarks/output/serving_throughput.txt``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import persist

from repro.serving import BatchScheduler, QueryRequest, open_predictor
from repro.utils.tables import TextTable

N_REQUESTS = 512
MAX_BATCH = 32
#: The scheduler must beat per-request submission at least this much;
#: measured runs show far more (the batch engine is ~20x cheaper per
#: example and scheduler overhead is microseconds per request).
MIN_SPEEDUP = 2.0
#: Best-of-N on both phases: on congested single-core machines the
#: deadline thread can GIL-convoy with the submitting thread for a
#: whole run, so a single sample of the scheduled phase is noisy (same
#: technique as test_bench_mips).
REPEATS = 3


def _requests(batch, n: int) -> list[QueryRequest]:
    return [
        QueryRequest(
            batch.stories[i % len(batch)],
            batch.questions[i % len(batch)],
            n_sentences=int(batch.story_lengths[i % len(batch)]),
            request_id=i,
        )
        for i in range(n)
    ]


def test_scheduler_throughput_vs_one_at_a_time(full_suite):
    system = full_suite.tasks[1]
    predictor = open_predictor(full_suite, 1, mips_backend="exact")
    requests = _requests(system.test_batch, N_REQUESTS)

    # Warm both paths (BLAS init, first-flush allocation).
    predictor.predict(requests[0])
    predictor.predict_batch(requests[:MAX_BATCH])

    single_seconds, single_responses = None, None
    for _ in range(REPEATS):
        start = time.perf_counter()
        single_responses = [predictor.predict(request) for request in requests]
        seconds = time.perf_counter() - start
        single_seconds = (
            seconds if single_seconds is None else min(single_seconds, seconds)
        )

    scheduled_seconds, scheduled_responses, scheduler = None, None, None
    for _ in range(REPEATS):
        candidate = BatchScheduler(
            predictor, max_batch=MAX_BATCH, max_wait_s=0.005
        )
        start = time.perf_counter()
        with candidate:
            futures = [candidate.submit(request) for request in requests]
            responses = [future.result() for future in futures]
        seconds = time.perf_counter() - start
        if scheduled_seconds is None or seconds < scheduled_seconds:
            scheduled_seconds, scheduled_responses, scheduler = (
                seconds,
                responses,
                candidate,
            )

    assert [r.label for r in scheduled_responses] == [
        r.label for r in single_responses
    ]

    speedup = single_seconds / scheduled_seconds
    table = TextTable(
        ["submission", "requests/s", "mean batch", "mean latency (us)"],
        title=(
            f"Serving throughput — task 1, {N_REQUESTS} requests, "
            f"exact backend"
        ),
    )
    table.add_row(
        [
            "one-at-a-time predict()",
            f"{N_REQUESTS / single_seconds:,.0f}",
            "1.0",
            f"{single_seconds / N_REQUESTS * 1e6:.0f}",
        ]
    )
    table.add_row(
        [
            f"BatchScheduler(max_batch={MAX_BATCH})",
            f"{N_REQUESTS / scheduled_seconds:,.0f}",
            f"{scheduler.stats.mean_batch_size:.1f}",
            f"{scheduler.stats.mean_latency_s * 1e6:.0f}",
        ]
    )
    persist(
        "serving_throughput",
        table.render() + f"\nmicro-batching speedup: {speedup:.1f}x "
        f"(floor {MIN_SPEEDUP}x)",
    )

    assert scheduler.stats.requests == N_REQUESTS
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )
