"""Microbenchmarks of the substrates: event simulator throughput, module
cycle behaviour (Fig. 2a's O(|I|) output scan), training and generation
speed. These are pytest-benchmark timed runs rather than one-shot
pedantic calls, since each iteration is fast."""

import numpy as np

from benchmarks.conftest import persist
from repro.babi.tasks import get_generator
from repro.hw import HwConfig, MannAccelerator
from repro.hw.kernel import Environment
from repro.hw.latency import LatencyParams
from repro.mann import MemoryNetwork, Trainer
from repro.mips import ExactMips, InferenceThresholding
from repro.utils.tables import TextTable


def test_bench_event_sim_throughput(benchmark, task1_system):
    """Examples simulated per second through the full five-module DFA."""
    weights = task1_system.weights
    config = HwConfig(frequency_mhz=25.0).with_embed_dim(
        weights.config.embed_dim
    )
    accelerator = MannAccelerator(weights, config, task1_system.threshold_model)
    batch = task1_system.test_batch

    report = benchmark(accelerator.run, batch)
    assert report.total_cycles > 0


def test_bench_output_scan_is_linear_in_vocab(benchmark):
    """Fig. 2a: the OUTPUT module's scan is O(|I|)."""
    lat = LatencyParams(embed_dim=20)

    def scan_cycles():
        return [lat.output_scan_cycles(v) for v in (50, 100, 200, 400)]

    cycles = benchmark(scan_cycles)
    diffs = np.diff(cycles)
    # Doubling the vocabulary doubles the incremental cost.
    assert diffs[1] == 2 * diffs[0]
    assert diffs[2] == 2 * diffs[1]

    table = TextTable(["|I|", "cycles"], title="OUTPUT scan cycles vs |I|")
    for v, c in zip((50, 100, 200, 400), cycles):
        table.add_row([str(v), str(c)])
    persist("output_scan_scaling", table.render())


def test_bench_mips_query_latency(benchmark, task1_system):
    """Software-side per-query cost of exact vs thresholded search."""
    w = task1_system.weights.w_o
    ith = InferenceThresholding(w, task1_system.threshold_model, rho=1.0)
    batch = task1_system.test_batch
    h = task1_system.engine.forward_trace(
        batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
    ).h_final

    result = benchmark(ith.search, h)
    assert result.comparisons <= w.shape[0]


def test_bench_exact_mips_query(benchmark, task1_system):
    w = task1_system.weights.w_o
    exact = ExactMips(w)
    batch = task1_system.test_batch
    h = task1_system.engine.forward_trace(
        batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
    ).h_final
    result = benchmark(exact.search, h)
    assert result.comparisons == w.shape[0]


def test_bench_training_epoch(benchmark, full_suite):
    """One epoch of MemN2N training on task 1 (numpy autograd)."""
    system = full_suite.tasks[1]
    model = MemoryNetwork(system.weights.config)
    trainer = Trainer(model, seed=0)

    loss = benchmark(trainer.run_epoch, system.train_batch)
    assert np.isfinite(loss)


def test_bench_story_generation(benchmark):
    """bAbI generator throughput (task 2, the busiest world simulation)."""
    generator = get_generator(2)

    def make():
        return generator(np.random.default_rng(0), 50)

    examples = benchmark(make)
    assert len(examples) == 50


def test_bench_golden_inference(benchmark, task1_system):
    """Golden engine forward pass (the co-simulation reference)."""
    batch = task1_system.test_batch

    def run():
        return task1_system.engine.forward_trace(
            batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
        )

    trace = benchmark(run)
    assert trace.prediction is not None


def test_bench_kernel_event_rate(benchmark):
    """Raw discrete-event kernel throughput (events/second)."""

    def run():
        env = Environment()

        def chain(n):
            for _ in range(n):
                yield env.timeout(1)

        env.process(chain(2000))
        return env.run()

    final = benchmark(run)
    assert final == 2000
