"""Table I: time, power, speedup and FLOPS/kJ for every configuration.

Regenerates the paper's main table on the 20-task synthetic bAbI suite
and asserts the shape claims: device ordering, frequency scaling, the
ITH deltas and the efficiency bands.
"""

import pytest

from benchmarks.conftest import persist
from repro.eval.experiments import run_table1


@pytest.fixture(scope="module")
def table1(full_suite):
    return run_table1(full_suite)


def test_bench_table1(benchmark, full_suite):
    """Benchmark the full Table I pipeline (event sim for 20 tasks x 2)."""
    result = benchmark.pedantic(
        run_table1, args=(full_suite,), rounds=1, iterations=1
    )
    lines = [result.to_table().render(), ""]
    lines.append("ITH inference-time reduction (paper: 6-18%, max at 25 MHz):")
    for mhz in result.frequencies:
        lines.append(f"  {mhz:5.0f} MHz: {100 * result.ith_time_reduction(mhz):5.1f}%")
    lines.append(
        f"accelerator accuracy: plain={result.accuracy_plain:.3f} "
        f"ith={result.accuracy_ith:.3f}"
    )
    persist("table1", "\n".join(lines))


class TestTable1PaperShape:
    """Paper-vs-measured assertions (bands, not absolute numbers)."""

    def test_fpga_speedup_band(self, table1):
        # Paper: 5.21-7.49x.
        for mhz in (25, 50, 75, 100):
            assert 3.5 < table1.row(f"FPGA {mhz} MHz").speedup < 11.0

    def test_fpga_ith_speedup_exceeds_plain(self, table1):
        for mhz in (25, 50, 75, 100):
            assert (
                table1.row(f"FPGA+ITH {mhz} MHz").speedup
                > table1.row(f"FPGA {mhz} MHz").speedup
            )

    def test_energy_efficiency_bands(self, table1):
        # Paper: plain 83.74-126.72x, ITH 107.61-139.75x.
        plain = [
            table1.row(f"FPGA {m} MHz").energy_efficiency_vs_gpu
            for m in (25, 50, 75, 100)
        ]
        ith = [
            table1.row(f"FPGA+ITH {m} MHz").energy_efficiency_vs_gpu
            for m in (25, 50, 75, 100)
        ]
        assert all(50.0 < v < 220.0 for v in plain)
        assert all(60.0 < v < 250.0 for v in ith)
        assert all(i > p for i, p in zip(ith, plain))

    def test_cpu_row(self, table1):
        cpu = table1.row("CPU")
        assert 0.75 < cpu.speedup < 1.15  # paper 0.94
        assert 1.3 < cpu.energy_efficiency_vs_gpu < 2.4  # paper 1.70

    def test_power_band(self, table1):
        # Paper: 14.71-20.53 W across the FPGA rows.
        for mhz in (25, 50, 75, 100):
            for label in ("FPGA", "FPGA+ITH"):
                power = table1.row(f"{label} {mhz} MHz").power_w
                assert 13.0 < power < 23.0

    def test_ith_time_reduction_band(self, table1):
        # Paper: 6-18% depending on frequency, monotone in frequency.
        reductions = [
            table1.ith_time_reduction(m) for m in (25.0, 50.0, 75.0, 100.0)
        ]
        assert 0.04 < reductions[0] < 0.25
        assert 0.015 < reductions[-1] < 0.12
        assert reductions == sorted(reductions, reverse=True)

    def test_frequency_scaling_sublinear(self, table1):
        t25 = table1.row("FPGA 25 MHz").seconds
        t100 = table1.row("FPGA 100 MHz").seconds
        # Paper: 43.54 -> 30.28 s (1.44x from a 4x clock).
        assert 1.2 < t25 / t100 < 2.2

    def test_ith_accuracy_cost_small(self, table1):
        assert table1.accuracy_ith >= table1.accuracy_plain - 0.02
