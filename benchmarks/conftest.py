"""Benchmark fixtures: the full 20-task suite, built once per session.

Benchmarks print the reproduced tables/series to stdout (run with
``-s`` to see them live) and persist them under benchmarks/output/.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.eval.suite import BabiSuite, SuiteConfig

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def persist(name: str, text: str) -> None:
    """Print a reproduced table and save it next to the benchmarks."""
    print("\n" + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def persist_bench_summary(key: str, summary: dict) -> None:
    """Merge one benchmark's machine-readable summary into
    ``benchmarks/output/BENCH_serving.json`` under its own top-level
    key, so several serving benchmarks (sharding ladder, caching
    ladder, ...) archive into the one file CI uploads without
    clobbering each other. Pre-existing single-summary files (the
    legacy flat format with a ``"benchmark"`` name field) are wrapped
    under their own name on first contact.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_serving.json"
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    if isinstance(data, dict) and isinstance(data.get("benchmark"), str):
        data = {data["benchmark"]: data}  # migrate the legacy flat layout
    if not isinstance(data, dict):
        data = {}
    data[key] = summary
    path.write_text(json.dumps(data, indent=2) + "\n")


@pytest.fixture(scope="session")
def full_suite() -> BabiSuite:
    """All 20 bAbI tasks with a shared vocabulary (the paper's setup)."""
    return BabiSuite.build(
        SuiteConfig(
            task_ids=tuple(range(1, 21)),
            n_train=150,
            n_test=50,
            epochs=30,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def full_suite_artifacts(full_suite, tmp_path_factory):
    """The full suite saved to disk — what process-mode serving needs
    (worker processes rebuild their routes from the artifact dir)."""
    from repro.artifacts import save_suite

    directory = tmp_path_factory.mktemp("bench_artifacts")
    save_suite(full_suite, directory)
    return directory


@pytest.fixture(scope="session")
def task1_system(full_suite):
    return full_suite.tasks[1]
