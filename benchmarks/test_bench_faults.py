"""SEU-sensitivity bench: accuracy vs weight-memory bit-error rate.

Reliability extension on top of the quantization study: flips random
bits in the fixed-point weight codes (block-RAM soft errors) and
measures accuracy over increasing error rates, at two precisions.
"""

import numpy as np

from benchmarks.conftest import persist
from repro.hw.faults import seu_sensitivity_sweep
from repro.mann import InferenceEngine
from repro.mann.quantize import QFormat
from repro.utils.tables import TextTable

RATES = (0.0, 1e-4, 1e-3, 1e-2)


def test_bench_seu_sensitivity(benchmark, full_suite):
    systems = [full_suite.tasks[t] for t in (1, 6, 15)]

    def run():
        results = {}
        for qformat in (QFormat(3, 12), QFormat(3, 4)):
            accuracies = np.zeros(len(RATES))
            for system in systems:
                batch = system.test_batch

                def evaluate(weights, batch=batch):
                    return InferenceEngine(weights).accuracy(
                        batch.stories,
                        batch.questions,
                        batch.answers,
                        batch.story_lengths,
                    )

                sweep = seu_sensitivity_sweep(
                    system.weights,
                    evaluate,
                    qformat=qformat,
                    bit_error_rates=RATES,
                    trials=2,
                )
                accuracies += np.array([acc for _rate, acc, _f in sweep])
            results[str(qformat)] = (accuracies / len(systems)).tolist()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["bit error rate"] + list(results),
        title="Mean accuracy vs weight-memory bit-error rate",
    )
    for i, rate in enumerate(RATES):
        table.add_row(
            [f"{rate:.0e}"] + [f"{results[name][i]:.3f}" for name in results]
        )
    persist("seu_sensitivity", table.render())

    for name, accuracies in results.items():
        # Catastrophic at 1e-2: the model collapses entirely.
        assert accuracies[-1] < 0.2, name
        # Degradation is monotone (within per-trial noise): the tiny
        # models are only ~18k parameters, so even a handful of
        # high-order-bit flips at 1e-4 costs visible accuracy.
        assert accuracies[-1] <= accuracies[1] + 0.02, name
        assert accuracies[1] <= accuracies[0] + 0.02, name
