"""Shard/worker scaling of the multi-task serving runtime.

The sharded serving question this PR exists for: once flushes are
dispatched as concurrent shard sub-batches by a worker pool, how does
throughput move with ``n_workers`` x ``n_shards``? This benchmark
routes one mixed-task request stream through :class:`ModelRouter`
configurations from the PR 3 baseline (single worker, unsharded) up to
a 4x4 pool, asserting bit-identical answers everywhere, and persists

* ``benchmarks/output/sharding.txt`` — the human-readable scaling
  curve, and
* ``benchmarks/output/BENCH_serving.json`` — a machine-readable
  throughput summary CI archives so the serving perf trajectory is
  comparable across PRs.

Thread-level speedup needs physical cores: the gain assertion only
arms when the machine has them (single-core boxes record the honest
curve — coordination overhead included — without failing the build).

The grid runs twice: once with ``worker_mode="thread"`` (shared-memory,
GIL-bound) and once with ``worker_mode="process"`` (workers rebuild
their routes from memory-mapped artifacts and receive encoded arrays
over the pipe). The process rows are the reason this benchmark exists:
the thread pool cannot beat the GIL on CPU-bound flushes, so the JSON
summary records ``process_pool_vs_single_worker`` and
``process_vs_thread`` so CI can watch the process pool pay for its
pickling overhead.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import persist, persist_bench_summary

from repro.serving import ModelRouter, QueryRequest
from repro.utils.tables import TextTable

N_REQUESTS = 512
MAX_BATCH = 64
TASKS = (1, 2, 6, 15)  # four routes: enough mix to exercise the router
GRID = ((1, 1), (2, 2), (4, 4))  # (workers, shards) scaling ladder
#: Process-mode ladder: every entry uses >= 2 workers because the row
#: the summary promises (``process_pool_vs_single_worker``) is the
#: multi-worker gain; a 1-process "pool" would only measure pipe tax.
PROCESS_GRID = ((2, 2), (4, 4))
#: The serving runtime's best configuration must beat one-at-a-time
#: submission by this much (the end-to-end serving contract).
MIN_SERVING_SPEEDUP = 2.0
#: Worker-pool gain floor vs the single-worker scheduler. Thread-level
#: parallelism needs physical cores: single-core machines record the
#: honest curve (coordination overhead included) without arming the
#: floor — there is nothing for four workers to run on.
MIN_POOL_SPEEDUP_MULTICORE = 1.05
#: Best-of-N timing per configuration keeps the curve stable against
#: scheduler jitter (flushes race the deadline thread).
REPEATS = 3


def _requests(suite, n: int) -> list[QueryRequest]:
    tasks = [t for t in TASKS if t in suite.tasks]
    stream = []
    for i in range(n):
        task = tasks[i % len(tasks)]
        batch = suite.tasks[task].test_batch
        j = (i // len(tasks)) % len(batch)
        stream.append(
            QueryRequest(
                batch.stories[j],
                batch.questions[j],
                n_sentences=int(batch.story_lengths[j]),
                request_id=i,
                task=task,
            )
        )
    return stream


def _timed_run(source, suite, requests, n_workers: int, shards: int,
               worker_mode: str = "thread"):
    """Best-of-REPEATS timing of one (workers, shards, mode) config.

    ``source`` is the in-memory suite for thread mode and the saved
    artifact directory for process mode (worker processes rebuild
    their routes from the directory, zero-copy via mmap).
    """
    best_seconds, labels, router = None, None, None
    for _ in range(REPEATS):
        candidate = ModelRouter.open(
            source,
            tasks=[t for t in TASKS if t in suite.tasks],
            mips_backend="exact",
            shards=shards if shards > 1 else None,
            n_workers=n_workers,
            worker_mode=worker_mode,
            max_batch=MAX_BATCH,
            max_wait_s=0.005,
        )
        # Warm the pool before the clock starts: process workers fork
        # and map their weights lazily on the first flush, and that
        # one-time startup is exactly what "load once, serve many"
        # amortises away in steady state.
        warm_up = [candidate.submit(r) for r in requests[:MAX_BATCH]]
        candidate.flush()
        for future in warm_up:
            future.result()
        start = time.perf_counter()
        with candidate:
            futures = [candidate.submit(request) for request in requests]
            run_labels = [future.result().label for future in futures]
        seconds = time.perf_counter() - start
        if labels is not None:
            assert run_labels == labels, "nondeterministic serving answers"
        if best_seconds is None or seconds < best_seconds:
            best_seconds, labels, router = seconds, run_labels, candidate
    return best_seconds, labels, router


def test_bench_shard_worker_scaling(full_suite, full_suite_artifacts):
    requests = _requests(full_suite, N_REQUESTS)

    # One-at-a-time baseline (no scheduler at all).
    warm = ModelRouter.open(
        full_suite,
        tasks=[t for t in TASKS if t in full_suite.tasks],
        mips_backend="exact",
        start_worker=False,
    )
    warm.predict_batch(requests[: 2 * MAX_BATCH])  # BLAS/alloc warm-up
    one_at_a_time, reference = None, None
    for _ in range(REPEATS):
        start = time.perf_counter()
        reference = [warm.predict(request).label for request in requests]
        seconds = time.perf_counter() - start
        one_at_a_time = seconds if one_at_a_time is None else min(one_at_a_time, seconds)
    warm.close()

    table = TextTable(
        ["configuration", "requests/s", "mean batch", "sub-batches/flush", "speedup"],
        title=(
            f"Sharded serving runtime — {len(TASKS)} task routes, "
            f"{N_REQUESTS} requests, exact backend, max_batch={MAX_BATCH}"
        ),
    )
    table.add_row(
        ["one-at-a-time predict()", f"{N_REQUESTS / one_at_a_time:,.0f}", "1.0", "-", "-"]
    )

    rows = []
    single_seconds = None
    ladder = [("thread", cfg) for cfg in GRID]
    ladder += [("process", cfg) for cfg in PROCESS_GRID]
    for worker_mode, (n_workers, shards) in ladder:
        source = full_suite if worker_mode == "thread" else full_suite_artifacts
        seconds, labels, router = _timed_run(
            source, full_suite, requests, n_workers, shards, worker_mode
        )
        assert labels == reference, (
            f"workers={n_workers} shards={shards} mode={worker_mode}: "
            "sharded serving changed an answer"
        )
        if (worker_mode, n_workers, shards) == ("thread", 1, 1):
            single_seconds = seconds
        speedup = single_seconds / seconds
        rows.append(
            {
                "mode": worker_mode,
                "workers": n_workers,
                "shards": shards,
                "requests_per_s": round(N_REQUESTS / seconds, 1),
                "mean_batch": round(router.stats.mean_batch_size, 2),
                "mean_sub_batches_per_flush": round(
                    router.stats.mean_shards_per_flush, 2
                ),
                "mean_latency_ms": round(router.stats.mean_latency_s * 1e3, 3),
                "p50_latency_ms": round(router.stats.p50_latency_s * 1e3, 3),
                "p95_latency_ms": round(router.stats.p95_latency_s * 1e3, 3),
                "p99_latency_ms": round(router.stats.p99_latency_s * 1e3, 3),
                "speedup_vs_single_worker": round(speedup, 3),
            }
        )
        table.add_row(
            [
                f"router({n_workers} {worker_mode} workers, {shards} shards)",
                f"{N_REQUESTS / seconds:,.0f}",
                f"{router.stats.mean_batch_size:.1f}",
                f"{router.stats.mean_shards_per_flush:.1f}",
                f"{speedup:.2f}x",
            ]
        )

    cores = os.cpu_count() or 1
    microbatch_speedup = one_at_a_time / single_seconds
    best = max(rows, key=lambda row: row["requests_per_s"])
    serving_speedup = best["requests_per_s"] / (N_REQUESTS / one_at_a_time)
    thread_rows = [row for row in rows if row["mode"] == "thread"]
    process_rows = [row for row in rows if row["mode"] == "process"]
    pool_speedup = max(
        row["speedup_vs_single_worker"] for row in thread_rows[1:]
    )
    # Every PROCESS_GRID entry uses >= 2 workers, so this is the
    # multi-worker process-pool gain the acceptance bar asks for.
    process_pool_speedup = max(
        row["speedup_vs_single_worker"] for row in process_rows
    )
    best_thread_rps = max(row["requests_per_s"] for row in thread_rows)
    best_process_rps = max(row["requests_per_s"] for row in process_rows)
    process_vs_thread = best_process_rps / best_thread_rps
    summary = {
        "benchmark": "serving_sharding",
        "cpu_count": cores,
        "n_requests": N_REQUESTS,
        "task_routes": list(TASKS),
        "mips_backend": "exact",
        "max_batch": MAX_BATCH,
        "one_at_a_time_rps": round(N_REQUESTS / one_at_a_time, 1),
        "single_worker_speedup": round(microbatch_speedup, 2),
        "best_vs_one_at_a_time": round(serving_speedup, 2),
        "pool_vs_single_worker": round(pool_speedup, 2),
        "process_pool_vs_single_worker": round(process_pool_speedup, 2),
        "process_vs_thread": round(process_vs_thread, 2),
        "rows": rows,
        "best": best,
    }
    persist_bench_summary("serving_sharding", summary)

    persist(
        "sharding",
        table.render()
        + f"\nsingle-worker scheduler vs one-at-a-time: {microbatch_speedup:.2f}x"
        + f"\nthread pool vs single-worker scheduler: {pool_speedup:.2f}x"
        + f"\nprocess pool vs single-worker scheduler: {process_pool_speedup:.2f}x"
        + f"\nbest process vs best thread configuration: {process_vs_thread:.2f}x"
        + f"\nbest configuration: {best['workers']} {best['mode']} workers x "
        f"{best['shards']} shards at {best['requests_per_s']:,.0f} req/s "
        f"({serving_speedup:.2f}x vs one-at-a-time, floor "
        f"{MIN_SERVING_SPEEDUP}x)"
        + f"\ncpu cores: {cores}"
        + (
            ""
            if cores >= 2
            else f"\n(pool gain floors not armed: {cores} core(s) give "
            "workers nothing to run on; curve recorded as measured)"
        ),
    )

    assert serving_speedup >= MIN_SERVING_SPEEDUP, (
        f"best serving configuration only {serving_speedup:.2f}x over "
        f"one-at-a-time (floor {MIN_SERVING_SPEEDUP}x)"
    )
    if cores >= 4:
        assert pool_speedup >= MIN_POOL_SPEEDUP_MULTICORE, (
            f"worker pool best {pool_speedup:.2f}x vs the single-worker "
            f"scheduler on a {cores}-core machine "
            f"(floor {MIN_POOL_SPEEDUP_MULTICORE}x)"
        )
    if cores >= 2:
        # Unlike the GIL-bound thread pool, the process pool must win
        # as soon as there is a second core to run on.
        assert process_pool_speedup >= MIN_POOL_SPEEDUP_MULTICORE, (
            f"process pool best {process_pool_speedup:.2f}x vs the "
            f"single-worker scheduler on a {cores}-core machine "
            f"(floor {MIN_POOL_SPEEDUP_MULTICORE}x)"
        )
