"""Hit-rate vs throughput of the cross-request story-encoding cache.

The cache's bet: production QA traffic replays the same story with many
different questions (zipf-skewed popularity, the "millions of users"
shape), and the memory-write phase (Eqs. 1-2) — the dominant
per-request cost at production model shapes — depends only on the
story. This benchmark drives a zipf ladder (s in {0, 0.9, 1.2}) of
story popularity through the scheduler twice per rung, cache off and
cache on, asserting bit-identical answers, and persists

* ``benchmarks/output/caching.txt`` — the human-readable ladder, and
* the ``serving_caching`` summary in
  ``benchmarks/output/BENCH_serving.json`` (hit rate, p50/p95/p99,
  speedup per rung) that CI archives.

The model is a *production-shaped* synthetic MANN (vocab 400, embed 64,
32 memory slots — think full-vocabulary deployment, not the 4-rung
bAbI toy shapes) built directly from random weights: the cache skips
compute, so what matters is the arithmetic shape, not trained
accuracy. The story pool (384) deliberately exceeds the cache capacity
(96): at s=0 the uniform mix thrashes the LRU and the honest low hit
rate is recorded; at s=1.2 the hot head stays resident and the write
phase all but disappears — the >= 2x scheduler-throughput floor this
PR ships on. Single-core safe: the win is eliminated compute, not
parallelism.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import persist, persist_bench_summary

from repro.mann.batch import BatchInferenceEngine
from repro.mann.config import MannConfig
from repro.mann.weights import MannWeights
from repro.serving import BatchScheduler, MemoryCache, QueryRequest
from repro.serving.predictor import SoftwarePredictor
from repro.utils.tables import TextTable

VOCAB = 400
EMBED = 64
MEMORY = 32
WORDS = 10
N_REQUESTS = 768
MAX_BATCH = 128
STORY_POOL = 384
CACHE_ENTRIES = 96
ZIPF_LADDER = (0.0, 0.9, 1.2)
REPEATS = 3
#: The tentpole acceptance bar: at high skew the cached scheduler must
#: at least double throughput over the identical uncached run.
MIN_CACHED_SPEEDUP_HIGH_SKEW = 2.0
HIGH_SKEW = 1.2


def _production_weights() -> MannWeights:
    rng = np.random.default_rng(11)
    config = MannConfig(
        vocab_size=VOCAB, embed_dim=EMBED, memory_size=MEMORY, hops=3
    )

    def w(*shape):
        return rng.normal(0.0, 0.1, shape)

    return MannWeights(
        config,
        w(VOCAB, EMBED),
        w(VOCAB, EMBED),
        w(VOCAB, EMBED),
        w(EMBED, EMBED),
        w(VOCAB, EMBED),
        w(MEMORY, EMBED),
        w(MEMORY, EMBED),
    )


def _story_pool(rng) -> list[tuple[np.ndarray, int]]:
    pool = []
    for _ in range(STORY_POOL):
        length = int(rng.integers(MEMORY // 2, MEMORY + 1))
        story = np.zeros((MEMORY, WORDS), dtype=np.int64)
        story[:length] = rng.integers(1, VOCAB, (length, WORDS))
        pool.append((story, length))
    return pool


def _zipf_requests(pool, s: float, seed: int) -> list[QueryRequest]:
    """Story popularity ~ rank^-s over the pool; questions independent
    (same story, different question — the case the cache exists for)."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = ranks**-s
    weights /= weights.sum()
    choices = rng.choice(len(pool), size=N_REQUESTS, p=weights)
    return [
        QueryRequest(
            pool[c][0],
            rng.integers(1, VOCAB, WORDS).astype(np.int64),
            n_sentences=pool[c][1],
            request_id=i,
        )
        for i, c in enumerate(choices)
    ]


def _timed_pass(predictor, requests):
    """One scheduler pass over the stream; returns (seconds, labels,
    logits, scheduler stats)."""
    scheduler = BatchScheduler(
        predictor, max_batch=MAX_BATCH, start_worker=False
    )
    start = time.perf_counter()
    futures = [scheduler.submit(r) for r in requests]
    scheduler.flush()
    responses = [f.result() for f in futures]
    seconds = time.perf_counter() - start
    scheduler.close()
    labels = [r.label for r in responses]
    logits = [r.logit for r in responses]
    return seconds, labels, logits, scheduler.stats


def _bench_config(engine, requests):
    """Warm-up pass (BLAS buffers; cold-cache fill for cached engines)
    then best-of-REPEATS steady-state timing through one predictor."""
    predictor = SoftwarePredictor(engine)
    _timed_pass(predictor, requests)  # warm-up, untimed
    cache = engine.memory_cache
    warm = cache.counters() if cache is not None else None
    best = None
    for _ in range(REPEATS):
        seconds, labels, logits, stats = _timed_pass(predictor, requests)
        if best is not None:
            assert labels == best[1], "nondeterministic serving answers"
            assert logits == best[2], "nondeterministic serving logits"
        if best is None or seconds < best[0]:
            best = (seconds, labels, logits, stats)
    hit_rate = None
    if cache is not None:
        # Steady-state hit rate: the timed passes only (cold fill
        # happened in the warm-up pass).
        hits, misses, _ = (
            after - before for before, after in zip(warm, cache.counters())
        )
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
    return best, hit_rate


def test_bench_zipf_cache_ladder():
    weights = _production_weights()
    pool = _story_pool(np.random.default_rng(5))

    table = TextTable(
        [
            "zipf s",
            "cache",
            "requests/s",
            "hit rate",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "speedup",
        ],
        title=(
            f"Story-encoding cache — vocab {VOCAB}, embed {EMBED}, "
            f"{MEMORY} slots, {N_REQUESTS} requests, pool {STORY_POOL} "
            f"stories, cache {CACHE_ENTRIES} entries, "
            f"max_batch={MAX_BATCH}, exact backend"
        ),
    )
    rows = []
    speedup_at = {}
    for s in ZIPF_LADDER:
        requests = _zipf_requests(pool, s, seed=int(s * 10) + 1)
        (off_seconds, off_labels, off_logits, off_stats), _ = _bench_config(
            BatchInferenceEngine(weights, "exact"), requests
        )
        (on_seconds, on_labels, on_logits, on_stats), hit_rate = _bench_config(
            BatchInferenceEngine(
                weights,
                "exact",
                memory_cache=MemoryCache(capacity_entries=CACHE_ENTRIES),
            ),
            requests,
        )
        # The correctness bar: the cache may only remove compute.
        assert on_labels == off_labels, f"s={s}: cache changed a label"
        assert on_logits == off_logits, f"s={s}: cache changed a logit"
        speedup = off_seconds / on_seconds
        speedup_at[s] = speedup
        for name, seconds, stats, rate, rel in (
            ("off", off_seconds, off_stats, None, 1.0),
            ("on", on_seconds, on_stats, hit_rate, speedup),
        ):
            rows.append(
                {
                    "zipf_s": s,
                    "cache": name,
                    "cache_entries": CACHE_ENTRIES if name == "on" else 0,
                    "requests_per_s": round(N_REQUESTS / seconds, 1),
                    "hit_rate": round(rate, 4) if rate is not None else None,
                    "mean_batch": round(stats.mean_batch_size, 2),
                    "p50_latency_ms": round(stats.p50_latency_s * 1e3, 3),
                    "p95_latency_ms": round(stats.p95_latency_s * 1e3, 3),
                    "p99_latency_ms": round(stats.p99_latency_s * 1e3, 3),
                    "speedup_vs_uncached": round(rel, 3),
                }
            )
            table.add_row(
                [
                    f"{s:.1f}",
                    name,
                    f"{N_REQUESTS / seconds:,.0f}",
                    f"{rate:.1%}" if rate is not None else "-",
                    f"{stats.p50_latency_s * 1e3:.2f}",
                    f"{stats.p95_latency_s * 1e3:.2f}",
                    f"{stats.p99_latency_s * 1e3:.2f}",
                    f"{rel:.2f}x",
                ]
            )

    summary = {
        "benchmark": "serving_caching",
        "model_shape": {
            "vocab": VOCAB,
            "embed": EMBED,
            "memory": MEMORY,
            "words": WORDS,
        },
        "n_requests": N_REQUESTS,
        "story_pool": STORY_POOL,
        "cache_entries": CACHE_ENTRIES,
        "max_batch": MAX_BATCH,
        "zipf_ladder": list(ZIPF_LADDER),
        "speedup_at_high_skew": round(speedup_at[HIGH_SKEW], 3),
        "min_speedup_floor": MIN_CACHED_SPEEDUP_HIGH_SKEW,
        "rows": rows,
    }
    persist_bench_summary("serving_caching", summary)

    persist(
        "caching",
        table.render()
        + "\n"
        + "\n".join(
            f"zipf s={s:.1f}: cached vs uncached {speedup_at[s]:.2f}x"
            for s in ZIPF_LADDER
        )
        + f"\nfloor at s={HIGH_SKEW}: {MIN_CACHED_SPEEDUP_HIGH_SKEW}x "
        "(single-core safe: the win is skipped compute, not parallelism)",
    )

    assert speedup_at[HIGH_SKEW] >= MIN_CACHED_SPEEDUP_HIGH_SKEW, (
        f"cached scheduler only {speedup_at[HIGH_SKEW]:.2f}x over uncached "
        f"at zipf s={HIGH_SKEW} (floor {MIN_CACHED_SPEEDUP_HIGH_SKEW}x)"
    )
