"""Chaos soak: the fault-tolerant runtime under real worker deaths.

The acceptance gate for the resilience layer: route a mixed-task
request stream through the process-mode serving stack while the chaos
harness kills real worker processes (``os._exit`` inside the worker —
the pool genuinely breaks), at a ladder of kill rates, twice per rate:

* **supervised** (the default): the scheduler rebuilds the pool from
  its retained WorkerSpecs and replays the lost sub-batches — the soak
  must finish with **zero** failed requests and bit-identical answers.
* **unsupervised** (``supervise_pool=False``, no retry): the first
  kill takes the flush (and the pool) down with it — requests are
  lost, which is the row that shows what supervision buys.

Persists ``benchmarks/output/resilience.txt`` (the human-readable
ladder) and a machine-readable summary under the
``serving_resilience`` key of ``benchmarks/output/BENCH_serving.json``
so CI can watch the zero-failure contract hold across PRs.
"""

from __future__ import annotations

import time

from benchmarks.conftest import persist, persist_bench_summary

from repro.serving import (
    FaultPlan,
    ModelRouter,
    QueryRequest,
    RetryPolicy,
    ServingError,
)
from repro.utils.tables import TextTable

N_REQUESTS = 128
MAX_BATCH = 16
N_WORKERS = 2
TASKS = (1, 2, 6, 15)
#: (kill rate, supervised) soak ladder. Every nonzero-rate plan also
#: schedules a guaranteed kill at the third sub-batch, so the
#: unsupervised row demonstrably loses requests even if the rate draw
#: happens to spare the early indices.
LADDER = ((0.0, True), (0.04, True), (0.08, True), (0.04, False))


def _requests(suite, n: int) -> list[QueryRequest]:
    tasks = [t for t in TASKS if t in suite.tasks]
    stream = []
    for i in range(n):
        task = tasks[i % len(tasks)]
        batch = suite.tasks[task].test_batch
        j = (i // len(tasks)) % len(batch)
        stream.append(
            QueryRequest(
                batch.stories[j],
                batch.questions[j],
                n_sentences=int(batch.story_lengths[j]),
                request_id=i,
                task=task,
            )
        )
    return stream


def _soak(artifacts, suite, requests, kill_rate: float, supervised: bool):
    """One soak run; returns (labels, seconds, failed, stats)."""
    plan = None
    if kill_rate > 0:
        plan = FaultPlan(
            kill_worker_rate=kill_rate,
            seed=13,
            schedule=((2, "kill-worker"),),
        )
    router = ModelRouter.open(
        artifacts,
        tasks=[t for t in TASKS if t in suite.tasks],
        mips_backend="exact",
        n_workers=N_WORKERS,
        worker_mode="process",
        max_batch=MAX_BATCH,
        max_wait_s=0.005,
        chaos_plan=plan,
        supervise_pool=supervised,
        retry_policy=(
            RetryPolicy(max_attempts=4, backoff_base_s=0.0)
            if supervised
            else None
        ),
    )
    labels: dict[int, int] = {}
    failed = 0
    start = time.perf_counter()
    with router:
        futures = []
        for request in requests:
            try:
                futures.append((request.request_id, router.submit(request)))
            except ServingError:
                failed += 1
        for request_id, future in futures:
            try:
                labels[request_id] = future.result(timeout=120.0).label
            except ServingError:
                failed += 1
    seconds = time.perf_counter() - start
    return labels, seconds, failed, router.stats


def test_bench_chaos_soak(full_suite, full_suite_artifacts):
    requests = _requests(full_suite, N_REQUESTS)

    # Fault-free reference answers (thread mode, no pool to kill).
    reference_router = ModelRouter.open(
        full_suite,
        tasks=[t for t in TASKS if t in full_suite.tasks],
        mips_backend="exact",
        start_worker=False,
    )
    with reference_router:
        reference = {
            r.request_id: reference_router.predict(r).label for r in requests
        }

    table = TextTable(
        [
            "kill rate",
            "supervised",
            "served",
            "failed",
            "retried",
            "recovered",
            "pool rebuilds",
            "requests/s",
        ],
        title=(
            f"Chaos soak — {N_REQUESTS} requests, {len(TASKS)} routes, "
            f"{N_WORKERS} process workers, max_batch={MAX_BATCH}"
        ),
    )
    rows = []
    for kill_rate, supervised in LADDER:
        labels, seconds, failed, stats = _soak(
            full_suite_artifacts, full_suite, requests, kill_rate, supervised
        )
        if supervised:
            # The zero-failure contract: every request served, every
            # answer bit-identical to the fault-free reference.
            assert failed == 0, (
                f"supervised soak at kill rate {kill_rate} lost "
                f"{failed} requests"
            )
            assert labels == reference, "recovery changed an answer"
            if kill_rate > 0:
                assert stats.pool_rebuilds >= 1, "no worker was ever killed"
                assert stats.recovered >= 1
        else:
            assert failed > 0, (
                "unsupervised soak survived worker kills — supervision "
                "is not being exercised"
            )
            assert all(labels[k] == reference[k] for k in labels)
        rows.append(
            {
                "kill_rate": kill_rate,
                "supervised": supervised,
                "served": len(labels),
                "failed": failed,
                "retries": stats.retries,
                "recovered": stats.recovered,
                "pool_rebuilds": stats.pool_rebuilds,
                "requests_per_s": round(len(labels) / seconds, 1)
                if seconds > 0
                else 0.0,
            }
        )
        table.add_row(
            [
                f"{kill_rate:.2f}",
                "yes" if supervised else "no",
                str(len(labels)),
                str(failed),
                str(stats.retries),
                str(stats.recovered),
                str(stats.pool_rebuilds),
                f"{len(labels) / seconds:,.0f}",
            ]
        )

    persist("resilience", table.render())
    persist_bench_summary(
        "serving_resilience",
        {
            "benchmark": "chaos_soak",
            "n_requests": N_REQUESTS,
            "n_workers": N_WORKERS,
            "max_batch": MAX_BATCH,
            "tasks": list(TASKS),
            "rows": rows,
        },
    )
