#!/usr/bin/env python3
"""Quickstart: train a MANN on one bAbI task and run it on the
simulated FPGA accelerator.

Runs in well under a minute:
1. generate synthetic bAbI task 1 (single supporting fact) data,
2. train an End-to-End Memory Network on it,
3. fit inference thresholding (Algorithm 1) on the training logits,
4. run the test set through the cycle-level accelerator simulation at
   25 MHz and 100 MHz, with and without inference thresholding,
5. print timing/energy reports and validate against the golden engine.
"""

import numpy as np

from repro.babi import generate_task_dataset
from repro.hw import HwConfig, MannAccelerator
from repro.mann import InferenceEngine, train_task_model
from repro.mips import fit_threshold_model


def main() -> None:
    print("=== 1. Generate synthetic bAbI task 1 ===")
    train, test = generate_task_dataset(task_id=1, n_train=300, n_test=100, seed=42)
    print(f"train={len(train)} test={len(test)} vocab={train.vocab_size}")
    print("\nA sample story:")
    print(test.examples[0].text())

    print("\n=== 2. Train the memory network ===")
    result = train_task_model(train, test, epochs=50, seed=0)
    print(
        f"epochs={result.epochs_run} train_acc={result.train_accuracies[-1]:.3f} "
        f"test_acc={result.test_accuracy:.3f} "
        f"(majority baseline {result.majority_accuracy:.3f})"
    )

    print("\n=== 3. Fit inference thresholding on training logits ===")
    weights = result.model.export_weights()
    engine = InferenceEngine(weights)
    train_batch = train.encode()
    train_logits = engine.logits_batch(
        train_batch.stories, train_batch.questions, train_batch.story_lengths
    )
    threshold_model = fit_threshold_model(train_logits, train_batch.answers)
    order = threshold_model.order[:5]
    print(f"first 5 visited indices (by silhouette): {order.tolist()}")

    print("\n=== 4. Run the accelerator simulation ===")
    test_batch = test.encode()
    golden = engine.predict(
        test_batch.stories, test_batch.questions, test_batch.story_lengths
    )
    for ith in (False, True):
        for mhz in (25.0, 100.0):
            config = (
                HwConfig(frequency_mhz=mhz)
                .with_embed_dim(weights.config.embed_dim)
                .with_ith(ith, rho=1.0)
            )
            accelerator = MannAccelerator(weights, config, threshold_model)
            report = accelerator.run(test_batch)
            matches = np.array_equal(report.predictions, golden) if not ith else None
            label = "FPGA+ITH" if ith else "FPGA    "
            print(
                f"{label} @{mhz:5.0f} MHz: acc={report.accuracy:.3f} "
                f"cycles={report.total_cycles:>8d} "
                f"wall={report.wall_seconds * 1e3:7.3f} ms "
                f"power={report.average_power_w:5.2f} W "
                f"mean comparisons={report.mean_comparisons:6.1f}"
                + ("" if matches is None else f"  golden-match={matches}")
            )

    print("\nDone. See examples/babi_qa_accelerator.py for the full suite.")


if __name__ == "__main__":
    main()
