#!/usr/bin/env python3
"""Inference thresholding vs related-work approximate MIPS baselines.

Section VI-B argues that hashing (ALSH) and clustering MIPS
approximations "may be too slow to be used in the output layer of a DNN
in resource-limited environments". This example pits Algorithm 1
against both on identical trained-model queries and reports accuracy
(agreement with the exact argmax and with the true labels) and the
number of |E|-wide dot products each method spends per query.

Every engine is pulled from the ``repro.mips`` backend registry and
evaluated through its vectorized ``search_batch`` kernel — one stacked
result per task instead of a per-query Python loop.
"""

import argparse

from repro.eval.backends import evaluate_mips_backends
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.utils.tables import TextTable

BACKEND_LABELS = {
    "exact": "exact scan",
    "threshold": "inference thresholding (rho=1.0)",
    "alsh": "ALSH (8 tables x 8 bits)",
    "clustering": "clustering (8 clusters, probe 2)",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, nargs="+", default=[1, 6, 15])
    parser.add_argument("--n-train", type=int, default=200)
    parser.add_argument("--n-test", type=int, default=80)
    args = parser.parse_args()

    suite = BabiSuite.build(
        SuiteConfig(
            task_ids=tuple(args.tasks), n_train=args.n_train, n_test=args.n_test
        )
    )

    table = TextTable(
        ["engine", "agreement w/ exact", "label accuracy", "mean dot products"],
        title="MIPS engines on identical trained-model queries",
    )
    names = ["exact", "threshold", "alsh", "clustering"]
    for row in evaluate_mips_backends(suite, names, rho=1.0, seed=0):
        table.add_row(
            [
                BACKEND_LABELS.get(row.backend, row.backend),
                f"{row.agreement_with_exact:.3f}",
                f"{row.label_accuracy:.3f}",
                f"{row.mean_comparisons:.1f}",
            ]
        )

    print(table.render())
    print(
        "\nInference thresholding needs no extra hash tables or centroid"
        "\nsearch hardware — it reuses the existing sequential scan with a"
        "\nthreshold comparator, which is the paper's deployment argument."
    )


if __name__ == "__main__":
    main()
