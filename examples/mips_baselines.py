#!/usr/bin/env python3
"""Inference thresholding vs related-work approximate MIPS baselines.

Section VI-B argues that hashing (ALSH) and clustering MIPS
approximations "may be too slow to be used in the output layer of a DNN
in resource-limited environments". This example pits Algorithm 1
against both on identical trained-model queries and reports accuracy
(agreement with the exact argmax and with the true labels) and the
number of |E|-wide dot products each method spends per query.
"""

import argparse

from repro.eval.suite import BabiSuite, SuiteConfig
from repro.mips import (
    AlshMips,
    ClusteringMips,
    ExactMips,
    InferenceThresholding,
)
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, nargs="+", default=[1, 6, 15])
    parser.add_argument("--n-train", type=int, default=200)
    parser.add_argument("--n-test", type=int, default=80)
    args = parser.parse_args()

    suite = BabiSuite.build(
        SuiteConfig(
            task_ids=tuple(args.tasks), n_train=args.n_train, n_test=args.n_test
        )
    )

    table = TextTable(
        ["engine", "agreement w/ exact", "label accuracy", "mean dot products"],
        title="MIPS engines on identical trained-model queries",
    )

    engines = {
        "exact scan": lambda s: ExactMips(s.weights.w_o),
        "inference thresholding (rho=1.0)": lambda s: InferenceThresholding(
            s.weights.w_o, s.threshold_model, rho=1.0
        ),
        "ALSH (8 tables x 8 bits)": lambda s: AlshMips(s.weights.w_o, seed=0),
        "clustering (8 clusters, probe 2)": lambda s: ClusteringMips(
            s.weights.w_o, seed=0
        ),
    }

    for name, factory in engines.items():
        agree = correct = total = comparisons = 0
        for system in suite.tasks.values():
            batch = system.test_batch
            queries = system.batch_engine.forward_trace(
                batch.stories, batch.questions, batch.story_lengths
            ).h_final
            exact = ExactMips(system.weights.w_o)
            engine = factory(system)
            for query, answer in zip(queries, batch.answers):
                reference = exact.search(query)
                result = engine.search(query)
                agree += int(result.label == reference.label)
                correct += int(result.label == int(answer))
                comparisons += result.comparisons
                total += 1
        table.add_row(
            [
                name,
                f"{agree / total:.3f}",
                f"{correct / total:.3f}",
                f"{comparisons / total:.1f}",
            ]
        )

    print(table.render())
    print(
        "\nInference thresholding needs no extra hash tables or centroid"
        "\nsearch hardware — it reuses the existing sequential scan with a"
        "\nthreshold comparator, which is the paper's deployment argument."
    )


if __name__ == "__main__":
    main()
