#!/usr/bin/env python3
"""Model introspection + hardware verification walkthrough.

Covers the engineering workflow around the accelerator:
1. train a model and check *why* it answers (attention vs the annotated
   supporting facts),
2. formally co-simulate the hardware pipeline against the golden
   software engine (bit-exactness report),
3. print the hardware engineer's breakdown tables (per-phase cycles,
   module utilisation, wall-time and energy splits),
4. sweep the design space (clock and model width) with the analytic
   timing + resource models.
"""

import argparse

from repro.babi import generate_task_dataset
from repro.hw import (
    HwConfig,
    MannAccelerator,
    WorkloadShape,
    frequency_sweep,
    lane_width_sweep,
    verify_against_golden,
)
from repro.hw.report import full_report
from repro.hw.sweep import sweep_table
from repro.mann import InferenceEngine, train_task_model
from repro.mann.analysis import attention_statistics, hop_contributions
from repro.mann.config import MannConfig
from repro.mips import fit_threshold_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--task", type=int, default=2)
    parser.add_argument("--n-train", type=int, default=250)
    parser.add_argument("--n-test", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=40)
    args = parser.parse_args()

    print(f"=== Train bAbI task {args.task} ===")
    train, test = generate_task_dataset(
        args.task, args.n_train, args.n_test, seed=13
    )
    result = train_task_model(train, test, epochs=args.epochs, seed=0)
    print(
        f"test accuracy {result.test_accuracy:.3f} "
        f"(majority {result.majority_accuracy:.3f})"
    )
    weights = result.model.export_weights()
    engine = InferenceEngine(weights)

    print("\n=== 1. Attention vs supporting facts ===")
    stats = attention_statistics(engine, test)
    print(stats.summary())
    contrib = hop_contributions(engine, test)
    for t, dominance in enumerate(contrib.read_dominance_per_hop):
        print(
            f"  hop {t + 1}: read-vector share of controller update "
            f"{dominance:.2f}"
        )

    print("\n=== 2. Hardware co-simulation ===")
    train_batch = train.encode()
    thresholds = fit_threshold_model(
        engine.logits_batch(
            train_batch.stories, train_batch.questions, train_batch.story_lengths
        ),
        train_batch.answers,
    )
    config = (
        HwConfig(frequency_mhz=100.0)
        .with_embed_dim(weights.config.embed_dim)
        .with_ith(True, rho=1.0)
    )
    accelerator = MannAccelerator(weights, config, thresholds)
    verification = verify_against_golden(accelerator, test.encode())
    print(verification.summary())

    print("\n=== 3. Run breakdown ===")
    report = accelerator.run(test.encode())
    print(full_report(report))

    print("\n=== 4. Design-space sweeps ===")
    workload = WorkloadShape(output_visited=weights.config.vocab_size)
    model_config = MannConfig(
        vocab_size=weights.config.vocab_size,
        embed_dim=weights.config.embed_dim,
        memory_size=weights.config.memory_size,
    )
    print(sweep_table(frequency_sweep(workload, model_config), "Clock sweep").render())
    print()
    print(
        sweep_table(
            lane_width_sweep(workload, vocab_size=weights.config.vocab_size),
            "Model-width sweep",
        ).render()
    )


if __name__ == "__main__":
    main()
