#!/usr/bin/env python3
"""Fixed-point weight quantization of the trained MANN (ref [10]).

Sweeps the Q-format fractional precision of a trained task model,
measuring (a) test accuracy on the golden engine, (b) the model-transfer
time saved on the simulated host interface, and (c) the effect on the
accelerator run — showing the precision cliff the authors' earlier
quantized-MANN work exploits.
"""

import argparse

from repro.babi import generate_task_dataset
from repro.hw import HwConfig, MannAccelerator
from repro.hw.pcie import HostInterface
from repro.mann import InferenceEngine, train_task_model
from repro.mann.quantize import QFormat, quantize_weights
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--task", type=int, default=1)
    parser.add_argument("--n-train", type=int, default=300)
    parser.add_argument("--n-test", type=int, default=120)
    parser.add_argument("--epochs", type=int, default=50)
    args = parser.parse_args()

    train, test = generate_task_dataset(
        args.task, args.n_train, args.n_test, seed=21
    )
    result = train_task_model(train, test, epochs=args.epochs, seed=0)
    weights = result.model.export_weights()
    batch = test.encode()
    host = HostInterface(HwConfig().calibration)

    def evaluate(w) -> float:
        return InferenceEngine(w).accuracy(
            batch.stories, batch.questions, batch.answers, batch.story_lengths
        )

    baseline = evaluate(weights)
    float_transfer = host.model_transfer(weights.nbytes()).seconds

    table = TextTable(
        [
            "format",
            "word bits",
            "test accuracy",
            "max |error|",
            "model bytes",
            "transfer (us)",
        ],
        title=f"Weight quantization sweep, bAbI task {args.task} "
        f"(float64 accuracy {baseline:.3f})",
    )
    for frac_bits in (12, 10, 8, 6, 4, 2):
        qformat = QFormat(3, frac_bits)
        quantized, report = quantize_weights(weights, qformat)
        accuracy = evaluate(quantized)
        transfer = host.model_transfer(report.quantized_bytes).seconds
        table.add_row(
            [
                str(qformat),
                str(qformat.total_bits),
                f"{accuracy:.3f}",
                f"{report.worst_max_abs_error:.4f}",
                str(report.quantized_bytes),
                f"{transfer * 1e6:.1f}",
            ]
        )
    print(table.render())
    print(
        f"\nfloat32 stream: {weights.nbytes()} bytes, "
        f"{float_transfer * 1e6:.1f} us model transfer"
    )

    # The quantized grid runs through the full accelerator unchanged.
    q8, _ = quantize_weights(weights, QFormat(3, 8))
    config = HwConfig(frequency_mhz=100.0).with_embed_dim(
        weights.config.embed_dim
    )
    report = MannAccelerator(q8, config).run(batch)
    print(
        f"\naccelerator with Q3.8 weights: accuracy={report.accuracy:.3f} "
        f"(float: {baseline:.3f}), wall={report.wall_seconds * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
