#!/usr/bin/env python3
"""Frequency scaling and the host-interface bottleneck (Section V).

Sweeps the fabric clock well beyond the paper's 25-100 MHz range and
decomposes wall time into the frequency-independent host-interface term
and the compute term, showing why "the improvement was not linear" and
what an ideal interface would buy (the paper's ~162x estimate). Also
sweeps the interface transaction latency as a generalised ablation.
"""

import argparse

from repro.eval.experiments import collect_fpga_artifacts, run_interface_ablation
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.hw import HwConfig
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, nargs="+", default=[1, 2, 6, 12, 20])
    parser.add_argument("--n-train", type=int, default=150)
    parser.add_argument("--n-test", type=int, default=60)
    args = parser.parse_args()

    suite = BabiSuite.build(
        SuiteConfig(
            task_ids=tuple(args.tasks), n_train=args.n_train, n_test=args.n_test
        )
    )
    base = HwConfig()
    artifacts = collect_fpga_artifacts(suite, base, ith=True, rho=1.0)

    interface_s = sum(a.interface_seconds for a in artifacts.values())
    cycles = sum(a.cycles for a in artifacts.values())

    table = TextTable(
        ["clock (MHz)", "compute (ms)", "interface (ms)", "total (ms)",
         "interface share", "speedup vs 25 MHz"],
        title="Wall-time decomposition vs fabric clock (FPGA+ITH)",
    )
    t25 = interface_s + cycles / 25e6
    for mhz in (25, 50, 75, 100, 150, 200, 400):
        compute_s = cycles / (mhz * 1e6)
        total = compute_s + interface_s
        table.add_row(
            [
                str(mhz),
                f"{compute_s * 1e3:.2f}",
                f"{interface_s * 1e3:.2f}",
                f"{total * 1e3:.2f}",
                f"{interface_s / total * 100:.0f}%",
                f"{t25 / total:.2f}x",
            ]
        )
    print(table.render())
    print(
        "\nThe interface term is constant, so doubling the clock far past"
        "\n100 MHz barely moves total time — the paper's Section V point.\n"
    )

    ablation = run_interface_ablation(suite, base)
    print(ablation.to_table().render())

    # Generalised ablation: sweep the per-transaction latency.
    from dataclasses import replace

    table2 = TextTable(
        ["txn latency (us)", "total @100 MHz (ms)", "interface share"],
        title="Sensitivity to host-interface transaction latency",
    )
    for latency_us in (13.0, 6.0, 3.0, 1.0, 0.25):
        calib = replace(
            base.calibration, pcie_transaction_latency=latency_us * 1e-6
        )
        config = replace(base, calibration=calib)
        swept = collect_fpga_artifacts(suite, config, ith=True, rho=1.0)
        iface = sum(a.interface_seconds for a in swept.values())
        total = iface + cycles / 100e6
        table2.add_row(
            [f"{latency_us:.2f}", f"{total * 1e3:.2f}", f"{iface / total * 100:.0f}%"]
        )
    print()
    print(table2.render())


if __name__ == "__main__":
    main()
