#!/usr/bin/env python3
"""Streaming (double-buffered) execution vs the paper's synchronous mode.

The paper's host protocol is request/response per example, which leaves
the fabric idle during transfers and the interface idle during compute.
This example quantifies what a double-buffered MEM (two banks: one
being written, one being read) recovers, per clock frequency, and shows
the per-stage bottleneck analysis.
"""

import argparse

from repro.babi import generate_task_dataset
from repro.hw import HwConfig
from repro.hw.streaming import run_streaming, stage_cycles_for_batch
from repro.mann import train_task_model
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--task", type=int, default=1)
    parser.add_argument("--n-train", type=int, default=200)
    parser.add_argument("--n-test", type=int, default=100)
    parser.add_argument("--epochs", type=int, default=30)
    args = parser.parse_args()

    train, test = generate_task_dataset(
        args.task, args.n_train, args.n_test, seed=9
    )
    result = train_task_model(train, test, epochs=args.epochs, seed=0)
    weights = result.model.export_weights()
    batch = test.encode()

    table = TextTable(
        [
            "clock (MHz)",
            "synchronous (ms)",
            "streaming (ms)",
            "speedup",
            "bottleneck stage",
        ],
        title=f"Streaming vs synchronous, bAbI task {args.task} "
        f"({len(batch)} examples)",
    )
    for mhz in (25.0, 50.0, 100.0, 200.0):
        config = HwConfig(frequency_mhz=mhz).with_embed_dim(
            weights.config.embed_dim
        )
        report = run_streaming(
            batch, config, weights.config.hops, weights.config.vocab_size
        )
        stages = report.stage_cycles
        sums = {
            "transfer": sum(s.transfer_cycles for s in stages),
            "write": sum(s.write_cycles for s in stages),
            "read+output": sum(s.read_output_cycles for s in stages),
        }
        bottleneck = max(sums, key=sums.get)
        table.add_row(
            [
                f"{mhz:.0f}",
                f"{report.total_cycles_sequential * config.cycle_time_s * 1e3:.2f}",
                f"{report.total_cycles_streaming * config.cycle_time_s * 1e3:.2f}",
                f"{report.speedup:.2f}x",
                bottleneck,
            ]
        )
    print(table.render())
    print(
        "\nAt low clocks compute is the bottleneck and pipelining hides the"
        "\ntransfers; at high clocks the transfer stage dominates, so even a"
        "\nperfect pipeline is capped by the host interface — the same bound"
        "\nSection V identifies for the synchronous protocol."
    )

    # Per-stage profile of the first few examples.
    config = HwConfig(frequency_mhz=100.0).with_embed_dim(
        weights.config.embed_dim
    )
    stages = stage_cycles_for_batch(
        batch, config, weights.config.hops, weights.config.vocab_size
    )
    profile = TextTable(
        ["example", "transfer", "write", "read+output", "bottleneck"],
        title="Per-example stage cycles @ 100 MHz (first 8)",
    )
    for i, stage in enumerate(stages[:8]):
        profile.add_row(
            [
                str(i),
                str(stage.transfer_cycles),
                str(stage.write_cycles),
                str(stage.read_output_cycles),
                str(stage.bottleneck),
            ]
        )
    print()
    print(profile.render())


if __name__ == "__main__":
    main()
