#!/usr/bin/env python3
"""Sharded multi-task serving: router + worker pool + shard-parallel MIPS.

The serving runtime this repo grew in PR 4, end to end:
1. train a small multi-task suite, persist it **with a fixed-point
   snapshot** (``save_suite(..., qformat=QFormat(3, 8))``),
2. open a ``ModelRouter`` over the artifacts — one predictor per bAbI
   task, every MIPS scan wrapped as ``sharded:<backend>`` — behind one
   shared micro-batching scheduler with a worker pool,
3. fire a mixed-task request stream at it and read per-route and
   per-flush statistics,
4. prove sharding changed nothing (bit-identical answers) and serve the
   quantized snapshot of the same artifacts.

Run with: PYTHONPATH=src python examples/sharded_serving.py
"""

import tempfile
import time

from repro.artifacts import save_suite
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.mann.quantize import QFormat
from repro.mips import get_backend
from repro.serving import ModelRouter, QueryRequest, open_predictor

TASKS = (1, 6)
N_REQUESTS = 256


def main() -> None:
    print("=== 1. Train a 2-task suite, persist with a Q3.8 snapshot ===")
    suite = BabiSuite.build(
        SuiteConfig(task_ids=TASKS, n_train=150, n_test=50, epochs=30, seed=7)
    )
    artifacts = tempfile.mkdtemp(prefix="mann-sharded-")
    save_suite(suite, artifacts, qformat=QFormat(3, 8))
    print(f"saved tasks {suite.task_ids} to {artifacts}")

    print("\n=== 2. Router: one predictor per task, one scheduler ===")
    requests = []
    for i in range(N_REQUESTS):
        task = TASKS[i % len(TASKS)]
        batch = suite.tasks[task].test_batch
        j = i % len(batch)
        requests.append(
            QueryRequest(
                batch.stories[j],
                batch.questions[j],
                n_sentences=int(batch.story_lengths[j]),
                request_id=i,
                task=task,
            )
        )

    start = time.perf_counter()
    with ModelRouter.open(
        artifacts,
        mips_backend="threshold",
        rho=1.0,
        shards=4,          # each scan runs as sharded:threshold, 4 partitions
        n_workers=4,       # each flush dispatches 4 concurrent sub-batches
        max_batch=32,
    ) as router:
        futures = [router.submit(request) for request in requests]
        responses = [future.result() for future in futures]
        stats = router.stats
        per_route = {task: s.requests for task, s in router.route_stats.items()}
    elapsed = time.perf_counter() - start
    print(
        f"{N_REQUESTS} mixed-task requests in {elapsed * 1e3:.1f} ms "
        f"({N_REQUESTS / elapsed:,.0f} req/s)"
    )
    print(
        f"flushes={stats.flushes} mean_batch={stats.mean_batch_size:.1f} "
        f"mean_sub_batches={stats.mean_shards_per_flush:.1f} "
        f"per-route={per_route}"
    )

    print("\n=== 3. Sharding is bit-exact ===")
    import numpy as np

    system = suite.tasks[TASKS[0]]
    plain = system.mips_engine("threshold", rho=1.0)
    sharded = get_backend("sharded:threshold").build(
        system.weights.w_o,
        threshold_model=system.threshold_model,
        rho=1.0,
        n_shards=4,
    )
    h = np.random.default_rng(0).normal(
        size=(64, system.weights.config.embed_dim)
    )
    a, b = plain.search_batch(h), sharded.search_batch(h)
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.logits, b.logits)
    assert np.array_equal(a.comparisons, b.comparisons)
    print(
        f"sharded:threshold == threshold on {len(h)} queries "
        f"(labels, logits, comparisons bit-identical); per-shard sizes "
        f"{b.shards.sizes.tolist()}"
    )

    print("\n=== 4. Serve the quantized snapshot ===")
    quantized = open_predictor(
        artifacts, TASKS[0], quantized=True, mips_backend="exact"
    )
    request = requests[0]
    response = quantized.predict(request)
    print(
        f"Q3.8 weights, task {TASKS[0]}: answer={response.answer!r} "
        f"comparisons={response.comparisons}"
    )


if __name__ == "__main__":
    main()
