#!/usr/bin/env python3
"""Async SLO-aware serving: deadlines, admission control, load shedding.

The serving front door this repo grew in PR 8, end to end:
1. train a small 2-task suite and open the full async stack over it —
   ``AsyncFrontend`` over ``ModelRouter`` over ``BatchScheduler`` —
   with a bounded pending queue,
2. ``await`` queries with per-request SLO deadlines: the scheduler's
   deadline thread flushes *early* when the predicted flush cost
   (live service percentiles x cache hit rate) would eat a request's
   remaining slack,
3. overload the bounded queue open-loop and watch the three admission
   policies differ: ``block`` (async backpressure), ``shed`` (typed
   ``OverloadError`` at the door), ``shed-expired`` (past-deadline
   queue entries resolve with ``DeadlineExceededError``),
4. read the goodput story from ``ServingStats``: served / shed /
   expired / deadline-met counts — every request accounted for,
   no future ever stranded.

Run with: PYTHONPATH=src python examples/async_serving.py
"""

import asyncio
import time

from repro.eval.suite import BabiSuite, SuiteConfig
from repro.serving import (
    AsyncFrontend,
    DeadlineExceededError,
    ModelRouter,
    OverloadError,
    QueryRequest,
)

TASKS = (1, 6)
N_REQUESTS = 192


def build_requests(suite, deadline_s=None):
    requests = []
    for i in range(N_REQUESTS):
        task = TASKS[i % len(TASKS)]
        batch = suite.tasks[task].test_batch
        j = i % len(batch)
        requests.append(
            QueryRequest(
                batch.stories[j],
                batch.questions[j],
                n_sentences=int(batch.story_lengths[j]),
                request_id=i,
                task=task,
                deadline_s=deadline_s,
            )
        )
    return requests


async def healthy_traffic(suite) -> None:
    print("\n=== 2. Awaitable queries with SLO deadlines ===")
    router = ModelRouter.open(
        suite,
        max_batch=32,
        max_wait_s=0.05,  # lazy timer: the deadline flush must beat it
        cache_entries=64,
        inline_flush=False,
    )
    async with AsyncFrontend(router, default_deadline_s=0.05) as frontend:
        requests = build_requests(suite)
        start = time.perf_counter()
        responses = await frontend.query_many(requests)
        seconds = time.perf_counter() - start
        stats = frontend.stats
        correct_ids = sum(
            r.request_id == requests[i].request_id
            for i, r in enumerate(responses)
        )
        print(
            f"{len(responses)} responses in {seconds * 1e3:.0f} ms "
            f"({correct_ids} in submission order), "
            f"mean batch {stats.mean_batch_size:.1f}, "
            f"p95 latency {stats.p95_latency_s * 1e3:.1f} ms"
        )
    print(
        f"deadline attainment: {stats.deadline_met} met / "
        f"{stats.deadline_missed} missed "
        f"(goodput {stats.goodput_rate:.1%})"
    )


async def overloaded_traffic(suite, policy: str) -> None:
    router = ModelRouter.open(
        suite,
        max_batch=16,
        max_wait_s=0.001,
        queue_cap=8,
        overload_policy=policy,
        inline_flush=False,
    )
    served = shed = expired = 0
    async with AsyncFrontend(router) as frontend:
        results = await frontend.query_many(
            build_requests(suite, deadline_s=0.05),
            return_exceptions=True,
        )
        for result in results:
            if isinstance(result, OverloadError):
                shed += 1
            elif isinstance(result, DeadlineExceededError):
                expired += 1
            elif isinstance(result, BaseException):
                raise result  # typed errors only — anything else is a bug
            else:
                served += 1
    stats = frontend.stats
    print(
        f"policy={policy:>12}: {served} served, {shed} shed, "
        f"{expired} expired (goodput {stats.goodput_rate:.1%}) — "
        f"all {len(results)} requests resolved"
    )


async def main_async(suite) -> None:
    await healthy_traffic(suite)

    print("\n=== 3. Overload: a bounded queue under a request storm ===")
    print(f"queue_cap=8, {N_REQUESTS} requests submitted at once:")
    for policy in ("block", "shed", "shed-expired"):
        await overloaded_traffic(suite, policy)
    print(
        "block trades latency for completeness; shed keeps admitted\n"
        "latency bounded by rejecting at the door; shed-expired also\n"
        "refuses to burn batch capacity on answers already past due."
    )


def main() -> None:
    print("=== 1. Train a 2-task suite ===")
    suite = BabiSuite.build(
        SuiteConfig(task_ids=TASKS, n_train=150, n_test=50, epochs=30, seed=7)
    )
    for task in TASKS:
        accuracy = suite.tasks[task].test_accuracy
        print(f"task {task}: test accuracy {accuracy:.3f}")
    asyncio.run(main_async(suite))


if __name__ == "__main__":
    main()
