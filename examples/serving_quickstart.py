#!/usr/bin/env python3
"""Serving quickstart: train once, persist, serve micro-batched queries.

The deployment loop the serving API is built around, in four steps:
1. train a small 2-task suite and save it with ``save_suite`` (this is
   the programmatic twin of ``python -m repro train --save DIR``),
2. reload the artifacts — bit-exact, no retraining — with
   ``load_suite``,
3. open a unified ``Predictor`` over the artifacts for both the
   vectorised software engine and the accelerator co-simulation,
4. serve individually submitted requests through the micro-batching
   ``BatchScheduler`` and print its throughput statistics.

Run with: PYTHONPATH=src python examples/serving_quickstart.py
"""

import tempfile
import time

from repro.artifacts import load_suite, save_suite, verify_artifacts
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.serving import BatchScheduler, QueryRequest, open_predictor

TASK_ID = 1


def main() -> None:
    print("=== 1. Train a 2-task suite and persist it ===")
    suite = BabiSuite.build(
        SuiteConfig(task_ids=(1, 6), n_train=150, n_test=50, epochs=30, seed=7)
    )
    artifacts = tempfile.mkdtemp(prefix="mann-artifacts-")
    save_suite(suite, artifacts)
    print(f"saved tasks {suite.task_ids} to {artifacts}")

    print("\n=== 2. Reload (bit-exact, no retraining) ===")
    verify_artifacts(artifacts)  # recomputes predictions, asserts equality
    served = load_suite(artifacts)
    print(f"restored mean test accuracy: {served.mean_test_accuracy():.3f}")

    print("\n=== 3. One Predictor facade, two devices ===")
    batch = served.tasks[TASK_ID].test_batch
    request = QueryRequest(
        batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
    )
    sw = open_predictor(artifacts, TASK_ID, mips_backend="threshold", rho=1.0)
    hw = open_predictor(
        artifacts, TASK_ID, device="hw", mips_backend="threshold", rho=1.0
    )
    for predictor in (sw, hw):
        response = predictor.predict(request)
        print(
            f"device={predictor.device}: answer={response.answer!r} "
            f"comparisons={response.comparisons} early_exit={response.early_exit}"
        )

    print("\n=== 4. Micro-batched serving (with the story cache) ===")
    # 256 requests over 50 test stories: every story replays ~5x, so
    # the cross-request story-encoding cache skips most memory writes.
    cached = open_predictor(
        artifacts, TASK_ID, mips_backend="threshold", rho=1.0,
        cache_entries=128,
    )
    requests = [
        QueryRequest(
            batch.stories[i % len(batch)],
            batch.questions[i % len(batch)],
            int(batch.story_lengths[i % len(batch)]),
            request_id=i,
        )
        for i in range(256)
    ]
    start = time.perf_counter()
    with BatchScheduler(cached, max_batch=32, max_wait_s=0.005) as scheduler:
        futures = [scheduler.submit(r) for r in requests]
        responses = [f.result() for f in futures]
    elapsed = time.perf_counter() - start
    correct = sum(
        r.label == int(batch.answers[r.request_id % len(batch)]) for r in responses
    )
    stats = scheduler.stats
    print(
        f"{len(requests)} requests in {elapsed * 1e3:.1f} ms "
        f"({len(requests) / elapsed:,.0f} req/s), accuracy {correct / len(requests):.3f}"
    )
    print(
        f"flushes={stats.flushes} mean_batch={stats.mean_batch_size:.1f} "
        f"p50={stats.p50_latency_s * 1e3:.2f} ms "
        f"p95={stats.p95_latency_s * 1e3:.2f} ms "
        f"p99={stats.p99_latency_s * 1e3:.2f} ms"
    )
    print(
        f"story cache: hit rate {stats.cache_hit_rate:.1%} "
        f"({stats.cache_hits} hits / {stats.cache_misses} misses)"
    )


if __name__ == "__main__":
    main()
