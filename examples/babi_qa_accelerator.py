#!/usr/bin/env python3
"""Full bAbI QA pipeline on the accelerator: Table I and Fig. 4 style.

Builds a multi-task suite with a shared vocabulary (like the paper's
large output dimension |I|), trains one MANN per task, then reproduces
the Table I configuration sweep and the per-task Fig. 4 energy
efficiency series. Pass ``--tasks`` / ``--n-train`` / ``--n-test`` to
scale the run (defaults keep it under ~2 minutes).
"""

import argparse

from repro.eval.experiments import (
    run_fig4,
    run_interface_ablation,
    run_table1,
)
from repro.eval.suite import BabiSuite, SuiteConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tasks",
        type=int,
        nargs="+",
        default=list(range(1, 21)),
        help="bAbI task ids to include (default: all 20)",
    )
    parser.add_argument("--n-train", type=int, default=150)
    parser.add_argument("--n-test", type=int, default=50)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Building suite: tasks={args.tasks}")
    suite = BabiSuite.build(
        SuiteConfig(
            task_ids=tuple(args.tasks),
            n_train=args.n_train,
            n_test=args.n_test,
            epochs=args.epochs,
            seed=args.seed,
        )
    )
    print(
        f"shared vocabulary |I| = {len(suite.vocab)}, "
        f"mean test accuracy = {suite.mean_test_accuracy():.3f}\n"
    )
    for task_id in suite.task_ids:
        system = suite.tasks[task_id]
        print(
            f"  task {task_id:>2}: test_acc={system.test_accuracy:.3f} "
            f"mem={system.train.memory_size:>2} "
            f"epochs={system.train_result.epochs_run}"
        )

    print("\n" + "=" * 68)
    table1 = run_table1(suite)
    print(table1.to_table().render())
    print(
        "\nITH inference-time reduction by frequency "
        "(paper: 6-18%, largest at 25 MHz):"
    )
    for mhz in table1.frequencies:
        print(f"  {mhz:5.0f} MHz: {100 * table1.ith_time_reduction(mhz):5.1f}%")
    print(
        f"accelerator accuracy: plain={table1.accuracy_plain:.3f} "
        f"ith(rho=1.0)={table1.accuracy_ith:.3f}"
    )

    print("\n" + "=" * 68)
    fig4 = run_fig4(suite)
    print(fig4.to_table().render())
    best = fig4.best_config_per_task()
    fpga_best = sum(1 for config in best.values() if config.startswith("FPGA"))
    print(
        f"\nFPGA configurations are the most energy-efficient on "
        f"{fpga_best}/{len(best)} tasks"
    )

    print("\n" + "=" * 68)
    ablation = run_interface_ablation(suite)
    print(ablation.to_table().render())


if __name__ == "__main__":
    main()
