#!/usr/bin/env python3
"""Fig. 2b + Fig. 3: logit distributions and the rho/ordering sweep.

Shows the data inference thresholding is built on (the two logit
mixtures per output index), then sweeps the thresholding constant rho
with and without silhouette index ordering and prints the normalised
accuracy / comparison-count series of Fig. 3.
"""

import argparse

from repro.eval.experiments import run_fig3, summarise_logit_distributions
from repro.eval.suite import BabiSuite, SuiteConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tasks", type=int, nargs="+", default=[1, 2, 6, 11, 15, 16]
    )
    parser.add_argument("--n-train", type=int, default=200)
    parser.add_argument("--n-test", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=35)
    args = parser.parse_args()

    suite = BabiSuite.build(
        SuiteConfig(
            task_ids=tuple(args.tasks),
            n_train=args.n_train,
            n_test=args.n_test,
            epochs=args.epochs,
        )
    )

    # Fig. 2b: the logit mixtures the thresholds are estimated from.
    first_task = suite.task_ids[0]
    summary = summarise_logit_distributions(
        suite.tasks[first_task], suite.vocab.words()
    )
    print(summary.to_table().render())
    print(
        "\n'separation' is (mean_pos - mean_neg) / pooled std; a large value"
        "\nmeans thresholding can fire early with confidence. Indices are"
        "\nvisited in descending silhouette order (Step 3 of Algorithm 1).\n"
    )

    # Fig. 3: the rho x ordering sweep.
    result = run_fig3(suite)
    print(result.to_table().render())

    with_order = [p for p in result.points if p.rho is not None and p.index_ordering]
    without_order = [
        p for p in result.points if p.rho is not None and not p.index_ordering
    ]
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    print(
        "\nOrdering benefit (paper: ordering improves both accuracy and"
        " speed):"
    )
    print(
        f"  mean normalised comparisons: with ordering "
        f"{mean([p.normalised_comparisons for p in with_order]):.3f} vs "
        f"without {mean([p.normalised_comparisons for p in without_order]):.3f}"
    )
    print(
        f"  mean normalised accuracy:    with ordering "
        f"{mean([p.normalised_accuracy for p in with_order]):.3f} vs "
        f"without {mean([p.normalised_accuracy for p in without_order]):.3f}"
    )


if __name__ == "__main__":
    main()
