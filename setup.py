"""Setup shim so editable installs work without the `wheel` package."""
from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
    extras_require={
        # The async front-end tests drive AsyncFrontend through plain
        # asyncio.run() so the core suite needs no plugin; pytest-asyncio
        # is declared for environments that want native `async def` tests
        # against the same surface.
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
            "pytest-asyncio",
        ],
    },
)
