"""Tests for the CPU/GPU baseline device models."""

import pytest

from repro.devices import CpuModel, GpuModel
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.opcounts import ExampleOpCounts, OpCounter


@pytest.fixture()
def workload():
    """A representative per-task op trace: 50 examples of a QA task."""
    counter = OpCounter(embed_dim=20)
    total = ExampleOpCounts()
    for _ in range(50):
        total = total + counter.example([5, 5, 4, 6], 3, hops=3, output_visited=150)
    return total


class TestGpuModel:
    def test_time_positive_and_launch_bound(self, workload):
        gpu = GpuModel()
        report = gpu.run(workload, 50)
        breakdown = gpu.time_breakdown(workload, 50)
        assert report.seconds > 0
        # The paper's premise: tiny recurrent kernels are launch-bound.
        assert breakdown["kernel_launch"] > 0.5 * report.seconds

    def test_power_is_measured_class_value(self, workload):
        assert GpuModel().run(workload, 50).power_w == pytest.approx(
            DEFAULT_CALIBRATION.gpu_power
        )

    def test_energy_and_efficiency(self, workload):
        report = GpuModel().run(workload, 50)
        assert report.energy_joules == pytest.approx(
            report.seconds * report.power_w
        )
        assert report.flops_per_kilojoule() > 0

    def test_time_scales_with_launches(self, workload):
        gpu = GpuModel()
        double = workload + workload
        assert gpu.run(double, 100).seconds > 1.9 * gpu.run(workload, 50).seconds

    def test_invalid_examples_rejected(self, workload):
        with pytest.raises(ValueError):
            GpuModel().run(workload, 0)


class TestCpuModel:
    def test_time_positive(self, workload):
        assert CpuModel().run(workload, 50).seconds > 0

    def test_power(self, workload):
        assert CpuModel().run(workload, 50).power_w == pytest.approx(
            DEFAULT_CALIBRATION.cpu_power
        )

    def test_breakdown_sums_to_total(self, workload):
        cpu = CpuModel()
        report = cpu.run(workload, 50)
        breakdown = cpu.time_breakdown(workload, 50)
        assert sum(breakdown.values()) == pytest.approx(report.seconds)

    def test_invalid_examples_rejected(self, workload):
        with pytest.raises(ValueError):
            CpuModel().run(workload, 0)


class TestPaperOrdering:
    """The relative device behaviour the paper measured."""

    def test_cpu_roughly_at_gpu_parity(self, workload):
        gpu = GpuModel().run(workload, 50)
        cpu = CpuModel().run(workload, 50)
        speedup = gpu.seconds / cpu.seconds
        assert 0.7 < speedup < 1.2  # paper: 0.94x

    def test_cpu_more_energy_efficient_than_gpu(self, workload):
        gpu = GpuModel().run(workload, 50)
        cpu = CpuModel().run(workload, 50)
        ratio = gpu.energy_joules / cpu.energy_joules
        assert 1.3 < ratio < 2.5  # paper: ~1.7-1.8x

    def test_gpu_uses_most_power(self, workload):
        gpu = GpuModel().run(workload, 50)
        cpu = CpuModel().run(workload, 50)
        assert gpu.power_w > cpu.power_w
