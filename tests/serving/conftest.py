"""Fixtures for the serving/artifacts layer: one tiny trained suite.

Training two 30-example tasks for 5 epochs takes well under a second,
so these tests build their own suite instead of the heavier session
``small_suite`` — artifact and predictor assertions only need trained
(not accurate) models.
"""

from __future__ import annotations

import pytest

from repro.artifacts import save_suite
from repro.eval.suite import BabiSuite, SuiteConfig


@pytest.fixture(scope="package")
def tiny_suite() -> BabiSuite:
    return BabiSuite.build(
        SuiteConfig(task_ids=(1, 6), n_train=30, n_test=10, epochs=5, seed=9)
    )


@pytest.fixture(scope="package")
def artifacts_dir(tiny_suite, tmp_path_factory):
    directory = tmp_path_factory.mktemp("suite_artifacts")
    save_suite(tiny_suite, directory)
    return directory
