"""Cross-request story-encoding cache: bit-exactness and bookkeeping.

The cache's whole value proposition is "skip Eqs. 1-2 and nobody can
tell": every label, logit, comparison count and early-exit flag must be
bit-identical whether a story's memory was computed this flush, served
from the cache, or deduped within the flush — across every MIPS
backend, both shard axes and both scheduler worker modes. The rest of
the module pins the cache mechanics themselves: LRU order, byte bounds,
within-flush dedupe and the hash-collision guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    MemoryCache,
    ModelRouter,
    QueryRequest,
    ServingStats,
    open_predictor,
)


def _suite_requests(suite, tasks=(1, 6)):
    requests = []
    for task in tasks:
        batch = suite.tasks[task].test_batch
        for i in range(len(batch)):
            requests.append(
                QueryRequest(
                    batch.stories[i],
                    batch.questions[i],
                    n_sentences=int(batch.story_lengths[i]),
                    request_id=f"{task}-{i}",
                    task=task,
                )
            )
    return requests


def _serve_twice(artifacts_dir, requests, **kwargs):
    """Serve the same stream twice through one router: pass 1 is the
    cold cache (all misses), pass 2 replays every story (all hits)."""
    with ModelRouter.open(
        artifacts_dir, max_batch=8, start_worker=False, **kwargs
    ) as router:
        passes = []
        for _ in range(2):
            futures = [router.submit(r) for r in requests]
            router.flush()
            passes.append([f.result(timeout=60.0) for f in futures])
        stats = router.stats
    return passes[0], passes[1], stats


def _assert_identical(expected, actual):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a.label == b.label
        assert a.logit == b.logit  # bitwise float equality, not approx
        assert a.comparisons == b.comparisons
        assert a.early_exit == b.early_exit
        assert a.answer == b.answer
        assert a.request_id == b.request_id


class TestGoldenParityMatrix:
    """cached == uncached, cold and hot, across the whole matrix."""

    @pytest.mark.parametrize("worker_mode", ["thread", "process"])
    @pytest.mark.parametrize(
        "backend, shards, shard_axis",
        [
            ("exact", None, "batch"),
            ("threshold", None, "batch"),
            ("alsh", 2, "batch"),
            ("clustering", 2, "batch"),
            ("exact", 3, "vocab"),
            ("threshold", 3, "vocab"),
        ],
    )
    def test_bit_identical_cold_and_hot(
        self,
        tiny_suite,
        artifacts_dir,
        backend,
        shards,
        shard_axis,
        worker_mode,
    ):
        requests = _suite_requests(tiny_suite)
        kwargs = dict(
            mips_backend=backend,
            shards=shards,
            shard_axis=shard_axis,
            seed=0,
            n_workers=2,
            worker_mode=worker_mode,
        )
        baseline, replay, _ = _serve_twice(artifacts_dir, requests, **kwargs)
        _assert_identical(baseline, replay)  # sanity: model is deterministic
        cold, hot, stats = _serve_twice(
            artifacts_dir, requests, cache_entries=256, **kwargs
        )
        _assert_identical(baseline, cold)  # miss path == no cache
        _assert_identical(baseline, hot)  # hit path == no cache
        assert stats.cache_misses > 0
        if worker_mode == "thread":
            # One shared cache per route: the replay pass must hit. (In
            # process mode each worker owns a cache and chunk placement
            # is pool-scheduling dependent, so hits are not guaranteed.)
            assert stats.cache_hits > 0

    def test_process_mode_hit_stats_merged_parent_side(
        self, tiny_suite, artifacts_dir
    ):
        """Worker processes own their caches; the parent still sees the
        cumulative hit/miss totals in the scheduler stats. One worker,
        so every replayed chunk deterministically lands on the process
        that cached it (with more workers, chunk placement — and hence
        the exact hit count — is pool-scheduling dependent)."""
        requests = _suite_requests(tiny_suite, tasks=(1,))
        _, _, stats = _serve_twice(
            artifacts_dir,
            requests,
            cache_entries=256,
            n_workers=1,
            worker_mode="process",
        )
        assert stats.cache_lookups > 0
        assert stats.cache_hits > 0
        assert 0.0 < stats.cache_hit_rate <= 1.0

    def test_direct_predictor_replay_hits(self, artifacts_dir):
        """open_predictor(cache_entries=...) alone caches across calls."""
        predictor = open_predictor(artifacts_dir, 1, cache_entries=64)
        plain = open_predictor(artifacts_dir, 1)
        batch = predictor.engine  # noqa: F841  (predictor built)
        from repro.artifacts import load_suite

        test = load_suite(artifacts_dir).tasks[1].test_batch
        requests = [
            QueryRequest(
                test.stories[i],
                test.questions[i],
                n_sentences=int(test.story_lengths[i]),
                request_id=i,
            )
            for i in range(len(test))
        ]
        expected = plain.predict_batch(requests)
        _assert_identical(expected, predictor.predict_batch(requests))
        _assert_identical(expected, predictor.predict_batch(requests))
        stats = predictor.cache.stats
        assert stats.hits > 0 and stats.misses > 0
        assert stats.hit_rate > 0


class TestMemoryCacheMechanics:
    def _story(self, rng, length=4, words=6):
        return rng.integers(1, 50, (length, words)).astype(np.int64)

    def _mem(self, rng, length=4, embed=8):
        return rng.normal(size=(length, embed))

    def test_lru_eviction_order(self):
        rng = np.random.default_rng(0)
        cache = MemoryCache(capacity_entries=2)
        stories = [self._story(rng) for _ in range(3)]
        keys = [MemoryCache.key(s) for s in stories]
        cache.put(keys[0], stories[0], self._mem(rng), self._mem(rng))
        cache.put(keys[1], stories[1], self._mem(rng), self._mem(rng))
        # Touch story 0 so story 1 becomes the LRU entry.
        assert cache.get(keys[0], stories[0]) is not None
        cache.put(keys[2], stories[2], self._mem(rng), self._mem(rng))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(keys[1], stories[1]) is None  # evicted (LRU)
        assert cache.get(keys[0], stories[0]) is not None  # kept (touched)
        assert cache.get(keys[2], stories[2]) is not None

    def test_capacity_bytes_bound(self):
        rng = np.random.default_rng(1)
        story = self._story(rng)
        mem_a, mem_c = self._mem(rng), self._mem(rng)
        entry_bytes = story.nbytes + mem_a.nbytes + mem_c.nbytes
        cache = MemoryCache(capacity_entries=100, capacity_bytes=2 * entry_bytes)
        for _ in range(5):
            s = self._story(rng)
            cache.put(MemoryCache.key(s), s, self._mem(rng), self._mem(rng))
        assert len(cache) == 2
        assert cache.nbytes <= 2 * entry_bytes
        assert cache.stats.evictions == 3
        # An entry larger than the whole budget is simply not cached.
        wide = self._story(rng, length=40, words=64)
        cache.put(
            MemoryCache.key(wide),
            wide,
            self._mem(rng, length=40, embed=64),
            self._mem(rng, length=40, embed=64),
        )
        assert cache.get(MemoryCache.key(wide), wide) is None

    def test_key_separates_shapes_with_identical_bytes(self):
        flat = np.arange(12, dtype=np.int64)
        assert MemoryCache.key(flat.reshape(2, 6)) != MemoryCache.key(
            flat.reshape(3, 4)
        )

    def test_collision_guard_full_array_equality(self, monkeypatch):
        """Two different stories forced onto one hash key must not serve
        each other's memories — the stored-story equality check catches
        the collision and serves a miss."""
        rng = np.random.default_rng(2)
        cache = MemoryCache(capacity_entries=8)
        story_a, story_b = self._story(rng), self._story(rng)
        mem = self._mem(rng)
        monkeypatch.setattr(
            MemoryCache, "key", staticmethod(lambda story: b"same-key")
        )
        cache.put(MemoryCache.key(story_a), story_a, mem, mem)
        assert cache.get(MemoryCache.key(story_b), story_b) is None
        assert cache.stats.collisions == 1
        hit = cache.get(MemoryCache.key(story_a), story_a)
        assert hit is not None and np.array_equal(hit[0], mem)

    def test_within_flush_dedupe(self, artifacts_dir):
        """Duplicate stories inside one batch encode once: the cache
        records one miss per distinct story plus dedupes for the rest,
        and the duplicate rows answer identically."""
        from repro.artifacts import load_suite

        predictor = open_predictor(artifacts_dir, 1, cache_entries=64)
        test = load_suite(artifacts_dir).tasks[1].test_batch
        base = QueryRequest(
            test.stories[0],
            test.questions[0],
            n_sentences=int(test.story_lengths[0]),
        )
        other = QueryRequest(
            test.stories[1],
            test.questions[1],
            n_sentences=int(test.story_lengths[1]),
        )
        responses = predictor.predict_batch([base, other, base, base])
        stats = predictor.cache.stats
        assert stats.misses == 2  # two distinct stories
        assert stats.dedupes == 2  # the two replayed rows
        assert responses[0].logit == responses[2].logit == responses[3].logit

    def test_collision_guard_end_to_end(self, artifacts_dir, monkeypatch):
        """Even with a degenerate (constant) hash the engine still
        answers every request correctly — collisions degrade to
        misses, never to wrong memories."""
        from repro.artifacts import load_suite

        plain = open_predictor(artifacts_dir, 1)
        cached = open_predictor(artifacts_dir, 1, cache_entries=64)
        monkeypatch.setattr(
            MemoryCache, "key", staticmethod(lambda story: b"constant")
        )
        test = load_suite(artifacts_dir).tasks[1].test_batch
        requests = [
            QueryRequest(
                test.stories[i],
                test.questions[i],
                n_sentences=int(test.story_lengths[i]),
                request_id=i,
            )
            for i in range(6)
        ]
        expected = plain.predict_batch(requests)
        _assert_identical(expected, cached.predict_batch(requests))
        _assert_identical(expected, cached.predict_batch(requests))
        assert cached.cache.stats.collisions > 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity_entries"):
            MemoryCache(capacity_entries=0)
        with pytest.raises(ValueError, match="capacity_bytes"):
            MemoryCache(capacity_bytes=0)

    def test_hw_device_rejects_cache(self, artifacts_dir):
        with pytest.raises(ValueError, match="cache_entries"):
            open_predictor(artifacts_dir, 1, device="hw", cache_entries=8)


class TestServingStatsReservoir:
    def test_bounded_growth_exact_aggregates(self):
        stats = ServingStats()
        n = 3 * ServingStats.RESERVOIR_CAPACITY
        stats.record_latencies(float(i) for i in range(n))
        assert len(stats.latencies_s) == ServingStats.RESERVOIR_CAPACITY
        assert stats.latency_count == n  # exact count survives sampling
        assert stats.mean_latency_s == pytest.approx((n - 1) / 2)  # exact sum
        assert stats.max_latency_s == float(n - 1)  # exact max
        for _ in range(n):
            stats.record_flush(8, n_shards=2)
        assert len(stats.batch_sizes) == ServingStats.RESERVOIR_CAPACITY
        assert stats.requests == 8 * n
        assert stats.mean_batch_size == 8.0
        assert stats.mean_shards_per_flush == 2.0

    def test_percentiles_exact_below_capacity(self):
        stats = ServingStats()
        stats.record_latencies([0.001 * i for i in range(1, 101)])
        assert stats.p50_latency_s == pytest.approx(0.0505)
        assert stats.p95_latency_s == pytest.approx(0.09505)
        assert stats.p99_latency_s == pytest.approx(0.09901)
        empty = ServingStats()
        assert empty.p50_latency_s == empty.p99_latency_s == 0.0

    def test_small_series_remain_exact_lists(self):
        """Below the reservoir capacity the series are the full data —
        the compatibility contract existing tests rely on."""
        stats = ServingStats()
        stats.record_flush(4, n_shards=3)
        stats.record_latencies([0.25, 0.5])
        assert stats.batch_sizes == [4]
        assert stats.shards_per_flush == [3]
        assert stats.latencies_s == [0.25, 0.5]

    def test_cache_counter_mirror(self):
        stats = ServingStats()
        assert stats.cache_hit_rate == 0.0
        stats.set_cache_counters(30, 10, 2)
        assert stats.cache_lookups == 40
        assert stats.cache_hit_rate == pytest.approx(0.75)
        assert stats.cache_evictions == 2
