"""The typed failure surface and its transient-vs-permanent taxonomy.

The taxonomy is load-bearing: ``is_transient`` is the single verdict
the retry layer consults, so these tests pin which failures may be
replayed (worker deaths — predictions are pure, replay is safe) and
which must resolve immediately (corruption, admission, lifecycle).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.serving import api
from repro.serving.chaos import InjectedFaultError
from repro.serving.errors import (
    TRANSIENT_ERRORS,
    DeadlineExceededError,
    OverloadError,
    PayloadCorruptionError,
    RouteUnavailableError,
    SchedulerClosedError,
    ServingError,
    WorkerCrashError,
    is_transient,
)


class TestTaxonomy:
    @pytest.mark.parametrize(
        "error",
        [
            WorkerCrashError("worker died"),
            InjectedFaultError("chaos kill"),
            BrokenExecutor("pool broke"),
            BrokenProcessPool("a process died"),
        ],
    )
    def test_transient_failures_are_replayable(self, error):
        assert is_transient(error)

    @pytest.mark.parametrize(
        "error",
        [
            PayloadCorruptionError("bad bytes"),
            RouteUnavailableError("breaker open"),
            SchedulerClosedError("closed"),
            OverloadError("queue full"),
            DeadlineExceededError("budget spent"),
            ValueError("malformed story"),
            RuntimeError("unknown"),
        ],
    )
    def test_everything_else_is_permanent(self, error):
        assert not is_transient(error)

    def test_transient_tuple_is_the_source_of_truth(self):
        assert WorkerCrashError in TRANSIENT_ERRORS
        assert BrokenExecutor in TRANSIENT_ERRORS


class TestHierarchy:
    def test_serving_errors_are_runtime_errors(self):
        """Callers that caught RuntimeError before the taxonomy existed
        (e.g. closed-scheduler submits) keep working."""
        for cls in (
            ServingError,
            OverloadError,
            SchedulerClosedError,
            WorkerCrashError,
            PayloadCorruptionError,
            RouteUnavailableError,
        ):
            assert issubclass(cls, RuntimeError)
        assert issubclass(SchedulerClosedError, ServingError)

    def test_deadline_error_stays_a_timeout(self):
        """Generic timeout handling must keep catching deadline misses."""
        assert issubclass(DeadlineExceededError, TimeoutError)

    def test_injected_fault_is_a_worker_crash(self):
        """Chaos faults ride the same retry path as real worker deaths."""
        assert issubclass(InjectedFaultError, WorkerCrashError)

    def test_api_reexports_are_the_same_objects(self):
        """Legacy ``repro.serving.api`` imports resolve to the errors
        module's classes — one type, two import paths."""
        assert api.OverloadError is OverloadError
        assert api.DeadlineExceededError is DeadlineExceededError
