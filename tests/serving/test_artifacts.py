"""Artifact round-trip: save_suite / load_suite must be bit-exact."""

import json

import numpy as np
import pytest

from repro.artifacts import (
    FORMAT_VERSION,
    decode_threshold_model,
    encode_threshold_model,
    load_suite,
    save_suite,
    verify_artifacts,
)
from repro.eval.experiments import run_table1
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.mips.thresholding import fit_threshold_model


class TestRoundTrip:
    def test_config_and_vocab_survive(self, tiny_suite, artifacts_dir):
        loaded = load_suite(artifacts_dir)
        assert loaded.config == tiny_suite.config
        assert loaded.task_ids == tiny_suite.task_ids
        assert loaded.vocab.words() == tiny_suite.vocab.words()

    def test_weights_bit_exact(self, tiny_suite, artifacts_dir):
        loaded = load_suite(artifacts_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id]
            for name in ("w_emb_a", "w_emb_c", "w_emb_q", "w_r", "w_o", "t_a", "t_c"):
                original = getattr(system.weights, name)
                assert np.array_equal(getattr(restored.weights, name), original)
                assert getattr(restored.weights, name).dtype == original.dtype

    def test_logits_and_predictions_bit_exact(self, tiny_suite, artifacts_dir):
        """load_suite(save_suite(suite)) reproduces identical outputs."""
        loaded = load_suite(artifacts_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id]
            batch = system.test_batch
            args = (batch.stories, batch.questions, batch.story_lengths)
            assert np.array_equal(
                restored.batch_engine.logits(*args), system.batch_engine.logits(*args)
            )
            assert np.array_equal(
                restored.batch_engine.predict(*args),
                system.batch_engine.predict(*args),
            )
            assert np.array_equal(restored.train_logits, system.train_logits)

    def test_threshold_model_bit_exact(self, tiny_suite, artifacts_dir):
        loaded = load_suite(artifacts_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id].threshold_model
            original = system.threshold_model
            assert np.array_equal(restored.order, original.order)
            assert np.array_equal(restored.silhouettes, original.silhouettes)
            for rho in (1.0, 0.99, 0.9):
                assert np.array_equal(
                    restored.thresholds(rho), original.thresholds(rho)
                )

    def test_encoded_batches_and_summary_survive(self, tiny_suite, artifacts_dir):
        loaded = load_suite(artifacts_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id]
            assert np.array_equal(
                restored.test_batch.answers, system.test_batch.answers
            )
            assert np.array_equal(
                restored.train_batch.stories, system.train_batch.stories
            )
            assert restored.test_accuracy == system.test_accuracy
            assert (
                restored.train_result.majority_accuracy
                == system.train_result.majority_accuracy
            )
            assert restored.train is None and restored.test is None
            assert restored.vocab_size == system.vocab_size

    def test_verify_artifacts_passes(self, artifacts_dir):
        suite = verify_artifacts(artifacts_dir)
        assert suite.task_ids == [1, 6]

    def test_suite_save_load_methods(self, tiny_suite, tmp_path):
        tiny_suite.save(tmp_path / "arts")
        loaded = BabiSuite.load(tmp_path / "arts")
        assert loaded.task_ids == tiny_suite.task_ids


class TestExperimentsFromArtifacts:
    def test_table1_matches_fresh_suite(self, tiny_suite, artifacts_dir):
        """`table1 --artifacts DIR` == freshly built suite, no retraining."""
        fresh = run_table1(tiny_suite)
        restored = run_table1(load_suite(artifacts_dir))
        assert restored.rows == fresh.rows
        assert restored.accuracy_plain == fresh.accuracy_plain
        assert restored.accuracy_ith == fresh.accuracy_ith


class TestKdeCodec:
    def test_kde_threshold_model_round_trips(self, tiny_suite):
        system = tiny_suite.tasks[1]
        model = fit_threshold_model(
            system.train_logits, system.train_batch.answers, density="kde"
        )
        restored = decode_threshold_model(encode_threshold_model(model))
        assert restored.uses_kde
        assert np.array_equal(restored.thresholds(0.9), model.thresholds(0.9))


class TestFailureModes:
    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_suite(tmp_path / "nope")

    def test_version_mismatch_rejected(self, tiny_suite, tmp_path):
        directory = save_suite(tiny_suite, tmp_path / "arts")
        marker = directory / "suite.json"
        manifest = json.loads(marker.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        marker.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            load_suite(directory)

    def test_refuses_to_mix_suites(self, tiny_suite, tmp_path):
        directory = save_suite(tiny_suite, tmp_path / "arts")
        other = BabiSuite.build(
            SuiteConfig(task_ids=(2,), n_train=20, n_test=5, epochs=2, seed=1)
        )
        with pytest.raises(FileExistsError):
            save_suite(other, directory)

    def test_resave_same_suite_is_allowed(self, tiny_suite, tmp_path):
        directory = save_suite(tiny_suite, tmp_path / "arts")
        save_suite(tiny_suite, directory)  # idempotent overwrite
        assert verify_artifacts(directory).task_ids == [1, 6]
