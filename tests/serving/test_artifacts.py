"""Artifact round-trip: save_suite / load_suite must be bit-exact."""

import json

import numpy as np
import pytest

from repro.artifacts import (
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    check_format_version,
    decode_quantized_weights,
    decode_threshold_model,
    encode_quantized_weights,
    encode_threshold_model,
    load_suite,
    save_suite,
    verify_artifacts,
)
from repro.eval.experiments import run_table1
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.mann.quantize import QFormat, QuantizedWeights
from repro.mips.thresholding import fit_threshold_model


class TestRoundTrip:
    def test_config_and_vocab_survive(self, tiny_suite, artifacts_dir):
        loaded = load_suite(artifacts_dir)
        assert loaded.config == tiny_suite.config
        assert loaded.task_ids == tiny_suite.task_ids
        assert loaded.vocab.words() == tiny_suite.vocab.words()

    def test_weights_bit_exact(self, tiny_suite, artifacts_dir):
        loaded = load_suite(artifacts_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id]
            for name in ("w_emb_a", "w_emb_c", "w_emb_q", "w_r", "w_o", "t_a", "t_c"):
                original = getattr(system.weights, name)
                assert np.array_equal(getattr(restored.weights, name), original)
                assert getattr(restored.weights, name).dtype == original.dtype

    def test_logits_and_predictions_bit_exact(self, tiny_suite, artifacts_dir):
        """load_suite(save_suite(suite)) reproduces identical outputs."""
        loaded = load_suite(artifacts_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id]
            batch = system.test_batch
            args = (batch.stories, batch.questions, batch.story_lengths)
            assert np.array_equal(
                restored.batch_engine.logits(*args), system.batch_engine.logits(*args)
            )
            assert np.array_equal(
                restored.batch_engine.predict(*args),
                system.batch_engine.predict(*args),
            )
            assert np.array_equal(restored.train_logits, system.train_logits)

    def test_threshold_model_bit_exact(self, tiny_suite, artifacts_dir):
        loaded = load_suite(artifacts_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id].threshold_model
            original = system.threshold_model
            assert np.array_equal(restored.order, original.order)
            assert np.array_equal(restored.silhouettes, original.silhouettes)
            for rho in (1.0, 0.99, 0.9):
                assert np.array_equal(
                    restored.thresholds(rho), original.thresholds(rho)
                )

    def test_encoded_batches_and_summary_survive(self, tiny_suite, artifacts_dir):
        loaded = load_suite(artifacts_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id]
            assert np.array_equal(
                restored.test_batch.answers, system.test_batch.answers
            )
            assert np.array_equal(
                restored.train_batch.stories, system.train_batch.stories
            )
            assert restored.test_accuracy == system.test_accuracy
            assert (
                restored.train_result.majority_accuracy
                == system.train_result.majority_accuracy
            )
            assert restored.train is None and restored.test is None
            assert restored.vocab_size == system.vocab_size

    def test_verify_artifacts_passes(self, artifacts_dir):
        suite = verify_artifacts(artifacts_dir)
        assert suite.task_ids == [1, 6]

    def test_suite_save_load_methods(self, tiny_suite, tmp_path):
        tiny_suite.save(tmp_path / "arts")
        loaded = BabiSuite.load(tmp_path / "arts")
        assert loaded.task_ids == tiny_suite.task_ids


class TestExperimentsFromArtifacts:
    def test_table1_matches_fresh_suite(self, tiny_suite, artifacts_dir):
        """`table1 --artifacts DIR` == freshly built suite, no retraining."""
        fresh = run_table1(tiny_suite)
        restored = run_table1(load_suite(artifacts_dir))
        assert restored.rows == fresh.rows
        assert restored.accuracy_plain == fresh.accuracy_plain
        assert restored.accuracy_ith == fresh.accuracy_ith


class TestKdeCodec:
    def test_kde_threshold_model_round_trips(self, tiny_suite):
        system = tiny_suite.tasks[1]
        model = fit_threshold_model(
            system.train_logits, system.train_batch.answers, density="kde"
        )
        restored = decode_threshold_model(encode_threshold_model(model))
        assert restored.uses_kde
        assert np.array_equal(restored.thresholds(0.9), model.thresholds(0.9))


class TestFormatVersion:
    def test_current_version_is_supported(self):
        assert FORMAT_VERSION == 2
        assert FORMAT_VERSION in SUPPORTED_VERSIONS
        assert check_format_version(FORMAT_VERSION) == FORMAT_VERSION

    def test_older_supported_version_accepted(self, tiny_suite, tmp_path):
        """A PR 3 (version 1) directory still loads: the v2 additions
        are optional files older writers never produced."""
        directory = save_suite(tiny_suite, tmp_path / "arts")
        marker = directory / "suite.json"
        manifest = json.loads(marker.read_text())
        manifest["format_version"] = 1
        marker.write_text(json.dumps(manifest))
        assert load_suite(directory).task_ids == tiny_suite.task_ids

    def test_future_version_rejected_with_upgrade_hint(
        self, tiny_suite, tmp_path
    ):
        directory = save_suite(tiny_suite, tmp_path / "arts")
        marker = directory / "suite.json"
        manifest = json.loads(marker.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        marker.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="newer build"):
            load_suite(directory)

    def test_non_integer_version_rejected(self):
        with pytest.raises(ValueError, match="format_version"):
            check_format_version(None)
        with pytest.raises(ValueError, match="format_version"):
            check_format_version("2")


class TestQuantizedArtifacts:
    @pytest.fixture(scope="class")
    def quantized_dir(self, tiny_suite, tmp_path_factory):
        directory = tmp_path_factory.mktemp("quantized_artifacts")
        return save_suite(tiny_suite, directory, qformat=QFormat(3, 8))

    def test_round_trip_is_bit_exact(self, tiny_suite, quantized_dir):
        loaded = load_suite(quantized_dir)
        for task_id, system in tiny_suite.tasks.items():
            restored = loaded.tasks[task_id].quantized
            assert restored is not None
            assert restored.qformat == QFormat(3, 8)
            snapped, _ = QuantizedWeights.quantize(
                system.weights, QFormat(3, 8)
            )
            for name in ("w_emb_a", "w_emb_c", "w_emb_q", "w_r", "w_o", "t_a", "t_c"):
                assert np.array_equal(
                    getattr(restored.weights, name),
                    getattr(snapped.weights, name),
                )

    def test_verify_covers_quantized_weights(self, quantized_dir):
        assert verify_artifacts(quantized_dir).task_ids == [1, 6]

    def test_verify_detects_tampered_codes(self, tiny_suite, tmp_path):
        directory = save_suite(
            tiny_suite, tmp_path / "arts", qformat=QFormat(3, 8)
        )
        path = directory / "task_01" / "quantized.npz"
        with np.load(path) as data:
            arrays = {key: data[key].copy() for key in data}
        arrays["code_w_o"][0, 0] += 1
        np.savez(path, **arrays)
        with pytest.raises(AssertionError, match="quantized weight"):
            verify_artifacts(directory)

    def test_codec_inverse(self, tiny_suite):
        system = tiny_suite.tasks[1]
        quantized, report = QuantizedWeights.quantize(
            system.weights, QFormat(2, 6)
        )
        decoded = decode_quantized_weights(
            encode_quantized_weights(quantized), system.weights.config
        )
        assert decoded.qformat == quantized.qformat
        assert np.array_equal(decoded.weights.w_o, quantized.weights.w_o)
        assert report.compression_ratio > 1.0

    def test_resave_preserves_loaded_snapshot(self, quantized_dir, tmp_path):
        """Saving a *loaded* suite keeps its quantized weights without
        re-deriving them (the float model is still present, so they
        must re-verify too)."""
        loaded = load_suite(quantized_dir)
        resaved = save_suite(loaded, tmp_path / "resave")
        again = verify_artifacts(resaved)
        assert again.tasks[1].quantized is not None

    def test_unquantized_artifacts_have_no_snapshot(self, artifacts_dir):
        assert load_suite(artifacts_dir).tasks[1].quantized is None

    def test_quantized_serving_matches_in_memory_quantization(
        self, tiny_suite, quantized_dir
    ):
        """open_predictor(quantized=True) serves the snapped weights."""
        from repro.mann.batch import BatchInferenceEngine
        from repro.serving import QueryRequest, open_predictor

        batch = tiny_suite.tasks[1].test_batch
        requests = [
            QueryRequest(
                batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
            )
            for i in range(len(batch))
        ]
        predictor = open_predictor(str(quantized_dir), 1, quantized=True)
        responses = predictor.predict_batch(requests)

        snapped, _ = QuantizedWeights.quantize(
            tiny_suite.tasks[1].weights, QFormat(3, 8)
        )
        engine = BatchInferenceEngine(snapped.weights, "exact")
        reference = engine.search(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert [r.label for r in responses] == list(reference.labels)

    def test_quantized_predictor_requires_snapshot(self, artifacts_dir):
        from repro.serving import open_predictor

        with pytest.raises(ValueError, match="quantized"):
            open_predictor(str(artifacts_dir), 1, quantized=True)


class TestFailureModes:
    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_suite(tmp_path / "nope")

    def test_version_mismatch_rejected(self, tiny_suite, tmp_path):
        directory = save_suite(tiny_suite, tmp_path / "arts")
        marker = directory / "suite.json"
        manifest = json.loads(marker.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        marker.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            load_suite(directory)

    def test_refuses_to_mix_suites(self, tiny_suite, tmp_path):
        directory = save_suite(tiny_suite, tmp_path / "arts")
        other = BabiSuite.build(
            SuiteConfig(task_ids=(2,), n_train=20, n_test=5, epochs=2, seed=1)
        )
        with pytest.raises(FileExistsError):
            save_suite(other, directory)

    def test_resave_same_suite_is_allowed(self, tiny_suite, tmp_path):
        directory = save_suite(tiny_suite, tmp_path / "arts")
        save_suite(tiny_suite, directory)  # idempotent overwrite
        assert verify_artifacts(directory).task_ids == [1, 6]
