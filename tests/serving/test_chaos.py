"""The deterministic chaos harness, and recovery parity under it.

Unit half: :class:`FaultPlan` decisions are a pure function of
``(seed, index)`` (schedule overrides included) and
:class:`ChaosPredictor` injects exactly the drawn fault per execution.

Acceptance half (the matrix at the end): with faults injected *and
recovered from* — including real worker-process kills — the served
responses are bit-identical to a fault-free run, across all four MIPS
backends, both shard axes and both worker modes. Recovery replays the
exact sub-batch, so chaos must be observable only in the stats.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    FAULT_KINDS,
    ChaosPredictor,
    FaultPlan,
    InjectedFaultError,
    ManualClock,
    ModelRouter,
    PayloadCorruptionError,
    QueryRequest,
    QueryResponse,
    RetryPolicy,
)
from repro.serving.chaos import KILL_EXIT_CODE, ChaosOp


def _suite_requests(suite, tasks=(1, 6)):
    requests = []
    for task in tasks:
        batch = suite.tasks[task].test_batch
        for i in range(len(batch)):
            requests.append(
                QueryRequest(
                    batch.stories[i],
                    batch.questions[i],
                    n_sentences=int(batch.story_lengths[i]),
                    request_id=f"{task}-{i}",
                    task=task,
                )
            )
    return requests


def _assert_identical_responses(baseline, recovered):
    assert len(baseline) == len(recovered)
    for a, b in zip(baseline, recovered):
        assert a.label == b.label
        assert a.logit == b.logit  # bitwise float equality, not approx
        assert a.comparisons == b.comparisons
        assert a.early_exit == b.early_exit
        assert a.answer == b.answer
        assert a.request_id == b.request_id


class EchoPredictor:
    """Thread- and process-hook stub the chaos wrapper can wrap."""

    marker = "echo"  # visible through __getattr__ delegation

    def predict_batch(self, requests):
        return [
            QueryResponse(
                label=int(r.request_id),
                logit=0.0,
                comparisons=1,
                early_exit=False,
                request_id=r.request_id,
            )
            for r in requests
        ]

    def worker_payload(self, requests):
        return ("spec", np.arange(len(requests)))


def _request(i: int) -> QueryRequest:
    return QueryRequest(
        story=np.full((2, 3), i + 1, dtype=np.int64),
        question=np.array([i + 1, 0, 0], dtype=np.int64),
        request_id=i,
    )


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kill_worker_rate=-0.1),
            dict(kill_worker_rate=0.6, raise_rate=0.6),  # sum > 1
            dict(delay_s=-1.0),
            dict(schedule=((-1, "kill-worker"),)),
            dict(schedule=((0, "segfault"),)),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_decisions_are_pure(self):
        plan = FaultPlan(
            kill_worker_rate=0.2, raise_rate=0.2, delay_rate=0.2, seed=42
        )
        first = [plan.kind_at(i) for i in range(100)]
        # Same plan, same decisions — call order and instance identity
        # are irrelevant (the property process workers rely on).
        again = [
            FaultPlan(
                kill_worker_rate=0.2, raise_rate=0.2, delay_rate=0.2, seed=42
            ).kind_at(i)
            for i in range(100)
        ]
        assert first == again
        assert any(kind is not None for kind in first)
        assert any(kind is None for kind in first)

    def test_rates_are_roughly_respected(self):
        plan = FaultPlan(raise_rate=0.5, seed=7)
        hits = sum(plan.kind_at(i) == "raise-in-predict" for i in range(400))
        assert 140 <= hits <= 260  # ~200 expected; loose, deterministic

    def test_zero_rate_plan_never_faults(self):
        plan = FaultPlan()
        assert all(plan.kind_at(i) is None for i in range(50))
        assert plan.total_rate == 0.0

    def test_schedule_overrides_the_draw(self):
        plan = FaultPlan(schedule=((3, "corrupt-payload"),))
        assert plan.kind_at(3) == "corrupt-payload"
        assert all(plan.kind_at(i) is None for i in (0, 1, 2, 4))

    def test_fork_is_deterministic_and_key_sensitive(self):
        plan = FaultPlan(kill_worker_rate=0.3, seed=9, schedule=((1, "delay-flush"),))
        assert plan.fork(1) == plan.fork(1)
        assert plan.fork(1).seed != plan.fork(6).seed
        assert plan.fork(1).kill_worker_rate == 0.3
        assert plan.fork(1).schedule == plan.schedule  # kept per route
        faults = lambda p: [p.kind_at(i) for i in range(64)]
        assert faults(plan.fork(1)) != faults(plan.fork(6))


class TestChaosPredictor:
    def test_zero_rate_plan_is_transparent(self):
        inner = EchoPredictor()
        chaos = ChaosPredictor(inner, FaultPlan())
        requests = [_request(i) for i in range(4)]
        assert chaos.predict_batch(requests) == inner.predict_batch(requests)
        assert chaos.marker == "echo"  # __getattr__ delegation
        assert chaos.calls == 1
        assert all(count == 0 for count in chaos.injected.values())

    @pytest.mark.parametrize("kind", ["kill-worker", "raise-in-predict"])
    def test_thread_mode_soft_faults_raise_transient(self, kind):
        chaos = ChaosPredictor(
            EchoPredictor(), FaultPlan(schedule=((0, kind),))
        )
        with pytest.raises(InjectedFaultError):
            chaos.predict_batch([_request(0)])
        assert chaos.injected[kind] == 1
        # The next execution draws a fresh, healthy index.
        assert chaos.predict_batch([_request(1)])[0].label == 1

    def test_corrupt_payload_is_permanent_both_modes(self):
        plan = FaultPlan(schedule=((0, "corrupt-payload"), (1, "corrupt-payload")))
        chaos = ChaosPredictor(EchoPredictor(), plan)
        with pytest.raises(PayloadCorruptionError):
            chaos.predict_batch([_request(0)])
        with pytest.raises(PayloadCorruptionError):
            chaos.worker_payload([_request(1)])
        assert chaos.injected["corrupt-payload"] == 2

    def test_delay_fault_sleeps_on_the_injected_clock(self):
        clock = ManualClock()
        plan = FaultPlan(schedule=((0, "delay-flush"),), delay_s=0.25)
        chaos = ChaosPredictor(EchoPredictor(), plan, clock=clock)
        chaos.predict_batch([_request(0)])
        assert clock.now() == 0.25  # slept exactly delay_s, no wall time

    def test_process_mode_fault_rides_the_payload(self):
        plan = FaultPlan(schedule=((0, "raise-in-predict"),))
        chaos = ChaosPredictor(EchoPredictor(), plan)
        spec, arrays = chaos.worker_payload([_request(0)])
        assert isinstance(spec, ChaosOp)
        assert spec.kind == "raise-in-predict" and spec.spec == "spec"
        # Healthy executions ship the bare spec — nothing chaos-shaped
        # crosses the pipe.
        spec, _ = chaos.worker_payload([_request(1)])
        assert spec == "spec"


class TestChaosOp:
    def test_raise_fires_worker_side(self):
        op = ChaosOp(spec="spec", kind="raise-in-predict")
        with pytest.raises(InjectedFaultError):
            op.apply_worker_side()

    def test_delay_then_unwraps(self):
        op = ChaosOp(spec="spec", kind="delay-flush", delay_s=0.0)
        assert op.apply_worker_side() == "spec"

    def test_healthy_op_unwraps(self):
        assert ChaosOp(spec="spec").apply_worker_side() == "spec"

    def test_kill_exit_code_is_distinctive(self):
        # The real kill is exercised in test_resilience's supervised
        # pool tests; here just pin the contract value.
        assert KILL_EXIT_CODE == 87


class TestRecoveryParityMatrix:
    """Chaos + recovery == fault-free, bit for bit, whole matrix.

    Faults are scheduled (not rate-drawn) so every combination takes a
    transient predict failure on its first execution and a real worker
    kill (process mode) on its third — recovery replays through every
    backend's exact numerics.
    """

    SCHEDULE = ((0, "raise-in-predict"), (2, "kill-worker"))

    def _serve(self, artifacts_dir, requests, **kwargs):
        with ModelRouter.open(
            artifacts_dir, max_batch=8, start_worker=False, **kwargs
        ) as router:
            futures = [router.submit(r) for r in requests]
            router.flush()
            responses = [f.result(timeout=60.0) for f in futures]
            stats = router.stats
        return responses, stats

    @pytest.mark.parametrize("worker_mode", ["thread", "process"])
    @pytest.mark.parametrize(
        "backend, shards, shard_axis",
        [
            ("alsh", 2, "batch"),
            ("clustering", 2, "batch"),
            ("exact", 2, "batch"),
            ("threshold", 2, "batch"),
            ("exact", 3, "vocab"),
            ("threshold", 3, "vocab"),
            ("exact", None, "batch"),
            ("threshold", None, "batch"),
        ],
    )
    def test_recovered_responses_bit_identical(
        self,
        tiny_suite,
        artifacts_dir,
        backend,
        shards,
        shard_axis,
        worker_mode,
    ):
        requests = _suite_requests(tiny_suite)
        kwargs = dict(
            mips_backend=backend, shards=shards, shard_axis=shard_axis,
            seed=0, n_workers=2,
        )
        baseline, _ = self._serve(artifacts_dir, requests, **kwargs)
        recovered, stats = self._serve(
            artifacts_dir,
            requests,
            worker_mode=worker_mode,
            chaos_plan=FaultPlan(schedule=self.SCHEDULE),
            retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=0.0),
            **kwargs,
        )
        _assert_identical_responses(baseline, recovered)
        # The faults really fired: recovery is in the stats, invisible
        # in the responses.
        assert stats.retries >= 1
        assert stats.recovered >= 1
        if worker_mode == "process":
            assert stats.pool_rebuilds >= 1
