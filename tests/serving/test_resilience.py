"""Retry/backoff, the supervised process pool, and per-route breakers.

The fault-tolerance contract in three layers, tested bottom-up: the
:class:`RetryPolicy`/:class:`CircuitBreaker` machines are deterministic
in isolation (ManualClock, fixed seeds — no wall-clock waits, no
flakes); the scheduler replays transient sub-batch failures and rebuilds
a broken process pool from its retained WorkerSpecs (exercised against
*real* worker deaths via the chaos harness); the router isolates a
failing route behind its breaker without touching healthy routes.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.serving import (
    AsyncFrontend,
    BatchScheduler,
    CircuitBreaker,
    FaultPlan,
    ManualClock,
    ModelRouter,
    QueryRequest,
    QueryResponse,
    RetryPolicy,
    RouteUnavailableError,
    SchedulerClosedError,
    WorkerCrashError,
    open_predictor,
)
from repro.serving.chaos import ChaosPredictor


def _request(i: int, task: int | None = None) -> QueryRequest:
    return QueryRequest(
        story=np.full((2, 3), i + 1, dtype=np.int64),
        question=np.array([i + 1, 0, 0], dtype=np.int64),
        request_id=i,
        task=task,
    )


def _response(request) -> QueryResponse:
    return QueryResponse(
        label=int(request.request_id),
        logit=0.0,
        comparisons=1,
        early_exit=False,
        request_id=request.request_id,
    )


class FlakyPredictor:
    """Fails the first ``fail_times`` flushes, then answers."""

    def __init__(self, fail_times: int, error=WorkerCrashError):
        self.fail_times = fail_times
        self.error = error
        self.calls = 0

    def predict_batch(self, requests):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.error(f"flaky failure #{self.calls}")
        return [_response(r) for r in requests]


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(backoff_base_s=-0.1),
            dict(backoff_max_s=-1.0),
            dict(backoff_multiplier=0.5),
            dict(jitter=-0.1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_should_retry_requires_transient_and_budget(self):
        policy = RetryPolicy(max_attempts=3)
        transient = WorkerCrashError("died")
        assert policy.should_retry(transient, 1)
        assert policy.should_retry(transient, 2)
        assert not policy.should_retry(transient, 3)  # budget spent
        assert not policy.should_retry(ValueError("permanent"), 1)

    def test_backoff_is_deterministic_per_seed(self):
        a = [RetryPolicy(seed=7).backoff_s(k) for k in range(1, 6)]
        b = [RetryPolicy(seed=7).backoff_s(k) for k in range(1, 6)]
        assert a == b  # bitwise: same seed, same jitter stream
        c = [RetryPolicy(seed=8).backoff_s(k) for k in range(1, 6)]
        assert a != c

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.001,
            backoff_multiplier=2.0,
            backoff_max_s=0.004,
            jitter=0.0,
        )
        assert [policy.backoff_s(k) for k in range(1, 6)] == [
            0.001,
            0.002,
            0.004,
            0.004,  # capped
            0.004,
        ]

    def test_jitter_scales_within_bounds(self):
        policy = RetryPolicy(backoff_base_s=0.010, jitter=0.5)
        wait = policy.backoff_s(1)
        assert 0.010 <= wait <= 0.015

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff_s(0)


class TestCircuitBreaker:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(failure_threshold=0),
            dict(reset_timeout_s=-1.0),
            dict(half_open_probes=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)

    def test_opens_at_consecutive_failure_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=ManualClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=ManualClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # failures were not consecutive

    def test_half_open_probe_success_closes(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # the probe slot
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe by default
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert not breaker.allow()  # the timer restarted
        clock.advance(1.0)
        assert breaker.allow()

    def test_would_allow_is_side_effect_free(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        for _ in range(5):
            assert breaker.would_allow()
        assert breaker.state == "open"  # never transitioned
        assert breaker.allow()  # the probe slot is still unclaimed
        assert not breaker.would_allow()  # ... and now it is claimed

    def test_on_open_fires_per_transition(self):
        opened = []
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2,
            reset_timeout_s=1.0,
            clock=clock,
            on_open=lambda: opened.append(breaker.state),
        )
        breaker.record_failure()
        assert opened == []
        breaker.record_failure()
        assert opened == ["open"]
        clock.advance(1.0)
        breaker.allow()
        breaker.record_failure()  # probe failure: reopen fires again
        assert opened == ["open", "open"]


class TestSchedulerRetry:
    """The scheduler's retry loop on the thread/inline flush path."""

    def test_transient_failure_replayed_to_success(self):
        flaky = FlakyPredictor(fail_times=2)
        scheduler = BatchScheduler(
            flaky,
            max_batch=4,
            start_worker=False,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
        )
        futures = [scheduler.submit(_request(i)) for i in range(3)]
        scheduler.flush()
        assert [f.result(timeout=10.0).label for f in futures] == [0, 1, 2]
        assert flaky.calls == 3  # two failures + the winning replay
        assert scheduler.stats.retries == 2
        assert scheduler.stats.recovered == 3  # requests, not attempts
        scheduler.close()

    def test_budget_exhaustion_fails_the_sub_batch(self):
        flaky = FlakyPredictor(fail_times=10)
        scheduler = BatchScheduler(
            flaky,
            max_batch=4,
            start_worker=False,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        future = scheduler.submit(_request(0))
        scheduler.flush()
        assert isinstance(future.exception(timeout=10.0), WorkerCrashError)
        assert flaky.calls == 2
        assert scheduler.stats.retries == 1
        assert scheduler.stats.recovered == 0
        scheduler.close()

    def test_permanent_failure_is_not_replayed(self):
        flaky = FlakyPredictor(fail_times=10, error=ValueError)
        scheduler = BatchScheduler(
            flaky,
            max_batch=4,
            start_worker=False,
            retry_policy=RetryPolicy(max_attempts=5, backoff_base_s=0.0),
        )
        future = scheduler.submit(_request(0))
        scheduler.flush()
        assert isinstance(future.exception(timeout=10.0), ValueError)
        assert flaky.calls == 1  # no second attempt
        assert scheduler.stats.retries == 0
        scheduler.close()

    def test_no_policy_means_no_replay(self):
        flaky = FlakyPredictor(fail_times=1)
        scheduler = BatchScheduler(flaky, max_batch=4, start_worker=False)
        future = scheduler.submit(_request(0))
        scheduler.flush()
        assert isinstance(future.exception(timeout=10.0), WorkerCrashError)
        assert flaky.calls == 1
        scheduler.close()

    def test_backoff_sleeps_through_the_injected_clock(self):
        clock = ManualClock()
        flaky = FlakyPredictor(fail_times=1)
        scheduler = BatchScheduler(
            flaky,
            max_batch=4,
            start_worker=False,
            clock=clock,
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_base_s=1.0, backoff_max_s=1.0,
                jitter=0.0,
            ),
        )
        future = scheduler.submit(_request(0))
        before = clock.now()
        scheduler.flush()  # returns immediately: the sleep advanced the clock
        assert future.result(timeout=10.0).label == 0
        assert clock.now() - before >= 1.0
        scheduler.close()

    def test_closed_scheduler_rejects_submits_typed(self):
        scheduler = BatchScheduler(
            FlakyPredictor(0), max_batch=4, start_worker=False
        )
        scheduler.close()
        with pytest.raises(SchedulerClosedError, match="closed"):
            scheduler.submit(_request(0))


class TestSupervisedPool:
    """Process-pool supervision against *real* worker deaths."""

    def _scheduler(self, artifacts_dir, plan, **kwargs):
        predictor = ChaosPredictor(open_predictor(artifacts_dir, 1), plan)
        kwargs.setdefault(
            "retry_policy", RetryPolicy(max_attempts=3, backoff_base_s=0.0)
        )
        return BatchScheduler(
            predictor,
            max_batch=8,
            n_workers=2,
            worker_mode="process",
            start_worker=False,
            **kwargs,
        )

    def test_pool_rebuilt_and_sub_batches_replayed(self, artifacts_dir):
        plan = FaultPlan(schedule=((0, "kill-worker"),))
        scheduler = self._scheduler(artifacts_dir, plan)
        futures = [scheduler.submit(_request(i)) for i in range(6)]
        scheduler.flush()
        labels = [f.result(timeout=60.0).label for f in futures]
        assert all(label >= 0 for label in labels)
        assert scheduler.pool_rebuilds >= 1
        assert scheduler.stats.pool_rebuilds == scheduler.pool_rebuilds
        assert scheduler.stats.retries >= 1
        assert scheduler.stats.recovered >= 1
        scheduler.close()

    def test_recovery_is_bit_identical(self, artifacts_dir):
        requests = [_request(i) for i in range(6)]
        clean = self._scheduler(artifacts_dir, FaultPlan())
        clean_futures = [clean.submit(r) for r in requests]
        clean.flush()
        baseline = [f.result(timeout=60.0) for f in clean_futures]
        clean.close()

        chaotic = self._scheduler(
            artifacts_dir, FaultPlan(schedule=((0, "kill-worker"),))
        )
        futures = [chaotic.submit(r) for r in requests]
        chaotic.flush()
        recovered = [f.result(timeout=60.0) for f in futures]
        chaotic.close()

        for a, b in zip(baseline, recovered):
            assert (a.label, a.logit, a.comparisons, a.early_exit) == (
                b.label,
                b.logit,
                b.comparisons,
                b.early_exit,
            )

    def test_unsupervised_pool_loses_the_flush(self, artifacts_dir):
        plan = FaultPlan(schedule=((0, "kill-worker"),))
        scheduler = self._scheduler(
            artifacts_dir, plan, supervise_pool=False, retry_policy=None
        )
        futures = [scheduler.submit(_request(i)) for i in range(6)]
        scheduler.flush()
        errors = [f.exception(timeout=60.0) for f in futures]
        assert any(isinstance(e, WorkerCrashError) for e in errors)
        assert scheduler.pool_rebuilds == 0
        scheduler.close()

    def test_rebuild_budget_is_enforced(self, artifacts_dir):
        # Every payload kills its worker: the budget runs out and the
        # flush fails with the budget cited, instead of looping forever.
        plan = FaultPlan(kill_worker_rate=1.0)
        scheduler = self._scheduler(
            artifacts_dir,
            plan,
            max_pool_rebuilds=2,
            retry_policy=RetryPolicy(max_attempts=10, backoff_base_s=0.0),
        )
        future = scheduler.submit(_request(0))
        scheduler.flush()
        error = future.exception(timeout=60.0)
        assert isinstance(error, WorkerCrashError)
        assert "rebuild" in str(error)
        assert scheduler.pool_rebuilds == 2
        scheduler.close()

    def test_mid_flush_close_resolves_futures_typed(self, artifacts_dir):
        # A pool broken after close() must not be rebuilt: the affected
        # futures resolve with SchedulerClosedError instead of leaking
        # a fresh pool past shutdown (the close-race bugfix).
        plan = FaultPlan(schedule=((0, "kill-worker"),))
        scheduler = self._scheduler(artifacts_dir, plan)
        futures = [scheduler.submit(_request(i)) for i in range(6)]
        scheduler._closed = True  # simulate close() winning the race
        scheduler.flush()
        errors = [f.exception(timeout=60.0) for f in futures]
        assert any(isinstance(e, SchedulerClosedError) for e in errors)
        assert all(
            e is None or isinstance(e, SchedulerClosedError) for e in errors
        )
        assert scheduler.pool_rebuilds == 0
        scheduler.close()


class TestRouterBreakers:
    """Per-route circuit breaking on the shared scheduler."""

    def _router(self, clock=None, fallbacks=None, **kwargs):
        predictors = {1: FlakyPredictor(fail_times=10**9, error=ValueError),
                      6: FlakyPredictor(fail_times=0)}
        scheduler_kwargs = dict(
            max_batch=4, start_worker=False, breaker_threshold=2,
            breaker_reset_s=1.0, fallbacks=fallbacks,
        )
        if clock is not None:
            scheduler_kwargs["clock"] = clock
        scheduler_kwargs.update(kwargs)
        return ModelRouter(predictors, **scheduler_kwargs)

    def _fail_once(self, router, task=1):
        future = router.submit(_request(0, task=task))
        router.flush()
        assert isinstance(future.exception(timeout=10.0), ValueError)

    def test_breaker_opens_and_fails_fast(self):
        router = self._router(clock=ManualClock())
        self._fail_once(router)
        self._fail_once(router)
        assert router.breakers[1].state == "open"
        with pytest.raises(RouteUnavailableError, match="open"):
            router.submit(_request(0, task=1))
        assert router.stats.breaker_opens == 1
        assert router.route_stats[1].breaker_opens == 1
        router.close()

    def test_healthy_routes_are_unaffected(self):
        router = self._router(clock=ManualClock())
        self._fail_once(router)
        self._fail_once(router)
        future = router.submit(_request(3, task=6))
        router.flush()
        assert future.result(timeout=10.0).label == 3
        assert router.breakers[6].state == "closed"
        router.close()

    def test_half_open_probe_closes_on_recovery(self):
        clock = ManualClock()
        router = self._router(clock=clock)
        self._fail_once(router)
        self._fail_once(router)
        # The model "recovers": stop the route's predictor failing.
        router._routes[1].fail_times = 0
        clock.advance(1.0)
        future = router.submit(_request(5, task=1))  # the probe
        router.flush()
        assert future.result(timeout=10.0).label == 5
        assert router.breakers[1].state == "closed"
        router.close()

    def test_open_route_diverts_to_fallback(self):
        clock = ManualClock()
        fallback = FlakyPredictor(fail_times=0)
        router = self._router(clock=clock, fallbacks={1: fallback})
        self._fail_once(router)
        self._fail_once(router)
        assert router.breakers[1].state == "open"
        # With a fallback, admission keeps accepting the route...
        future = router.submit(_request(7, task=1))
        router.flush()
        # ...and the degraded predictor answers.
        assert future.result(timeout=10.0).label == 7
        assert router.stats.degraded == 1
        assert router.route_stats[1].degraded == 1
        router.close()

    def test_fallback_keys_validated(self):
        with pytest.raises(KeyError, match="fallback"):
            ModelRouter(
                {1: FlakyPredictor(0)},
                start_worker=False,
                fallbacks={2: FlakyPredictor(0)},
            )


class TestFrontendSafetyNet:
    def test_room_retry_validated(self):
        with pytest.raises(ValueError, match="room_retry_s"):
            AsyncFrontend(object(), room_retry_s=0.0)

    def test_lost_wakeups_are_counted(self):
        """Park an admission coroutine at a full queue with a tiny
        ``room_retry_s``: the safety net must fire (and be counted)
        while no room wakeup arrives, and the request must still be
        served once room frees up."""
        stub = FlakyPredictor(fail_times=0)
        scheduler = BatchScheduler(
            stub, max_batch=2, start_worker=False, queue_cap=1,
            overload_policy="block",
        )

        async def run():
            frontend = AsyncFrontend(
                scheduler, close_backend=False, room_retry_s=0.005
            )
            first = asyncio.ensure_future(frontend.query(_request(0)))
            await asyncio.sleep(0.01)  # first admitted; the queue is full
            second = asyncio.ensure_future(frontend.query(_request(1)))
            # Let the safety net fire a few times with no room wakeup.
            while scheduler.stats.safety_net_wakeups < 2:
                await asyncio.sleep(0.005)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, scheduler.flush)  # frees room
            assert (await first).label == 0
            await loop.run_in_executor(None, scheduler.flush)
            assert (await second).label == 1

        asyncio.run(run())
        assert scheduler.stats.safety_net_wakeups >= 2
        scheduler.close()
