"""Predictor facade parity against the engines it hides."""

import numpy as np
import pytest

from repro.hw.accelerator import MannAccelerator
from repro.hw.config import HwConfig
from repro.mips import available_backends
from repro.serving import (
    HardwarePredictor,
    QueryRequest,
    QueryResponse,
    SoftwarePredictor,
    open_predictor,
)


def _requests(batch, n=None):
    n = len(batch) if n is None else n
    return [
        QueryRequest(
            batch.stories[i],
            batch.questions[i],
            n_sentences=int(batch.story_lengths[i]),
            request_id=i,
        )
        for i in range(n)
    ]


class TestSoftwareParity:
    @pytest.mark.parametrize("backend", ["exact", "threshold", "alsh", "clustering"])
    def test_matches_direct_batch_engine(self, tiny_suite, backend):
        """Same labels/logits/comparisons as a hand-wired engine."""
        system = tiny_suite.tasks[1]
        batch = system.test_batch
        predictor = open_predictor(tiny_suite, 1, mips_backend=backend)
        responses = predictor.predict_batch(_requests(batch))

        direct = system.batch_engine_with(backend).search(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert [r.label for r in responses] == list(direct.labels)
        assert [r.comparisons for r in responses] == list(direct.comparisons)
        assert [r.early_exit for r in responses] == list(direct.early_exits)
        assert np.allclose([r.logit for r in responses], direct.logits)

    def test_backends_cover_registry(self):
        assert set(available_backends()) == {"exact", "threshold", "alsh", "clustering"}

    def test_single_predict_equals_batch(self, tiny_suite):
        system = tiny_suite.tasks[1]
        batch = system.test_batch
        predictor = open_predictor(tiny_suite, 1)
        one = predictor.predict(_requests(batch, 1)[0])
        many = predictor.predict_batch(_requests(batch, 3))
        # BLAS reduction order varies with batch shape: logits agree to
        # float tolerance, every discrete field must agree exactly.
        assert (one.label, one.comparisons, one.early_exit, one.answer) == (
            many[0].label,
            many[0].comparisons,
            many[0].early_exit,
            many[0].answer,
        )
        assert one.logit == pytest.approx(many[0].logit)

    def test_answer_decoded_and_id_echoed(self, tiny_suite):
        predictor = open_predictor(tiny_suite, 1)
        batch = tiny_suite.tasks[1].test_batch
        response = predictor.predict(_requests(batch, 1)[0])
        assert response.answer == tiny_suite.vocab.word(response.label)
        assert response.request_id == 0

    def test_trimmed_story_matches_padded(self, tiny_suite):
        """Requests may carry fewer slots than memory_size."""
        system = tiny_suite.tasks[1]
        batch = system.test_batch
        predictor = open_predictor(tiny_suite, 1)
        n = int(batch.story_lengths[0])
        trimmed = predictor.predict(
            QueryRequest(batch.stories[0][:n], batch.questions[0])
        )
        full = predictor.predict(_requests(batch, 1)[0])
        assert (trimmed.label, trimmed.comparisons, trimmed.early_exit) == (
            full.label,
            full.comparisons,
            full.early_exit,
        )
        assert trimmed.logit == pytest.approx(full.logit)

    def test_inferred_lengths_match_explicit(self, tiny_suite):
        system = tiny_suite.tasks[1]
        batch = system.test_batch
        predictor = open_predictor(tiny_suite, 1)
        explicit = predictor.predict_batch(_requests(batch, 4))
        inferred = predictor.predict_batch(
            [QueryRequest(batch.stories[i], batch.questions[i], request_id=i) for i in range(4)]
        )
        assert explicit == inferred


class TestHardwareParity:
    def test_matches_direct_accelerator(self, tiny_suite):
        """device='hw' answers equal a hand-wired MannAccelerator run."""
        system = tiny_suite.tasks[1]
        batch = system.test_batch
        predictor = open_predictor(
            tiny_suite, 1, device="hw", mips_backend="threshold", rho=1.0
        )
        assert isinstance(predictor, HardwarePredictor)
        responses = predictor.predict_batch(_requests(batch, 5))

        config = (
            HwConfig()
            .with_embed_dim(system.weights.config.embed_dim)
            .with_mips_backend("threshold")
        )
        accelerator = MannAccelerator(system.weights, config, system.threshold_model)
        report = accelerator.run(batch.subset(np.arange(5)), keep_examples=True)
        assert [r.label for r in responses] == list(report.predictions)
        assert [r.comparisons for r in responses] == [
            e.comparisons for e in report.examples
        ]
        assert [r.early_exit for r in responses] == [
            e.early_exit for e in report.examples
        ]

    def test_hw_and_sw_agree_on_labels(self, tiny_suite):
        """The same QueryRequest gets the same answer on both devices."""
        batch = tiny_suite.tasks[1].test_batch
        requests = _requests(batch, 4)
        sw = open_predictor(tiny_suite, 1, mips_backend="threshold", rho=1.0)
        hw = open_predictor(
            tiny_suite, 1, device="hw", mips_backend="threshold", rho=1.0
        )
        sw_responses = sw.predict_batch(requests)
        hw_responses = hw.predict_batch(requests)
        assert [r.label for r in sw_responses] == [r.label for r in hw_responses]
        assert [r.comparisons for r in sw_responses] == [
            r.comparisons for r in hw_responses
        ]
        for response in hw_responses:
            assert isinstance(response, QueryResponse)
            assert np.isfinite(response.logit)


class TestFactory:
    def test_opens_from_artifact_path(self, artifacts_dir, tiny_suite):
        predictor = open_predictor(str(artifacts_dir), 6)
        assert isinstance(predictor, SoftwarePredictor)
        assert predictor.task_id == 6
        batch = tiny_suite.tasks[6].test_batch
        direct = tiny_suite.tasks[6].batch_engine_with("exact").search(
            batch.stories, batch.questions, batch.story_lengths
        )
        responses = predictor.predict_batch(_requests(batch))
        assert [r.label for r in responses] == list(direct.labels)

    def test_opens_from_task_system(self, tiny_suite):
        predictor = open_predictor(tiny_suite.tasks[1])
        assert predictor.task_id == 1

    def test_task_id_required_for_multi_task_suite(self, tiny_suite):
        with pytest.raises(ValueError, match="task_id"):
            open_predictor(tiny_suite)

    def test_unknown_task_and_device(self, tiny_suite):
        with pytest.raises(KeyError):
            open_predictor(tiny_suite, 13)
        with pytest.raises(ValueError, match="device"):
            open_predictor(tiny_suite, 1, device="tpu")

    def test_hw_rejects_sw_only_params(self, tiny_suite):
        with pytest.raises(ValueError, match="backend params"):
            open_predictor(tiny_suite, 1, device="hw", mips_backend="alsh", n_tables=2)

    def test_n_sentences_validated_per_request(self, tiny_suite):
        """Acceptance must not depend on what a request is batched with."""
        predictor = open_predictor(tiny_suite, 1)
        batch = tiny_suite.tasks[1].test_batch
        bad = QueryRequest(batch.stories[0][:3], batch.questions[0], n_sentences=5)
        wide = QueryRequest(batch.stories[1], batch.questions[1])
        with pytest.raises(ValueError, match="n_sentences"):
            predictor.predict(bad)
        with pytest.raises(ValueError, match="n_sentences"):
            predictor.predict_batch([bad, wide])  # co-batching must not help

    def test_oversized_story_rejected(self, tiny_suite):
        predictor = open_predictor(tiny_suite, 1)
        slots = predictor.engine.config.memory_size + 1
        request = QueryRequest(np.ones((slots, 3), dtype=np.int64), np.ones(3, dtype=np.int64))
        with pytest.raises(ValueError, match="slots"):
            predictor.predict(request)
