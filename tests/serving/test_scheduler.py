"""Micro-batching scheduler semantics, against a stub predictor.

A stub keeps these tests fast and deterministic: the scheduler only
needs the ``predict_batch`` protocol, and real-engine equivalence is
covered at the end against the tiny trained suite.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    BatchScheduler,
    DeadlineExceededError,
    ManualClock,
    OverloadError,
    QueryRequest,
    QueryResponse,
    open_predictor,
)


def _request(i: int, deadline_s: float | None = None) -> QueryRequest:
    return QueryRequest(
        story=np.full((2, 3), i + 1, dtype=np.int64),
        question=np.array([i + 1, 0, 0], dtype=np.int64),
        request_id=i,
        deadline_s=deadline_s,
    )


class StubPredictor:
    """Echoes request ids back as labels and records flush sizes."""

    def __init__(self, fail: bool = False):
        self.flush_sizes: list[int] = []
        self.fail = fail

    def predict(self, request):
        return self.predict_batch([request])[0]

    def predict_batch(self, requests):
        if self.fail:
            raise RuntimeError("backend down")
        self.flush_sizes.append(len(requests))
        return [
            QueryResponse(
                label=int(r.request_id),
                logit=0.0,
                comparisons=1,
                early_exit=False,
                request_id=r.request_id,
            )
            for r in requests
        ]


class TestManualMode:
    def test_flush_resolves_everything(self):
        stub = StubPredictor()
        scheduler = BatchScheduler(stub, max_batch=8, start_worker=False)
        futures = [scheduler.submit(_request(i)) for i in range(5)]
        assert scheduler.pending == 5
        assert not any(f.done() for f in futures)
        scheduler.flush()
        assert [f.result().label for f in futures] == list(range(5))
        assert stub.flush_sizes == [5]

    def test_max_batch_flushes_inline(self):
        stub = StubPredictor()
        scheduler = BatchScheduler(stub, max_batch=3, start_worker=False)
        futures = [scheduler.submit(_request(i)) for i in range(7)]
        # Two full batches flushed at submit time, one request queued.
        assert stub.flush_sizes == [3, 3]
        assert scheduler.pending == 1
        assert futures[5].done() and not futures[6].done()
        scheduler.close()
        assert stub.flush_sizes == [3, 3, 1]
        assert futures[6].result().label == 6

    def test_stats_and_latency(self):
        scheduler = BatchScheduler(StubPredictor(), max_batch=4, start_worker=False)
        futures = [scheduler.submit(_request(i)) for i in range(4)]
        response = futures[0].result()
        assert response.latency_s is not None and response.latency_s >= 0
        assert scheduler.stats.requests == 4
        assert scheduler.stats.flushes == 1
        assert scheduler.stats.batch_sizes == [4]
        assert scheduler.stats.mean_batch_size == 4.0
        assert len(scheduler.stats.latencies_s) == 4
        assert scheduler.stats.max_latency_s >= scheduler.stats.mean_latency_s

    def test_error_propagates_to_futures(self):
        scheduler = BatchScheduler(StubPredictor(fail=True), max_batch=2, start_worker=False)
        futures = [scheduler.submit(_request(i)) for i in range(2)]
        with pytest.raises(RuntimeError, match="backend down"):
            futures[0].result()
        assert isinstance(futures[1].exception(), RuntimeError)

    def test_cancelled_future_skipped_not_fatal(self):
        """A caller-cancelled future must not poison the flush."""
        stub = StubPredictor()
        scheduler = BatchScheduler(stub, max_batch=8, start_worker=False)
        futures = [scheduler.submit(_request(i)) for i in range(3)]
        assert futures[1].cancel()
        scheduler.flush()
        assert futures[0].result().label == 0
        assert futures[2].result().label == 2
        assert futures[1].cancelled()
        assert stub.flush_sizes == [2]  # the cancelled request never ran

    def test_submit_after_close_rejected(self):
        scheduler = BatchScheduler(StubPredictor(), start_worker=False)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit(_request(0))

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(StubPredictor(), max_batch=0, start_worker=False)
        with pytest.raises(ValueError):
            BatchScheduler(StubPredictor(), max_wait_s=-1.0, start_worker=False)


class TestWorker:
    def test_max_wait_flushes_partial_batch(self):
        stub = StubPredictor()
        with BatchScheduler(stub, max_batch=64, max_wait_s=0.01) as scheduler:
            futures = [scheduler.submit(_request(i)) for i in range(3)]
            results = [f.result(timeout=5.0) for f in futures]
        assert [r.label for r in results] == [0, 1, 2]
        assert sum(stub.flush_sizes) == 3
        assert all(size < 64 for size in stub.flush_sizes)

    def test_concurrent_submitters(self):
        stub = StubPredictor()
        scheduler = BatchScheduler(stub, max_batch=16, max_wait_s=0.005)
        futures: dict[int, object] = {}
        lock = threading.Lock()

        def client(offset: int):
            for i in range(offset, offset + 25):
                future = scheduler.submit(_request(i))
                with lock:
                    futures[i] = future
                time.sleep(0)

        threads = [threading.Thread(target=client, args=(base,)) for base in (0, 25, 50, 75)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = {i: f.result(timeout=5.0).label for i, f in futures.items()}
        scheduler.close()
        assert results == {i: i for i in range(100)}
        assert scheduler.stats.requests == 100
        assert sum(stub.flush_sizes) == 100

    def test_close_drains_pending(self):
        stub = StubPredictor()
        scheduler = BatchScheduler(stub, max_batch=64, max_wait_s=30.0)
        futures = [scheduler.submit(_request(i)) for i in range(5)]
        scheduler.close()  # long max_wait: only close() can flush these
        assert [f.result(timeout=1.0).label for f in futures] == list(range(5))
        scheduler.close()  # idempotent


class TestWorkerPool:
    """Flush execution on the n_workers pool: sub-batch dispatch,
    submission-order reassembly, and Future semantics under load."""

    def test_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            BatchScheduler(StubPredictor(), n_workers=0, start_worker=False)

    def test_flush_splits_into_sub_batches(self):
        stub = StubPredictor()
        scheduler = BatchScheduler(
            stub, max_batch=16, n_workers=4, start_worker=False
        )
        futures = [scheduler.submit(_request(i)) for i in range(16)]
        # The max-batch flush ran as 4 concurrent sub-batches of 4.
        assert sorted(stub.flush_sizes) == [4, 4, 4, 4]
        assert [f.result().label for f in futures] == list(range(16))
        assert scheduler.stats.flushes == 1
        assert scheduler.stats.batch_sizes == [16]
        assert scheduler.stats.shards_per_flush == [4]
        scheduler.close()

    def test_partition_hook_used_when_present(self):
        class PartitioningStub(StubPredictor):
            def partition_batch(self, requests, n):
                # Odd/even split — any index cover must be honoured.
                return [
                    [i for i in range(len(requests)) if i % 2 == 0],
                    [i for i in range(len(requests)) if i % 2 == 1],
                ]

        stub = PartitioningStub()
        scheduler = BatchScheduler(
            stub, max_batch=8, n_workers=2, start_worker=False
        )
        futures = [scheduler.submit(_request(i)) for i in range(8)]
        assert sorted(stub.flush_sizes) == [4, 4]
        assert [f.result().label for f in futures] == list(range(8))
        scheduler.close()

    def test_partition_hook_error_resolves_futures(self):
        """A raising partition hook must fail the flush's futures, not
        strand them RUNNING (and not kill the deadline thread)."""

        class BrokenHook(StubPredictor):
            def partition_batch(self, requests, n):
                raise KeyError("unroutable task")

        scheduler = BatchScheduler(
            BrokenHook(), max_batch=4, n_workers=2, start_worker=False
        )
        futures = [scheduler.submit(_request(i)) for i in range(4)]
        for future in futures:
            assert isinstance(future.exception(timeout=1.0), KeyError)
        scheduler.close()

    def test_sub_batch_error_is_contained(self):
        """A failing sub-batch poisons only its own futures."""

        class HalfBroken(StubPredictor):
            def predict_batch(self, requests):
                if any(int(r.request_id) >= 4 for r in requests):
                    raise RuntimeError("shard down")
                return super().predict_batch(requests)

        scheduler = BatchScheduler(
            HalfBroken(), max_batch=8, n_workers=2, start_worker=False
        )
        futures = [scheduler.submit(_request(i)) for i in range(8)]
        assert [f.result().label for f in futures[:4]] == [0, 1, 2, 3]
        for future in futures[4:]:
            assert isinstance(future.exception(), RuntimeError)
        scheduler.close()

    def test_stress_concurrent_submitters_with_cancellations(self):
        """The satellite stress contract: many submitters + mixed
        cancellations, no lost or duplicated futures, every response
        mapped to its own request."""
        stub = StubPredictor()
        scheduler = BatchScheduler(
            stub, max_batch=16, max_wait_s=0.002, n_workers=4
        )
        n_clients, per_client = 8, 50
        futures: dict[int, object] = {}
        cancelled: set[int] = set()
        lock = threading.Lock()

        def client(base: int):
            for i in range(base, base + per_client):
                future = scheduler.submit(_request(i))
                with lock:
                    futures[i] = future
                # Try to cancel a deterministic ~20% slice immediately;
                # cancellation only wins while the flush has not
                # started, so some attempts legitimately fail.
                if i % 5 == 0 and future.cancel():
                    with lock:
                        cancelled.add(i)
                if i % 7 == 0:
                    time.sleep(0)  # jitter the interleaving

        threads = [
            threading.Thread(target=client, args=(k * per_client,))
            for k in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_clients * per_client
        results = {}
        for i, future in futures.items():
            if i in cancelled:
                assert future.cancelled(), i
            else:
                results[i] = future.result(timeout=10.0)
        scheduler.close()

        # No lost futures: every non-cancelled submission resolved.
        assert len(futures) == total
        assert len(results) == total - len(cancelled)
        # No duplicated/crossed responses: each echoes its request id.
        assert all(r.label == i for i, r in results.items())
        # No duplicated execution: the predictor saw each request once.
        assert sum(stub.flush_sizes) == total - len(cancelled)
        assert scheduler.stats.requests == total - len(cancelled)
        assert all(n >= 1 for n in scheduler.stats.shards_per_flush)

    def test_cancel_between_submit_and_flush_on_pool_path(self):
        """Cancellation must be honoured by the pooled flush too: the
        cancelled requests drop out before partitioning, the rest
        resolve normally across the sub-batches."""
        stub = StubPredictor()
        scheduler = BatchScheduler(
            stub, max_batch=8, n_workers=2, start_worker=False
        )
        futures = [scheduler.submit(_request(i)) for i in range(6)]
        assert futures[2].cancel()
        assert futures[5].cancel()
        scheduler.flush()
        for i, future in enumerate(futures):
            if i in (2, 5):
                assert future.cancelled()
            else:
                assert future.result(timeout=1.0).label == i
        assert sum(stub.flush_sizes) == 4  # cancelled requests never ran
        scheduler.close()

    def test_partition_hook_non_contiguous_permutation(self):
        """A hook returning a valid but non-contiguous index cover
        (strided groups) must still map every response to its own
        request."""

        class StridedStub(StubPredictor):
            def partition_batch(self, requests, n):
                return [list(range(k, len(requests), 3)) for k in range(3)]

        stub = StridedStub()
        scheduler = BatchScheduler(
            stub, max_batch=9, n_workers=3, start_worker=False
        )
        futures = [scheduler.submit(_request(i)) for i in range(9)]
        assert sorted(stub.flush_sizes) == [3, 3, 3]
        assert [f.result(timeout=1.0).label for f in futures] == list(range(9))
        scheduler.close()

    def test_close_under_load_strands_nothing(self):
        """Regression for the close/flush race: close() used to null
        the pool while a submitter's max-batch flush was mid-_execute,
        crashing the flushing thread (AttributeError) and stranding its
        already-RUNNING futures. Under submit/close contention every
        accepted future must end resolved or cancelled."""
        for _ in range(15):
            stub = StubPredictor()
            scheduler = BatchScheduler(
                stub, max_batch=4, n_workers=3, start_worker=False
            )
            futures: list = []
            lock = threading.Lock()
            errors: list = []

            def client(base: int):
                try:
                    for i in range(base, base + 40):
                        try:
                            future = scheduler.submit(_request(i))
                        except RuntimeError:
                            return  # scheduler closed — the only legal refusal
                        with lock:
                            futures.append((i, future))
                except Exception as error:  # pragma: no cover - the bug
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(k * 100,))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            scheduler.close()  # races the submitters' max-batch flushes
            for t in threads:
                t.join()
            scheduler.close()  # idempotent after the storm
            assert not errors
            for i, future in futures:
                if not future.cancelled():
                    assert future.result(timeout=5.0).label == i

    def test_real_predictor_pool_matches_single_worker(self, tiny_suite):
        """n_workers > 1 must not change any answer on a real engine."""
        batch = tiny_suite.tasks[1].test_batch
        predictor = open_predictor(tiny_suite, 1, mips_backend="threshold")
        requests = [
            QueryRequest(
                batch.stories[i],
                batch.questions[i],
                int(batch.story_lengths[i]),
                request_id=i,
            )
            for i in range(len(batch))
        ]
        with BatchScheduler(
            predictor, max_batch=len(requests), n_workers=3, start_worker=False
        ) as pooled:
            futures = [pooled.submit(r) for r in requests]
            pooled.flush()
            answers = [f.result(timeout=10.0) for f in futures]
        direct = predictor.predict_batch(requests)
        assert [r.label for r in answers] == [r.label for r in direct]
        assert [r.comparisons for r in answers] == [
            r.comparisons for r in direct
        ]


class TestWithRealPredictor:
    def test_scheduled_results_match_direct_calls(self, tiny_suite):
        system = tiny_suite.tasks[1]
        batch = system.test_batch
        predictor = open_predictor(tiny_suite, 1, mips_backend="threshold", rho=1.0)
        requests = [
            QueryRequest(batch.stories[i], batch.questions[i], int(batch.story_lengths[i]))
            for i in range(len(batch))
        ]
        direct = [predictor.predict(r) for r in requests]
        with BatchScheduler(predictor, max_batch=4, max_wait_s=0.01) as scheduler:
            futures = [scheduler.submit(r) for r in requests]
            scheduled = [f.result(timeout=10.0) for f in futures]
        assert [r.label for r in scheduled] == [r.label for r in direct]
        assert [r.comparisons for r in scheduled] == [r.comparisons for r in direct]
        assert scheduler.stats.requests == len(batch)
        assert scheduler.stats.mean_batch_size > 1.0


class OrderRecordingStub:
    """Records every flushed batch's request ids, in completion order."""

    def __init__(self, dwell_s: float = 0.0005):
        self.batches: list[list[int]] = []
        self._lock = threading.Lock()
        self._dwell_s = dwell_s

    def predict_batch(self, requests):
        time.sleep(self._dwell_s)  # widen the race window between flushers
        with self._lock:
            self.batches.append([int(r.request_id) for r in requests])
        return [
            QueryResponse(
                label=int(r.request_id),
                logit=0.0,
                comparisons=1,
                early_exit=False,
                request_id=r.request_id,
            )
            for r in requests
        ]


class TestFifoOrdering:
    """Regression for the flush()/deadline-thread/max-batch race.

    The documented guarantee: dequeue is strictly FIFO (every flush is
    a contiguous head slice of the pending queue), and on the
    single-worker inline path flushes also *complete* in dequeue order.
    Before the dequeue-time ticketing fix, two concurrent ``_execute``
    calls could acquire the execution lock out of order and complete
    newer requests before older ones.
    """

    N = 200

    def _hammer(self, scheduler, stub):
        stop = threading.Event()

        def flusher():
            while not stop.is_set():
                scheduler.flush()

        flushers = [threading.Thread(target=flusher) for _ in range(4)]
        for thread in flushers:
            thread.start()
        try:
            futures = [scheduler.submit(_request(i)) for i in range(self.N)]
            results = [f.result(timeout=30.0) for f in futures]
        finally:
            stop.set()
            for thread in flushers:
                thread.join(timeout=10.0)
            scheduler.close()
        assert [r.label for r in results] == list(range(self.N))
        return stub.batches

    def test_inline_completion_order_is_submission_order(self):
        stub = OrderRecordingStub()
        scheduler = BatchScheduler(
            stub, max_batch=4, max_wait_s=0.0, start_worker=True
        )
        batches = self._hammer(scheduler, stub)
        completed = [i for batch in batches for i in batch]
        # Single-worker inline path: ticket order pins completion order
        # to submission order even with 6 racing flushers.
        assert completed == list(range(self.N))

    def test_pooled_dequeue_is_fifo_contiguous(self):
        stub = OrderRecordingStub()
        scheduler = BatchScheduler(
            stub, max_batch=4, max_wait_s=0.0, start_worker=True, n_workers=2
        )
        batches = self._hammer(scheduler, stub)
        # Pooled sub-batches complete in any order by design, but every
        # dequeue is a contiguous run of ids in submission order.
        for batch in batches:
            first = batch[0]
            assert batch == list(range(first, first + len(batch)))
        assert sorted(i for batch in batches for i in batch) == list(
            range(self.N)
        )


class TestAdmissionControl:
    """Bounded queue + overload policies, scheduler-level semantics."""

    def test_block_policy_manual_mode_drains_inline(self):
        stub = StubPredictor()
        scheduler = BatchScheduler(
            stub, max_batch=10, start_worker=False, queue_cap=2
        )
        futures = [scheduler.submit(_request(i)) for i in range(3)]
        # No deadline thread to wait on: the blocked submitter made its
        # own room by draining one batch before enqueueing.
        assert stub.flush_sizes == [2]
        assert scheduler.pending == 1
        assert [futures[i].result().label for i in range(2)] == [0, 1]
        assert not futures[2].done()
        assert scheduler.stats.shed == 0
        scheduler.close()

    def test_submit_nowait_under_block_is_not_a_shed(self):
        scheduler = BatchScheduler(
            StubPredictor(), max_batch=10, start_worker=False, queue_cap=2
        )
        for i in range(2):
            scheduler.submit_nowait(_request(i))
        with pytest.raises(OverloadError):
            scheduler.submit_nowait(_request(2))
        # Under "block" a nowait rejection is a retry signal for the
        # async frontend, not load shedding — the counter stays 0.
        assert scheduler.stats.shed == 0
        assert scheduler.pending == 2
        scheduler.close()

    def test_shed_policy_rejects_and_counts(self):
        scheduler = BatchScheduler(
            StubPredictor(), max_batch=10, start_worker=False,
            queue_cap=1, overload_policy="shed",
        )
        scheduler.submit(_request(0))
        with pytest.raises(OverloadError):
            scheduler.submit(_request(1))
        assert scheduler.stats.shed == 1
        scheduler.close()  # flushes the admitted request
        assert scheduler.stats.offered == 2  # 1 served + 1 shed

    def test_shed_expired_evicts_at_admission(self):
        clock = ManualClock()
        stub = StubPredictor()
        scheduler = BatchScheduler(
            stub, max_batch=10, start_worker=False, clock=clock,
            queue_cap=2, overload_policy="shed-expired",
        )
        doomed = [
            scheduler.submit(_request(i, deadline_s=1.0)) for i in range(2)
        ]
        clock.advance(2.0)
        live = scheduler.submit(_request(2))  # full queue, but all expired
        for future in doomed:
            assert isinstance(future.exception(), DeadlineExceededError)
        assert scheduler.pending == 1
        assert scheduler.stats.expired == 2
        scheduler.close()
        assert live.result(timeout=5.0).label == 2
        assert stub.flush_sizes == [1]

    def test_shed_expired_with_no_expired_entries_sheds(self):
        scheduler = BatchScheduler(
            StubPredictor(), max_batch=10, start_worker=False,
            queue_cap=1, overload_policy="shed-expired",
        )
        scheduler.submit(_request(0, deadline_s=60.0))
        with pytest.raises(OverloadError):
            scheduler.submit(_request(1))
        assert scheduler.stats.shed == 1
        scheduler.close()

    def test_manual_clock_latencies_are_exact(self):
        clock = ManualClock()
        scheduler = BatchScheduler(
            StubPredictor(), max_batch=10, start_worker=False, clock=clock
        )
        future = scheduler.submit(_request(0))
        clock.advance(0.5)
        scheduler.flush()
        assert future.result().latency_s == 0.5  # exact, not approximate
        assert scheduler.stats.latencies_s == [0.5]
        scheduler.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="queue_cap"):
            BatchScheduler(StubPredictor(), queue_cap=0, start_worker=False)
        with pytest.raises(ValueError, match="overload_policy"):
            BatchScheduler(
                StubPredictor(), overload_policy="panic", start_worker=False
            )
