"""ModelRouter: many task routes, one scheduler, per-route accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import ModelRouter, QueryRequest, open_predictor


def _request(suite, task, i, route=None):
    batch = suite.tasks[task].test_batch
    j = i % len(batch)
    return QueryRequest(
        batch.stories[j],
        batch.questions[j],
        n_sentences=int(batch.story_lengths[j]),
        request_id=(task, i),
        task=task if route is None else route,
    )


class TestOpen:
    def test_routes_cover_artifacts(self, artifacts_dir):
        with ModelRouter.open(str(artifacts_dir), start_worker=False) as router:
            assert router.tasks == [1, 6]

    def test_task_subset(self, tiny_suite):
        with ModelRouter.open(tiny_suite, tasks=[6], start_worker=False) as router:
            assert router.tasks == [6]

    def test_unknown_task_rejected_at_open(self, tiny_suite):
        with pytest.raises(KeyError, match="13"):
            ModelRouter.open(tiny_suite, tasks=[13])

    def test_single_task_system_route(self, tiny_suite):
        with ModelRouter.open(
            tiny_suite.tasks[1], start_worker=False
        ) as router:
            assert router.tasks == [1]

    def test_rejects_empty_and_garbage(self):
        with pytest.raises(ValueError, match="route"):
            ModelRouter({})
        with pytest.raises(TypeError, match="artifacts"):
            ModelRouter.open(42)


class TestRouting:
    def test_scheduled_matches_direct_predictors(self, tiny_suite):
        """Mixed-task submissions through the shared scheduler equal
        per-task direct predictor calls, bit for bit."""
        requests = [
            _request(tiny_suite, (1, 6)[i % 2], i) for i in range(30)
        ]
        direct = {
            task: open_predictor(tiny_suite, task) for task in (1, 6)
        }
        expected = [direct[r.task].predict(r) for r in requests]
        with ModelRouter.open(
            tiny_suite, n_workers=4, max_batch=8, max_wait_s=0.005
        ) as router:
            futures = [router.submit(r) for r in requests]
            answered = [f.result(timeout=10.0) for f in futures]
        assert [r.label for r in answered] == [r.label for r in expected]
        # BLAS reduction order varies with the co-batch shape of the
        # *forward pass*: logits agree to float tolerance, every
        # discrete field must agree exactly.
        assert np.allclose(
            [r.logit for r in answered], [r.logit for r in expected]
        )
        assert [r.comparisons for r in answered] == [
            r.comparisons for r in expected
        ]
        assert [r.request_id for r in answered] == [
            r.request_id for r in expected
        ]

    def test_per_route_stats(self, tiny_suite):
        with ModelRouter.open(
            tiny_suite, start_worker=False, max_batch=64
        ) as router:
            futures = [
                router.submit(_request(tiny_suite, task, i))
                for i, task in enumerate([1, 1, 1, 6, 6])
            ]
            router.flush()
            assert all(f.done() for f in futures)
            assert router.route_stats[1].requests == 3
            assert router.route_stats[6].requests == 2
            assert router.stats.requests == 5

    def test_unknown_task_raises_in_caller(self, tiny_suite):
        with ModelRouter.open(tiny_suite, start_worker=False) as router:
            with pytest.raises(KeyError, match="routes"):
                router.submit(_request(tiny_suite, 1, 0, route=99))
            assert router.scheduler.pending == 0  # nothing enqueued

    def test_taskless_request_needs_single_route(self, tiny_suite):
        multi = ModelRouter.open(tiny_suite, start_worker=False)
        single = ModelRouter.open(tiny_suite, tasks=[1], start_worker=False)
        batch = tiny_suite.tasks[1].test_batch
        request = QueryRequest(batch.stories[0], batch.questions[0])
        with multi, single:
            with pytest.raises(ValueError, match="task"):
                multi.submit(request)
            future = single.submit(request)
            single.flush()
            reference = open_predictor(tiny_suite, 1).predict(request)
            assert future.result().label == reference.label

    def test_direct_predict_batch_mixed_tasks(self, tiny_suite):
        requests = [_request(tiny_suite, (1, 6)[i % 2], i) for i in range(8)]
        with ModelRouter.open(tiny_suite, start_worker=False) as router:
            answered = router.predict_batch(requests)
        expected = [
            open_predictor(tiny_suite, r.task).predict(r) for r in requests
        ]
        assert [r.label for r in answered] == [r.label for r in expected]

    def test_submit_after_close_rejected(self, tiny_suite):
        router = ModelRouter.open(tiny_suite, start_worker=False)
        router.close()
        with pytest.raises(RuntimeError, match="closed"):
            router.submit(_request(tiny_suite, 1, 0))


class TestPartitioning:
    def test_partition_batch_is_task_pure_and_complete(self, tiny_suite):
        """Every sub-batch holds one task only; indices cover the flush."""
        requests = [
            _request(tiny_suite, (1, 6)[i % 2], i) for i in range(20)
        ]
        with ModelRouter.open(tiny_suite, start_worker=False) as router:
            groups = router._dispatch.partition_batch(requests, 4)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(20))
        for group in groups:
            assert len({requests[i].task for i in group}) == 1

    def test_sharded_routes_preserve_parity(self, tiny_suite):
        requests = [_request(tiny_suite, 1, i) for i in range(10)]
        plain = ModelRouter.open(tiny_suite, tasks=[1], start_worker=False)
        sharded = ModelRouter.open(
            tiny_suite, tasks=[1], shards=4, start_worker=False
        )
        with plain, sharded:
            a = plain.predict_batch(requests)
            b = sharded.predict_batch(requests)
        assert [r.label for r in a] == [r.label for r in b]
        assert [r.logit for r in a] == [r.logit for r in b]
        assert [r.comparisons for r in a] == [r.comparisons for r in b]
