"""The unified serving clock: deadline arithmetic and the test double."""

from __future__ import annotations

import math

import pytest

from repro.serving import MONOTONIC, Clock, ManualClock


class TestClock:
    def test_now_is_monotonic(self):
        clock = Clock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_deadline_arithmetic(self):
        clock = ManualClock(start=10.0)
        assert clock.deadline_at(None) is None
        assert clock.deadline_at(2.5) == 12.5
        assert clock.deadline_at(2.5, start=100.0) == 102.5

    def test_remaining_and_expired(self):
        clock = ManualClock()
        deadline = clock.deadline_at(1.0)
        assert clock.remaining_s(deadline) == 1.0
        assert not clock.expired(deadline)
        clock.advance(1.0)
        assert clock.remaining_s(deadline) == 0.0
        assert clock.expired(deadline)  # a spent budget counts as expired
        clock.advance(0.5)
        assert clock.remaining_s(deadline) == -0.5

    def test_no_deadline_never_expires(self):
        clock = ManualClock()
        assert clock.remaining_s(None) == math.inf
        assert not clock.expired(None)
        clock.advance(1e9)
        assert not clock.expired(None)

    def test_manual_clock_only_moves_forward(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(0.25)
        assert clock.now() == 0.25
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_module_default_is_shared_and_real(self):
        assert isinstance(MONOTONIC, Clock)
        assert MONOTONIC.now() > 0.0
