"""ServingStats under concurrent hammering, through both worker modes.

The scheduler serialises every stats mutation behind its internal
stats lock; these tests are the proof — many submitter threads racing
max-batch inline flushes, the deadline thread, and (in process mode)
pool completions, with *exact* request totals asserted at the end.
A torn reservoir update or a dropped counter increment shows up here
as an off-by-N total or a non-monotone percentile.
"""

from __future__ import annotations

import threading

import pytest

from repro.serving import ModelRouter, QueryRequest

N_THREADS = 8
PER_THREAD = 40


def _requests_for(suite, thread_id: int):
    """PER_THREAD requests cycling over both tasks' test examples."""
    requests = []
    tasks = (1, 6)
    for k in range(PER_THREAD):
        task = tasks[k % len(tasks)]
        batch = suite.tasks[task].test_batch
        i = (thread_id * PER_THREAD + k) % len(batch)
        requests.append(
            QueryRequest(
                batch.stories[i],
                batch.questions[i],
                n_sentences=int(batch.story_lengths[i]),
                request_id=f"{thread_id}-{k}",
                task=task,
            )
        )
    return requests


def _assert_monotone_percentiles(stats) -> None:
    assert 0.0 <= stats.p50_latency_s <= stats.p95_latency_s <= stats.p99_latency_s
    assert stats.p99_latency_s <= stats.max_latency_s
    assert 0.0 <= stats.mean_service_s and 0.0 <= stats.p95_service_s


@pytest.mark.parametrize("worker_mode", ["thread", "process"])
def test_concurrent_submitters_exact_totals(
    tiny_suite, artifacts_dir, worker_mode
):
    total = N_THREADS * PER_THREAD
    with ModelRouter.open(
        artifacts_dir,
        max_batch=8,
        max_wait_s=0.001,
        n_workers=2,
        worker_mode=worker_mode,
    ) as router:
        barrier = threading.Barrier(N_THREADS)
        futures_by_thread: dict[int, list] = {}
        errors: list[BaseException] = []

        def submitter(thread_id: int) -> None:
            try:
                barrier.wait(timeout=30.0)
                futures_by_thread[thread_id] = [
                    router.submit(r) for r in _requests_for(tiny_suite, thread_id)
                ]
            except BaseException as error:  # surface, don't hang the join
                errors.append(error)

        threads = [
            threading.Thread(target=submitter, args=(t,), name=f"submitter-{t}")
            for t in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors

        responses = [
            future.result(timeout=60.0)
            for t in range(N_THREADS)
            for future in futures_by_thread[t]
        ]
        assert len(responses) == total
        # Every response routed correctly despite the interleaving.
        for response in responses:
            thread_id, k = map(int, response.request_id.split("-"))
            assert 0 <= thread_id < N_THREADS and 0 <= k < PER_THREAD

    # Flush accounting lands just after futures resolve, so exact-total
    # assertions run after close() has drained every in-flight flush.
    stats = router.stats
    assert stats.requests == total  # no increment lost, none double-counted
    assert sum(stats.batch_sizes) == total  # below reservoir capacity
    assert len(stats.latencies_s) == total
    assert stats.flushes >= total / router.scheduler.max_batch
    assert stats.shed == 0 and stats.expired == 0
    _assert_monotone_percentiles(stats)
    # Per-route accounting adds up across the same races.
    assert sum(s.requests for s in router.route_stats.values()) == total


def test_shed_and_deadline_counters_exact_under_concurrency(
    tiny_suite, artifacts_dir
):
    """offered = requests + shed + expired must balance exactly even
    when many threads race a bounded queue with shedding."""
    with ModelRouter.open(
        artifacts_dir,
        max_batch=8,
        max_wait_s=0.0005,
        n_workers=2,
        queue_cap=4,
        overload_policy="shed",
    ) as router:
        barrier = threading.Barrier(N_THREADS)
        outcomes: list[str] = []
        lock = threading.Lock()
        futures: list = []

        def submitter(thread_id: int) -> None:
            barrier.wait(timeout=30.0)
            from repro.serving import OverloadError

            for request in _requests_for(tiny_suite, thread_id):
                try:
                    future = router.submit(request)
                except OverloadError:
                    with lock:
                        outcomes.append("shed")
                else:
                    with lock:
                        outcomes.append("served")
                        futures.append(future)

        threads = [
            threading.Thread(target=submitter, args=(t,))
            for t in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)

        for future in futures:
            future.result(timeout=60.0)  # every admitted request resolves

    stats = router.stats  # post-close: all flush accounting has landed
    total = N_THREADS * PER_THREAD
    assert len(outcomes) == total
    assert stats.requests == outcomes.count("served")
    assert stats.shed == outcomes.count("shed")
    assert stats.offered == total
    assert stats.expired == 0
    _assert_monotone_percentiles(stats)
