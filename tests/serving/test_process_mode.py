"""Process-pool flush execution: bit-identical to the thread mode.

The contract `worker_mode="process"` ships on: worker processes rebuild
each route from its picklable :class:`WorkerSpec` over memory-mapped
artifacts, receive only encoded arrays, and the decoded responses match
the thread mode **bit-identically** — across every backend and both
shard axes (including the threshold scan's vocab axis).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.artifacts import load_suite, mmap_npz
from repro.serving import (
    BatchScheduler,
    ModelRouter,
    QueryRequest,
    WorkerSpec,
    open_predictor,
)


def _suite_requests(suite, tasks=(1, 6)):
    requests = []
    for task in tasks:
        batch = suite.tasks[task].test_batch
        for i in range(len(batch)):
            requests.append(
                QueryRequest(
                    batch.stories[i],
                    batch.questions[i],
                    n_sentences=int(batch.story_lengths[i]),
                    request_id=f"{task}-{i}",
                    task=task,
                )
            )
    return requests


def _serve(artifacts_dir, requests, **kwargs):
    with ModelRouter.open(
        artifacts_dir, max_batch=8, start_worker=False, **kwargs
    ) as router:
        futures = [router.submit(r) for r in requests]
        router.flush()
        responses = [f.result(timeout=60.0) for f in futures]
        stats = (router.stats.requests, dict(router.route_stats))
    return responses, stats


def _assert_identical_responses(thread, process):
    assert len(thread) == len(process)
    for a, b in zip(thread, process):
        assert a.label == b.label
        assert a.logit == b.logit  # bitwise float equality, not approx
        assert a.comparisons == b.comparisons
        assert a.early_exit == b.early_exit
        assert a.answer == b.answer
        assert a.request_id == b.request_id


class TestParityMatrix:
    """worker_mode="process" == worker_mode="thread", whole matrix."""

    @pytest.mark.parametrize(
        "backend, shards, shard_axis",
        [
            ("alsh", 2, "batch"),
            ("clustering", 2, "batch"),
            ("exact", 2, "batch"),
            ("threshold", 2, "batch"),
            ("exact", 3, "vocab"),
            ("threshold", 3, "vocab"),
            ("exact", None, "batch"),
            ("threshold", None, "batch"),
        ],
    )
    def test_bit_identical_to_thread_mode(
        self, tiny_suite, artifacts_dir, backend, shards, shard_axis
    ):
        requests = _suite_requests(tiny_suite)
        kwargs = dict(
            mips_backend=backend, shards=shards, shard_axis=shard_axis, seed=0
        )
        thread, _ = _serve(
            artifacts_dir, requests, n_workers=2, worker_mode="thread", **kwargs
        )
        process, (n_requests, route_stats) = _serve(
            artifacts_dir, requests, n_workers=2, worker_mode="process", **kwargs
        )
        _assert_identical_responses(thread, process)
        assert n_requests == len(requests)
        # Route accounting works on the process path too.
        assert sum(s.requests for s in route_stats.values()) == len(requests)

    def test_single_process_worker(self, tiny_suite, artifacts_dir):
        """n_workers=1 still runs out-of-process and still matches."""
        requests = _suite_requests(tiny_suite)
        thread, _ = _serve(artifacts_dir, requests, n_workers=1)
        process, _ = _serve(
            artifacts_dir, requests, n_workers=1, worker_mode="process"
        )
        _assert_identical_responses(thread, process)

    def test_latency_and_flush_stats_recorded(self, artifacts_dir, tiny_suite):
        requests = _suite_requests(tiny_suite)
        with ModelRouter.open(
            artifacts_dir,
            max_batch=8,
            start_worker=False,
            n_workers=2,
            worker_mode="process",
        ) as router:
            futures = [router.submit(r) for r in requests]
            router.flush()
            responses = [f.result(timeout=60.0) for f in futures]
            assert all(
                r.latency_s is not None and r.latency_s >= 0 for r in responses
            )
            assert router.stats.flushes >= 1
            assert len(router.stats.latencies_s) == len(requests)
            assert all(n >= 1 for n in router.stats.shards_per_flush)


class TestSchedulerProcessMode:
    def test_worker_mode_validated(self):
        predictor = object()
        with pytest.raises(ValueError, match="worker_mode"):
            BatchScheduler(predictor, worker_mode="fibers", start_worker=False)

    def test_suite_backed_predictor_rejected_eagerly(self, tiny_suite):
        """No artifact directory → no WorkerSpec → construction fails
        with a pointed error, not a mid-flush pickle crash."""
        predictor = open_predictor(tiny_suite, 1)
        with pytest.raises(ValueError, match="artifact"):
            BatchScheduler(predictor, worker_mode="process", start_worker=False)

    def test_hookless_predictor_rejected(self):
        class Hookless:
            def predict_batch(self, requests):  # pragma: no cover
                return []

        with pytest.raises(ValueError, match="worker_specs"):
            BatchScheduler(Hookless(), worker_mode="process", start_worker=False)

    def test_cancellation_on_process_path(self, artifacts_dir):
        predictor = open_predictor(artifacts_dir, 1)
        scheduler = BatchScheduler(
            predictor, max_batch=16, n_workers=2,
            worker_mode="process", start_worker=False,
        )
        batch = load_suite(artifacts_dir).tasks[1].test_batch
        requests = [
            QueryRequest(
                batch.stories[i], batch.questions[i],
                n_sentences=int(batch.story_lengths[i]), request_id=i,
            )
            for i in range(6)
        ]
        futures = [scheduler.submit(r) for r in requests]
        assert futures[3].cancel()
        scheduler.flush()
        for i, future in enumerate(futures):
            if i == 3:
                assert future.cancelled()
            else:
                assert future.result(timeout=60.0).request_id == i
        scheduler.close()

    def test_bad_request_fails_only_its_sub_batch(self, artifacts_dir):
        """A payload the parent cannot encode (story wider than the
        model's memory) resolves its futures with the error and leaves
        the rest of the flush intact."""
        predictor = open_predictor(artifacts_dir, 1)
        memory_size = predictor.engine.config.memory_size
        scheduler = BatchScheduler(
            predictor, max_batch=16, n_workers=2,
            worker_mode="process", start_worker=False,
        )
        good = QueryRequest(
            np.ones((2, 3), dtype=np.int64), np.ones(3, dtype=np.int64)
        )
        bad = QueryRequest(
            np.ones((memory_size + 1, 3), dtype=np.int64),
            np.ones(3, dtype=np.int64),
        )
        good_future = scheduler.submit(good)
        bad_future = scheduler.submit(bad)
        scheduler.flush()
        assert good_future.result(timeout=60.0).label >= 0
        assert isinstance(bad_future.exception(timeout=60.0), ValueError)
        scheduler.close()


class TestWorkerSpec:
    def test_pickle_round_trip(self, artifacts_dir):
        predictor = open_predictor(
            artifacts_dir, 6, mips_backend="threshold",
            shards=2, shard_axis="vocab", rho=0.9,
        )
        (spec,) = predictor.worker_specs()
        assert spec == pickle.loads(pickle.dumps(spec))
        assert spec.artifacts == str(artifacts_dir)
        assert spec.task_id == 6
        # The spec records the caller's backend, not the internal
        # "sharded:" rewrite the shards shorthand applies.
        assert spec.mips_backend == "threshold"
        assert spec.shards == 2 and spec.shard_axis == "vocab"
        assert dict(spec.params)["rho"] == 0.9

    def test_router_collects_all_routes(self, artifacts_dir):
        with ModelRouter.open(
            artifacts_dir, start_worker=False
        ) as router:
            specs = router.scheduler.predictor.worker_specs()
        assert {s.task_id for s in specs} == {1, 6}
        assert all(isinstance(s, WorkerSpec) for s in specs)

    def test_suite_backed_predictor_has_no_spec(self, tiny_suite):
        predictor = open_predictor(tiny_suite, 1)
        assert predictor.spec is None
        with pytest.raises(ValueError, match="artifact"):
            predictor.worker_specs()


class TestMmapArtifacts:
    def test_mmap_npz_bit_identical(self, artifacts_dir):
        path = artifacts_dir / "task_01" / "arrays.npz"
        mapped = mmap_npz(path)
        with np.load(path) as data:
            assert set(mapped) == set(data.files)
            for name in data.files:
                assert np.array_equal(data[name], mapped[name]), name
                assert data[name].dtype == mapped[name].dtype, name

    def test_mapped_weights_are_read_only(self, artifacts_dir):
        suite = load_suite(artifacts_dir, mmap=True)
        weights = suite.tasks[1].weights
        assert isinstance(weights.w_o, np.memmap)
        with pytest.raises(ValueError):
            weights.w_o[0, 0] = 1.0

    def test_mmap_suite_serves_identically(self, artifacts_dir, tiny_suite):
        requests = _suite_requests(tiny_suite, tasks=(1,))
        copied = open_predictor(load_suite(artifacts_dir), 1)
        mapped = open_predictor(load_suite(artifacts_dir, mmap=True), 1)
        _assert_identical_responses(
            copied.predict_batch(requests), mapped.predict_batch(requests)
        )
