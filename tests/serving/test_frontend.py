"""AsyncFrontend: the asyncio facade, admission control and deadlines.

pytest-asyncio is an optional dependency (declared in the ``test``
extra), so every async test here drives its own loop with
``asyncio.run`` — plain sync test functions, no plugin required.

The parity matrix at the end is the acceptance gate: responses served
through ``AsyncFrontend`` must be bit-identical to synchronous
``submit()`` across all four MIPS backends and both worker modes. Both
paths use ``max_batch == len(requests)`` so each run is exactly one
flush over the identical request order — identical partitioning, hence
identical padded-batch numerics (pairwise-summation widths and all).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.serving import (
    AsyncFrontend,
    BatchScheduler,
    DeadlineExceededError,
    FlushCostModel,
    ManualClock,
    ModelRouter,
    OverloadError,
    QueryRequest,
    QueryResponse,
    ServingStats,
)


def _request(i: int, deadline_s: float | None = None) -> QueryRequest:
    return QueryRequest(
        story=np.full((2, 3), i + 1, dtype=np.int64),
        question=np.array([i + 1, 0, 0], dtype=np.int64),
        request_id=i,
        deadline_s=deadline_s,
    )


class StubPredictor:
    """Echoes ids as labels; records flush sizes and seen deadlines."""

    def __init__(self):
        self.flush_sizes: list[int] = []
        self.deadlines: list[float | None] = []

    def predict_batch(self, requests):
        self.flush_sizes.append(len(requests))
        self.deadlines.extend(r.deadline_s for r in requests)
        return [
            QueryResponse(
                label=int(r.request_id),
                logit=0.0,
                comparisons=1,
                early_exit=False,
                request_id=r.request_id,
            )
            for r in requests
        ]


class GatedPredictor(StubPredictor):
    """Blocks every flush on a gate — pins work in-flight for races."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Event()

    def predict_batch(self, requests):
        self.entered.set()
        assert self.gate.wait(timeout=10.0), "test forgot to open the gate"
        return super().predict_batch(requests)


class TestAsyncBridge:
    """The concurrent.futures → asyncio bridge itself."""

    def test_query_resolves_without_threads_per_request(self):
        async def run():
            stub = StubPredictor()
            scheduler = BatchScheduler(stub, max_batch=4, max_wait_s=0.001)
            async with AsyncFrontend(scheduler) as frontend:
                before = threading.active_count()
                responses = await frontend.query_many(
                    [_request(i) for i in range(16)]
                )
                # The bridge parks coroutines on the loop, not threads.
                assert threading.active_count() <= before + 1
            return responses

        responses = asyncio.run(run())
        assert [r.label for r in responses] == list(range(16))
        assert all(r.latency_s is not None for r in responses)

    def test_flush_errors_propagate_to_awaiters(self):
        class Failing:
            def predict_batch(self, requests):
                raise RuntimeError("backend down")

        async def run():
            async with AsyncFrontend(
                BatchScheduler(Failing(), max_batch=2, max_wait_s=0.001)
            ) as frontend:
                with pytest.raises(RuntimeError, match="backend down"):
                    await frontend.query(_request(0))

        asyncio.run(run())

    def test_deadline_stamping_precedence(self):
        """Per-call beats per-request beats frontend default."""
        async def run():
            stub = StubPredictor()
            scheduler = BatchScheduler(stub, max_batch=1, max_wait_s=0.001)
            async with AsyncFrontend(
                scheduler, default_deadline_s=9.0
            ) as frontend:
                await frontend.query(_request(0))                    # default
                await frontend.query(_request(1, deadline_s=7.0))    # request
                await frontend.query(_request(2), deadline_s=5.0)    # call
            return stub.deadlines

        assert asyncio.run(run()) == [9.0, 7.0, 5.0]

    def test_close_is_idempotent_and_query_after_close_raises(self):
        async def run():
            frontend = AsyncFrontend(
                BatchScheduler(StubPredictor(), max_batch=1)
            )
            response = await frontend.query(_request(0))
            await frontend.aclose()
            await frontend.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await frontend.query(_request(1))
            return response

        assert asyncio.run(run()).label == 0

    def test_default_deadline_validation(self):
        with pytest.raises(ValueError, match="positive"):
            AsyncFrontend(object(), default_deadline_s=0.0)
        with pytest.raises(ValueError, match="positive"):
            QueryRequest(
                story=np.zeros((1, 1), dtype=np.int64),
                question=np.zeros(1, dtype=np.int64),
                deadline_s=-1.0,
            )


class TestAsyncAdmission:
    """Bounded-queue admission as seen from the event loop."""

    def test_block_policy_waits_for_room_then_serves_everyone(self):
        stub = GatedPredictor()
        # inline_flush=False: the gated flush must run on the deadline
        # thread, never inline on the event loop (which would deadlock).
        scheduler = BatchScheduler(
            stub, max_batch=1, max_wait_s=0.0, queue_cap=1,
            overload_policy="block", inline_flush=False,
        )

        async def run():
            loop = asyncio.get_running_loop()
            async with AsyncFrontend(scheduler) as frontend:
                first = asyncio.ensure_future(frontend.query(_request(0)))
                # Worker is now inside predict_batch; queue is empty.
                await loop.run_in_executor(None, stub.entered.wait, 5.0)
                second = asyncio.ensure_future(frontend.query(_request(1)))
                await asyncio.sleep(0.05)  # second occupies the queue
                third = asyncio.ensure_future(frontend.query(_request(2)))
                await asyncio.sleep(0.05)
                # Admission for the third parks on a room callback —
                # no OverloadError surfaces under "block".
                assert not third.done()
                stub.gate.set()
                return await asyncio.gather(first, second, third)

        responses = asyncio.run(run())
        assert [r.label for r in responses] == [0, 1, 2]
        assert scheduler.stats.shed == 0

    def test_shed_policy_raises_typed_overload(self):
        stub = GatedPredictor()
        scheduler = BatchScheduler(
            stub, max_batch=4, max_wait_s=0.0, queue_cap=1,
            overload_policy="shed",
        )

        async def run():
            loop = asyncio.get_running_loop()
            async with AsyncFrontend(scheduler) as frontend:
                first = asyncio.ensure_future(frontend.query(_request(0)))
                await loop.run_in_executor(None, stub.entered.wait, 5.0)
                second = asyncio.ensure_future(frontend.query(_request(1)))
                await asyncio.sleep(0.05)
                with pytest.raises(OverloadError):
                    await frontend.query(_request(2))
                stub.gate.set()
                return await asyncio.gather(first, second)

        responses = asyncio.run(run())
        assert [r.label for r in responses] == [0, 1]
        assert scheduler.stats.shed == 1
        assert scheduler.stats.offered == 3

    def test_storm_never_strands_a_future(self):
        """Acceptance: every submitted request resolves — response or
        typed error — under sustained overload with shedding."""
        n = 200

        class Slow(StubPredictor):
            def predict_batch(self, requests):
                time.sleep(0.001)
                return super().predict_batch(requests)

        scheduler = BatchScheduler(
            Slow(), max_batch=8, max_wait_s=0.0005, queue_cap=4,
            overload_policy="shed",
        )

        async def run():
            async with AsyncFrontend(scheduler) as frontend:
                return await frontend.query_many(
                    [_request(i) for i in range(n)], return_exceptions=True
                )

        results = asyncio.run(run())
        assert len(results) == n
        served = [r for r in results if isinstance(r, QueryResponse)]
        shed = [r for r in results if isinstance(r, OverloadError)]
        assert len(served) + len(shed) == n  # nothing stranded, nothing else
        assert served, "overload test served nothing at all"
        assert scheduler.stats.requests == len(served)
        assert scheduler.stats.shed == len(shed)
        assert scheduler.stats.offered == n


class TestDeadlineAwareFlush:
    """The SLO-aware early flush: deadlines beat max_wait_s."""

    def test_deadline_flushes_long_before_max_wait(self):
        stub = StubPredictor()
        scheduler = BatchScheduler(
            stub, max_batch=32, max_wait_s=10.0,
            cost_model=FlushCostModel(cold_estimate_s=0.005),
        )

        async def run():
            async with AsyncFrontend(scheduler) as frontend:
                # A deadline-free request alone would sit for 10 s...
                idle = asyncio.ensure_future(frontend.query(_request(0)))
                await asyncio.sleep(0.05)
                assert not idle.done()
                # ...but a deadline-carrying arrival drags the whole
                # queue into an early flush inside its SLO budget.
                started = time.perf_counter()
                await frontend.query(_request(1), deadline_s=0.25)
                elapsed = time.perf_counter() - started
                await idle
                return elapsed

        elapsed = asyncio.run(run())
        assert elapsed < 5.0  # way under max_wait_s; typically ~0.25 s
        assert stub.flush_sizes == [2]  # one batch: both rode the flush
        assert scheduler.stats.deadline_met == 1
        assert scheduler.stats.deadline_missed == 0
        assert scheduler.stats.goodput_rate == 1.0

    def test_cost_model_cold_and_warm_estimates(self):
        model = FlushCostModel(
            write_share=0.5, safety_factor=2.0, cold_estimate_s=0.003,
            min_samples=2,
        )
        stats = ServingStats()
        assert model.estimate_s(stats) == 0.003  # no flushes yet: cold
        stats.record_flush(4, service_s=0.010)
        assert model.estimate_s(stats) == 0.003  # still below min_samples
        stats.record_flush(4, service_s=0.010)
        # Warm, no cache hits: p95 * safety = 0.010 * 2.0.
        assert model.estimate_s(stats) == pytest.approx(0.020)
        # A hit-heavy mix discounts the write phase: * (1 - 0.5 * 0.75).
        stats.set_cache_counters(hits=3, misses=1, evictions=0)
        assert model.estimate_s(stats) == pytest.approx(0.020 * 0.625)

    def test_shed_expired_resolves_with_typed_error(self):
        """Budget spent in the queue → DeadlineExceededError, and the
        live requests in the same flush still get answers."""
        clock = ManualClock()
        stub = StubPredictor()
        scheduler = BatchScheduler(
            stub, max_batch=8, start_worker=False, clock=clock,
            queue_cap=8, overload_policy="shed-expired",
        )
        doomed = scheduler.submit(_request(0, deadline_s=1.0))
        live = scheduler.submit(_request(1))
        clock.advance(2.0)
        scheduler.flush()
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=5.0)
        assert live.result(timeout=5.0).label == 1
        assert stub.flush_sizes == [1]  # the expired one never ran
        assert scheduler.stats.expired == 1
        assert scheduler.stats.requests == 1
        scheduler.close()


def _matrix_requests(suite):
    requests = []
    for task in (1, 6):
        batch = suite.tasks[task].test_batch
        for i in range(len(batch)):
            requests.append(
                QueryRequest(
                    batch.stories[i],
                    batch.questions[i],
                    n_sentences=int(batch.story_lengths[i]),
                    request_id=f"{task}-{i}",
                    task=task,
                )
            )
    return requests


def _open_router(artifacts_dir, n_requests, worker_mode, backend):
    # max_batch == n_requests: the run is exactly one flush, triggered
    # inline by the final submission — identical partitioning between
    # the sync and async paths, hence bit-identical numerics.
    return ModelRouter.open(
        artifacts_dir,
        mips_backend=backend,
        shards=2,
        seed=0,
        max_batch=n_requests,
        n_workers=2,
        worker_mode=worker_mode,
        start_worker=False,
    )


class TestAsyncParityMatrix:
    """Acceptance: AsyncFrontend == BatchScheduler.submit, bitwise,
    across all four MIPS backends × both worker modes."""

    @pytest.mark.parametrize("backend", ["alsh", "clustering", "exact", "threshold"])
    @pytest.mark.parametrize("worker_mode", ["thread", "process"])
    def test_bit_identical_to_sync_submit(
        self, tiny_suite, artifacts_dir, backend, worker_mode
    ):
        requests = _matrix_requests(tiny_suite)

        with _open_router(
            artifacts_dir, len(requests), worker_mode, backend
        ) as router:
            futures = [router.submit(r) for r in requests]
            sync = [f.result(timeout=60.0) for f in futures]

        async def run():
            router = _open_router(
                artifacts_dir, len(requests), worker_mode, backend
            )
            async with AsyncFrontend(router) as frontend:
                return await frontend.query_many(requests)

        against = asyncio.run(run())
        assert len(sync) == len(against)
        for a, b in zip(sync, against):
            assert a.label == b.label
            assert a.logit == b.logit  # bitwise, not approx
            assert a.comparisons == b.comparisons
            assert a.early_exit == b.early_exit
            assert a.answer == b.answer
            assert a.request_id == b.request_id
