"""Tests for the bounded FIFO with backpressure."""

import pytest

from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment


class TestFifoBasics:
    def test_capacity_validated(self):
        env = Environment()
        with pytest.raises(ValueError):
            Fifo(env, 0)

    def test_put_get_order(self):
        env = Environment()
        fifo = Fifo(env, 4)
        got = []

        def producer():
            for i in range(3):
                yield fifo.put(i)

        def consumer():
            for _ in range(3):
                item = yield fifo.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        fifo = Fifo(env, 2)
        got = []

        def consumer():
            item = yield fifo.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(9)
            yield fifo.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(9, "x")]


class TestBackpressure:
    def test_put_blocks_when_full(self):
        env = Environment()
        fifo = Fifo(env, 1)
        timeline = []

        def producer():
            yield fifo.put("a")
            timeline.append(("put a", env.now))
            yield fifo.put("b")  # must wait for consumer
            timeline.append(("put b", env.now))

        def consumer():
            yield env.timeout(5)
            item = yield fifo.get()
            timeline.append((f"got {item}", env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ("put a", 0) in timeline
        assert ("put b", 5) in timeline  # released by the get at t=5

    def test_occupancy_tracking(self):
        env = Environment()
        fifo = Fifo(env, 8)

        def producer():
            for i in range(5):
                yield fifo.put(i)

        env.process(producer())
        env.run()
        assert fifo.max_occupancy == 5
        assert fifo.total_pushed == 5
        assert len(fifo) == 5
        assert not fifo.is_empty

    def test_is_full_flag(self):
        env = Environment()
        fifo = Fifo(env, 2)

        def producer():
            yield fifo.put(1)
            yield fifo.put(2)

        env.process(producer())
        env.run()
        assert fifo.is_full

    def test_handoff_to_waiting_getter_bypasses_queue(self):
        env = Environment()
        fifo = Fifo(env, 1)
        got = []

        def consumer():
            item = yield fifo.get()
            got.append(item)

        def producer():
            yield env.timeout(1)
            yield fifo.put("direct")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == ["direct"]
        assert len(fifo) == 0

    def test_throughput_limited_by_consumer(self):
        """With a slow consumer the producer finishes at consumer pace."""
        env = Environment()
        fifo = Fifo(env, 1)
        finish = {}

        def producer():
            for i in range(4):
                yield fifo.put(i)
            finish["producer"] = env.now

        def consumer():
            for _ in range(4):
                yield fifo.get()
                yield env.timeout(10)
            finish["consumer"] = env.now

        env.process(producer())
        env.process(consumer())
        env.run()
        # Producer's last put must wait for queue drain: 2 items consumed
        # (t=10, 20) before slot frees for item 3 at t=20.
        assert finish["producer"] == 20
        assert finish["consumer"] == 40
