"""Tests for the host interface, energy model and resource estimates."""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.config import HwConfig
from repro.hw.energy import EnergyModel
from repro.hw.opcounts import ExampleOpCounts
from repro.hw.pcie import HostInterface, TransferStats
from repro.hw.resources import estimate_resources
from repro.mann.config import MannConfig


class TestHostInterface:
    @pytest.fixture()
    def host(self):
        return HostInterface(DEFAULT_CALIBRATION)

    def test_transfer_time_components(self, host):
        c = DEFAULT_CALIBRATION
        t = host.transfer_time(1000, 2)
        assert t == pytest.approx(
            1000 / c.pcie_bandwidth + 2 * c.pcie_transaction_latency
        )

    def test_negative_sizes_rejected(self, host):
        with pytest.raises(ValueError):
            host.transfer_time(-1)

    def test_example_transfer_two_transactions(self, host):
        stats = host.example_transfer(50, 1)
        assert stats.transactions == 2
        assert stats.bytes_in == 50 * 4
        assert stats.bytes_out == 4
        assert stats.seconds > 2 * DEFAULT_CALIBRATION.pcie_transaction_latency * 0.99

    def test_model_transfer_uses_bulk_bandwidth(self, host):
        stats = host.model_transfer(10_000_000)
        c = DEFAULT_CALIBRATION
        slow = 10_000_000 / c.pcie_bandwidth
        assert stats.seconds < slow  # bulk DMA is much faster

    def test_latency_dominates_small_transfers(self, host):
        """The per-message cost exceeds the byte cost for tiny streams —
        the mechanism behind the paper's frequency-independent bound."""
        stats = host.example_transfer(20, 1)
        c = DEFAULT_CALIBRATION
        byte_time = (stats.bytes_in + stats.bytes_out) / c.pcie_bandwidth
        assert 2 * c.pcie_transaction_latency > 10 * byte_time

    def test_stats_addition(self):
        a = TransferStats(1, 2, 3, 4.0, 5.0)
        b = TransferStats(10, 20, 30, 40.0, 50.0)
        c = a + b
        assert (c.bytes_in, c.bytes_out, c.transactions) == (11, 22, 33)
        assert c.seconds == 44.0 and c.energy_joules == 55.0


class TestEnergyModel:
    @pytest.fixture()
    def model(self):
        return EnergyModel(DEFAULT_CALIBRATION)

    def test_switching_energy_linear_in_ops(self, model):
        one = model.switching_energy(ExampleOpCounts(mults=100))
        two = model.switching_energy(ExampleOpCounts(mults=200))
        assert two == pytest.approx(2 * one)

    def test_all_op_kinds_contribute(self, model):
        base = model.switching_energy(ExampleOpCounts())
        assert base == 0.0
        for field in ("mults", "adds", "exps", "divs", "compares",
                      "sram_reads", "sram_writes"):
            ops = ExampleOpCounts(**{field: 10})
            assert model.switching_energy(ops) > 0.0, field

    def test_floor_scales_with_time_and_frequency(self, model):
        ops = ExampleOpCounts(mults=10)
        e1 = model.run_energy(ops, 0.0, 1.0, 25.0)
        e2 = model.run_energy(ops, 0.0, 2.0, 25.0)
        e3 = model.run_energy(ops, 0.0, 1.0, 100.0)
        assert e2.floor == pytest.approx(2 * e1.floor)
        assert e3.floor > e1.floor

    def test_average_power_requires_positive_time(self, model):
        e = model.run_energy(ExampleOpCounts(), 0.0, 1.0, 25.0)
        with pytest.raises(ValueError):
            e.average_power(0.0)

    def test_power_floor_matches_calibration(self):
        c = DEFAULT_CALIBRATION
        assert c.fpga_power_floor(25.0) == pytest.approx(
            c.fpga_static_power + 25.0 * c.fpga_clock_power_per_mhz
        )


class TestResources:
    def test_design_fits_vcu107(self):
        estimate = estimate_resources(
            HwConfig(), MannConfig(vocab_size=200, embed_dim=20, memory_size=20)
        )
        assert estimate.fits()
        util = estimate.utilisation()
        assert all(0.0 < v < 1.0 for v in util.values())

    def test_scales_with_embed_dim(self):
        small = estimate_resources(
            HwConfig().with_embed_dim(8),
            MannConfig(vocab_size=100, embed_dim=8, memory_size=10),
        )
        large = estimate_resources(
            HwConfig().with_embed_dim(64),
            MannConfig(vocab_size=100, embed_dim=64, memory_size=10),
        )
        assert large.luts > small.luts
        assert large.dsps > small.dsps

    def test_bram_scales_with_vocab(self):
        small = estimate_resources(
            HwConfig(), MannConfig(vocab_size=50, embed_dim=20, memory_size=10)
        )
        large = estimate_resources(
            HwConfig(), MannConfig(vocab_size=5000, embed_dim=20, memory_size=10)
        )
        assert large.bram_kb > small.bram_kb


class TestHwConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HwConfig(frequency_mhz=0)
        with pytest.raises(ValueError):
            HwConfig(fifo_depth=0)
        with pytest.raises(ValueError):
            HwConfig(ith_rho=0.0)

    def test_cycle_time(self):
        assert HwConfig(frequency_mhz=100.0).cycle_time_s == pytest.approx(1e-8)

    def test_with_frequency_copies(self):
        base = HwConfig(frequency_mhz=25.0)
        other = base.with_frequency(75.0)
        assert base.frequency_mhz == 25.0
        assert other.frequency_mhz == 75.0

    def test_with_ith(self):
        cfg = HwConfig().with_ith(True, rho=0.9, index_ordering=False)
        assert cfg.ith_enabled and cfg.ith_rho == 0.9
        assert not cfg.ith_index_ordering

    def test_with_embed_dim(self):
        assert HwConfig().with_embed_dim(32).latency.embed_dim == 32
