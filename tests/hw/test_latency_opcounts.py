"""Tests for cycle-latency formulas and operation counting."""

import pytest

from repro.hw.latency import LatencyParams, adder_tree_depth
from repro.hw.opcounts import ExampleOpCounts, OpCounter


class TestAdderTree:
    def test_depths(self):
        assert adder_tree_depth(1) == 1
        assert adder_tree_depth(2) == 1
        assert adder_tree_depth(4) == 2
        assert adder_tree_depth(20) == 5
        assert adder_tree_depth(64) == 6

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            adder_tree_depth(0)


class TestLatencyParams:
    @pytest.fixture()
    def lat(self):
        return LatencyParams(embed_dim=20)

    def test_embed_sentence_scales_with_words(self, lat):
        assert lat.embed_sentence_cycles(6) - lat.embed_sentence_cycles(5) == 1

    def test_embed_sentence_floor_one_word(self, lat):
        assert lat.embed_sentence_cycles(0) == lat.embed_sentence_cycles(1)

    def test_addressing_scales_with_slots(self, lat):
        # Streaming pipeline: +1 score cycle and +1 divide cycle per slot.
        assert lat.addressing_cycles(9) - lat.addressing_cycles(8) == 2

    def test_addressing_includes_exp_div(self, lat):
        cheap = LatencyParams(embed_dim=20, exp_latency=0, div_latency=0)
        assert lat.addressing_cycles(5) - cheap.addressing_cycles(5) == (
            lat.exp_latency + lat.div_latency
        )

    def test_controller_scales_with_embed_dim(self):
        small = LatencyParams(embed_dim=8)
        large = LatencyParams(embed_dim=32)
        assert large.controller_cycles() > small.controller_cycles()

    def test_output_scan_one_row_per_cycle(self, lat):
        assert lat.output_scan_cycles(100) - lat.output_scan_cycles(99) == 1

    def test_tree_depth_property(self, lat):
        assert lat.tree_depth == adder_tree_depth(20)


class TestOpCounter:
    def test_embed_dim_validated(self):
        with pytest.raises(ValueError):
            OpCounter(0)

    def test_write_sentence_counts(self):
        counter = OpCounter(embed_dim=10)
        ops = counter.write_sentence(4)
        # 2 embeddings (a, c) of 4 columns + 2 temporal adds.
        assert ops.adds == 2 * 4 * 10 + 2 * 10
        assert ops.sram_reads == 2 * 4 * 10
        assert ops.sram_writes == 2 * 10
        assert ops.stream_words_in == 4

    def test_hop_counts(self):
        counter = OpCounter(embed_dim=10)
        ops = counter.hop(5)
        assert ops.exps == 5
        assert ops.divs == 5
        assert ops.mults == 5 * 10 + 5 * 10 + 10 * 10

    def test_output_scan_counts(self):
        counter = OpCounter(embed_dim=10)
        ops = counter.output_scan(30)
        assert ops.mults == 300
        assert ops.compares == 30
        assert ops.stream_words_out == 1

    def test_example_aggregation(self):
        counter = OpCounter(embed_dim=4)
        ops = counter.example([3, 2], 2, hops=2, output_visited=7)
        manual = (
            counter.write_sentence(3)
            + counter.write_sentence(2)
            + counter.embed_question(2)
            + counter.hop(2)
            + counter.hop(2)
            + counter.output_scan(7)
        )
        assert ops.flops == manual.flops
        assert ops.compares == manual.compares

    def test_flops_property(self):
        ops = ExampleOpCounts(mults=3, adds=4, exps=1, divs=2, compares=5)
        assert ops.flops == 10
        assert ops.total_ops == 15

    def test_add_operator(self):
        a = ExampleOpCounts(mults=1, stream_words_in=2)
        b = ExampleOpCounts(mults=4, kernel_launches=3)
        c = a + b
        assert c.mults == 5
        assert c.stream_words_in == 2
        assert c.kernel_launches == 3
