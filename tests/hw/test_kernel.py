"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.hw.kernel import Environment


class TestTimeouts:
    def test_timeout_advances_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(5)
            yield env.timeout(3)

        env.process(proc())
        assert env.run() == 8

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_allowed(self):
        env = Environment()

        def proc():
            yield env.timeout(0)

        env.process(proc())
        assert env.run() == 0

    def test_run_until_stops_early(self):
        env = Environment()

        def proc():
            yield env.timeout(100)

        env.process(proc())
        assert env.run(until=10) == 10


class TestProcesses:
    def test_parallel_processes_interleave(self):
        env = Environment()
        log = []

        def worker(name, delay):
            yield env.timeout(delay)
            log.append((env.now, name))

        env.process(worker("fast", 2))
        env.process(worker("slow", 7))
        env.run()
        assert log == [(2, "fast"), (7, "slow")]

    def test_process_join(self):
        env = Environment()
        order = []

        def child():
            yield env.timeout(4)
            order.append("child")
            return 42

        def parent():
            value = yield env.process(child())
            order.append(f"parent got {value}")

        env.process(parent())
        env.run()
        assert order == ["child", "parent got 42"]

    def test_yield_non_event_rejected(self):
        env = Environment()

        def bad():
            yield 5

        env.process(bad())
        with pytest.raises(TypeError):
            env.run()

    def test_fifo_ordering_same_timestamp(self):
        """Events scheduled for the same cycle run in schedule order."""
        env = Environment()
        log = []

        def worker(tag):
            yield env.timeout(3)
            log.append(tag)

        for tag in ("a", "b", "c"):
            env.process(worker(tag))
        env.run()
        assert log == ["a", "b", "c"]


class TestManualEvents:
    def test_trigger_wakes_waiter(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter():
            value = yield gate
            log.append((env.now, value))

        def opener():
            yield env.timeout(6)
            gate.trigger("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert log == [(6, "open")]

    def test_double_trigger_rejected(self):
        env = Environment()
        e = env.event()
        e.trigger()
        with pytest.raises(RuntimeError):
            e.trigger()

    def test_wait_on_already_triggered(self):
        env = Environment()
        e = env.event()
        e.trigger("v")
        got = []

        def waiter():
            value = yield e
            got.append(value)

        env.process(waiter())
        env.run()
        assert got == ["v"]
