"""Tests for the human-readable run reports."""

import pytest

from repro.hw import HwConfig, MannAccelerator
from repro.hw.report import (
    energy_table,
    full_report,
    module_utilisation_table,
    phase_breakdown_table,
    wall_time_table,
)


@pytest.fixture(scope="module")
def report(task1_system):
    config = HwConfig(frequency_mhz=25.0).with_embed_dim(
        task1_system["weights"].config.embed_dim
    )
    accelerator = MannAccelerator(
        task1_system["weights"], config, task1_system["threshold_model"]
    )
    return accelerator.run(task1_system["test_batch"])


class TestPhaseBreakdown:
    def test_shares_sum_to_total(self, report):
        text = phase_breakdown_table(report).render()
        assert "output scan" in text
        assert str(report.phases.total) in text

    def test_phase_totals_consistent(self, report):
        phases = report.phases
        assert phases.total == (
            phases.control
            + phases.write
            + phases.question
            + phases.hops
            + phases.output
        )
        assert phases.total == report.total_cycles


class TestModuleUtilisation:
    def test_all_modules_listed(self, report):
        text = module_utilisation_table(report).render()
        for name in ("CONTROL", "INPUT&WRITE", "MEM", "READ", "OUTPUT"):
            assert name in text


class TestWallTime:
    def test_interface_plus_compute(self, report):
        text = wall_time_table(report).render()
        assert "host interface" in text
        assert "fabric compute" in text
        assert report.wall_seconds == pytest.approx(
            report.interface_seconds + report.compute_seconds
        )


class TestEnergyTable:
    def test_sources_listed(self, report):
        text = energy_table(report).render()
        assert "datapath switching" in text
        assert "static + clock floor" in text


class TestFullReport:
    def test_contains_all_sections(self, report):
        text = full_report(report)
        assert "Per-phase cycle breakdown" in text
        assert "Module busy fractions" in text
        assert "Wall time" in text
        assert "Energy breakdown" in text
