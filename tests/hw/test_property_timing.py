"""Hypothesis property tests: the event-driven simulation must equal the
analytic timing model for arbitrary story shapes and unit latencies, and
the dataflow must stay deadlock-free at minimal FIFO depths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import HwConfig, MannAccelerator
from repro.hw.latency import LatencyParams
from repro.mann import MannConfig, MemoryNetwork


def _build_weights(vocab: int, embed: int, memory: int, hops: int, seed: int):
    config = MannConfig(
        vocab_size=vocab,
        embed_dim=embed,
        memory_size=memory,
        hops=hops,
        seed=seed,
    )
    return MemoryNetwork(config).export_weights()


def _random_batch(rng, vocab, memory, words, n_examples):
    from repro.babi.dataset import EncodedBatch

    stories = np.zeros((n_examples, memory, words), dtype=np.int64)
    questions = np.zeros((n_examples, words), dtype=np.int64)
    lengths = np.zeros(n_examples, dtype=np.int64)
    for i in range(n_examples):
        n = int(rng.integers(1, memory + 1))
        lengths[i] = n
        for s in range(n):
            w = int(rng.integers(1, words + 1))
            stories[i, s, :w] = rng.integers(1, vocab, size=w)
        qw = int(rng.integers(1, words + 1))
        questions[i, :qw] = rng.integers(1, vocab, size=qw)
    answers = rng.integers(0, vocab, size=n_examples)
    return EncodedBatch(stories, questions, answers, lengths)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    embed=st.integers(min_value=2, max_value=24),
    memory=st.integers(min_value=1, max_value=8),
    hops=st.integers(min_value=1, max_value=4),
    exp_latency=st.integers(min_value=0, max_value=20),
    div_latency=st.integers(min_value=0, max_value=30),
)
def test_event_sim_equals_analytic_for_any_shape(
    seed, embed, memory, hops, exp_latency, div_latency
):
    rng = np.random.default_rng(seed)
    vocab = int(rng.integers(5, 40))
    weights = _build_weights(vocab, embed, memory, hops, seed)
    latency = LatencyParams(
        embed_dim=embed, exp_latency=exp_latency, div_latency=div_latency
    )
    config = HwConfig(frequency_mhz=50.0, latency=latency)
    batch = _random_batch(rng, vocab, memory, words=5, n_examples=3)
    accelerator = MannAccelerator(weights, config)
    report = accelerator.run(batch, keep_examples=True)
    for example in report.examples:
        assert example.cycles == example.phases.total


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    fifo_depth=st.integers(min_value=1, max_value=4),
)
def test_no_deadlock_at_minimal_fifo_depth(seed, fifo_depth):
    """Backpressure at depth 1 must still drain every example."""
    rng = np.random.default_rng(seed)
    weights = _build_weights(vocab=12, embed=4, memory=6, hops=2, seed=seed)
    config = HwConfig(frequency_mhz=50.0, fifo_depth=fifo_depth).with_embed_dim(4)
    batch = _random_batch(rng, vocab=12, memory=6, words=4, n_examples=4)
    report = MannAccelerator(weights, config).run(batch)
    assert len(report.predictions) == 4
    assert report.total_cycles > 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_predictions_invariant_to_fifo_depth_and_frequency(seed):
    """Functional results must not depend on microarchitectural knobs."""
    rng = np.random.default_rng(seed)
    weights = _build_weights(vocab=15, embed=6, memory=5, hops=2, seed=seed)
    batch = _random_batch(rng, vocab=15, memory=5, words=4, n_examples=3)
    reference = None
    for depth, mhz in ((1, 25.0), (8, 100.0), (32, 400.0)):
        config = HwConfig(frequency_mhz=mhz, fifo_depth=depth).with_embed_dim(6)
        report = MannAccelerator(weights, config).run(batch)
        if reference is None:
            reference = report.predictions
        else:
            assert np.array_equal(report.predictions, reference)


@settings(max_examples=10, deadline=None)
@given(
    words=st.lists(
        st.integers(min_value=1, max_value=9), min_size=1, max_size=8
    ),
    question_words=st.integers(min_value=1, max_value=9),
    hops=st.integers(min_value=1, max_value=4),
    visited=st.integers(min_value=1, max_value=300),
)
def test_cycle_model_monotonicity(words, question_words, hops, visited):
    """More work can never take fewer cycles."""
    from repro.hw.timing import CycleModel

    model = CycleModel(LatencyParams(embed_dim=8))
    base = model.example_cycles(words, question_words, hops, visited).total
    more_words = model.example_cycles(
        words + [3], question_words, hops, visited
    ).total
    more_hops = model.example_cycles(
        words, question_words, hops + 1, visited
    ).total
    more_visits = model.example_cycles(
        words, question_words, hops, visited + 10
    ).total
    assert more_words > base
    assert more_hops > base
    assert more_visits > base
