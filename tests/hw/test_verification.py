"""Tests for the co-simulation verification module."""

import numpy as np
import pytest

from repro.hw import HwConfig, MannAccelerator
from repro.hw.verification import verify_against_golden


@pytest.fixture(scope="module")
def verified(task1_system):
    config = HwConfig(frequency_mhz=25.0).with_embed_dim(
        task1_system["weights"].config.embed_dim
    )
    accelerator = MannAccelerator(task1_system["weights"], config)
    return verify_against_golden(
        accelerator, task1_system["test_batch"], max_examples=25
    )


class TestVerification:
    def test_bit_exact_without_ith(self, verified):
        assert verified.bit_exact, verified.summary()
        assert verified.worst_error == 0.0

    def test_all_predictions_match(self, verified):
        assert verified.all_predictions_match
        assert verified.failures() == []

    def test_example_count_respected(self, verified):
        assert verified.n_examples == 25

    def test_summary_format(self, verified):
        text = verified.summary()
        assert "BIT-EXACT" in text
        assert "25 examples" in text

    def test_ith_configuration_also_verifies(self, task1_system):
        config = (
            HwConfig(frequency_mhz=25.0)
            .with_embed_dim(task1_system["weights"].config.embed_dim)
            .with_ith(True, rho=1.0)
        )
        accelerator = MannAccelerator(
            task1_system["weights"], config, task1_system["threshold_model"]
        )
        report = verify_against_golden(
            accelerator, task1_system["test_batch"], max_examples=15
        )
        assert report.bit_exact, report.summary()

    def test_detects_corrupted_weights(self, task1_system):
        """A deliberately wrong OUTPUT weight must show as divergence."""
        import copy

        weights = copy.deepcopy(task1_system["weights"])
        config = HwConfig(frequency_mhz=25.0).with_embed_dim(
            weights.config.embed_dim
        )
        accelerator = MannAccelerator(weights, config)
        # Corrupt the accelerator's address memory weight after build:
        # golden engine uses the original values.
        accelerator.weights.w_emb_a[1:] += 0.5

        from repro.mann.inference import InferenceEngine

        golden_engine = InferenceEngine(task1_system["weights"])
        batch = task1_system["test_batch"]
        golden = golden_engine.forward_trace(
            batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
        )
        from repro.hw.kernel import Environment

        env = Environment()
        fifo_in, fifo_out, _c, _iw, mem, _read, _out = (
            accelerator._build_pipeline(env)
        )
        accelerator.run_example(
            env, fifo_in, fifo_out, mem,
            batch.stories[0], batch.questions[0], int(batch.story_lengths[0]),
        )
        n = int(batch.story_lengths[0])
        assert not np.allclose(mem.mem_a[:n], golden.mem_a)
