"""Tests for SEU fault injection."""

import numpy as np
import pytest

from repro.hw.faults import (
    flip_bits_in_codes,
    inject_weight_faults,
    seu_sensitivity_sweep,
)
from repro.mann import InferenceEngine
from repro.mann.quantize import QFormat


class TestFlipBits:
    def test_zero_flips_identity(self, rng):
        codes = rng.integers(-100, 100, size=(5, 5))
        out = flip_bits_in_codes(codes, 0, 16, rng)
        assert np.array_equal(out, codes)

    def test_single_flip_changes_one_element(self, rng):
        codes = np.zeros((10,), dtype=np.int64)
        out = flip_bits_in_codes(codes, 1, 8, np.random.default_rng(0))
        assert (out != codes).sum() == 1

    def test_flip_is_involution(self):
        """Flipping the same (element, bit) twice restores the code."""
        codes = np.array([37], dtype=np.int64)
        class FixedRng:
            def __init__(self):
                self.calls = 0
            def integers(self, low, high, size=None):
                return np.zeros(size, dtype=np.int64)
        out = flip_bits_in_codes(codes, 2, 8, FixedRng())
        assert np.array_equal(out, codes)

    def test_values_stay_in_word_range(self, rng):
        q = QFormat(3, 4)
        codes = rng.integers(-100, 100, size=(50,))
        out = flip_bits_in_codes(codes, 200, q.total_bits, rng)
        values = q.from_integers(out)
        assert values.max() <= q.max_value + 1e-9
        assert values.min() >= q.min_value - 1e-9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            flip_bits_in_codes(np.zeros(3, dtype=int), -1, 8, rng)
        with pytest.raises(ValueError):
            flip_bits_in_codes(np.zeros(3, dtype=int), 1, 0, rng)


class TestInjectWeightFaults:
    def test_zero_rate_equals_quantized(self, task1_system):
        from repro.mann.quantize import quantize_weights

        q = QFormat(3, 12)
        injected = inject_weight_faults(task1_system["weights"], q, 0.0)
        quantized, _ = quantize_weights(task1_system["weights"], q)
        assert injected.n_flips == 0
        assert np.allclose(injected.weights.w_o, quantized.w_o)

    def test_rate_validated(self, task1_system):
        with pytest.raises(ValueError):
            inject_weight_faults(task1_system["weights"], QFormat(3, 8), 1.5)

    def test_flip_count_scales_with_rate(self, task1_system):
        q = QFormat(3, 12)
        low = inject_weight_faults(task1_system["weights"], q, 1e-4, seed=1)
        high = inject_weight_faults(task1_system["weights"], q, 1e-2, seed=1)
        assert high.n_flips > low.n_flips
        assert 0 <= low.bit_error_rate <= 1

    def test_deterministic_for_seed(self, task1_system):
        q = QFormat(3, 8)
        a = inject_weight_faults(task1_system["weights"], q, 1e-3, seed=7)
        b = inject_weight_faults(task1_system["weights"], q, 1e-3, seed=7)
        assert np.array_equal(a.weights.w_o, b.weights.w_o)

    def test_original_untouched(self, task1_system):
        before = task1_system["weights"].w_o.copy()
        inject_weight_faults(task1_system["weights"], QFormat(3, 8), 0.01)
        assert np.array_equal(task1_system["weights"].w_o, before)


class TestSeuSweep:
    def test_accuracy_degrades_with_rate(self, task1_system):
        batch = task1_system["test_batch"]

        def evaluate(weights):
            return InferenceEngine(weights).accuracy(
                batch.stories, batch.questions, batch.answers, batch.story_lengths
            )

        sweep = seu_sensitivity_sweep(
            task1_system["weights"],
            evaluate,
            bit_error_rates=(0.0, 0.05),
            trials=2,
        )
        clean_accuracy = sweep[0][1]
        heavy_accuracy = sweep[1][1]
        assert clean_accuracy > 0.5
        assert heavy_accuracy < clean_accuracy

    def test_rates_and_flips_reported(self, task1_system):
        evaluate = lambda w: 1.0  # noqa: E731
        sweep = seu_sensitivity_sweep(
            task1_system["weights"],
            evaluate,
            bit_error_rates=(0.0, 1e-3),
            trials=1,
        )
        assert sweep[0][0] == 0.0 and sweep[0][2] == 0.0
        assert sweep[1][2] > 0.0
