"""Edge-case and failure-injection tests for the hardware stack."""

import numpy as np
import pytest

from repro.babi.dataset import EncodedBatch
from repro.hw import HwConfig, MannAccelerator
from repro.hw.kernel import Environment
from repro.mann import MannConfig, MemoryNetwork


def _weights(vocab=8, embed=4, memory=3, hops=1, seed=0):
    return MemoryNetwork(
        MannConfig(
            vocab_size=vocab,
            embed_dim=embed,
            memory_size=memory,
            hops=hops,
            seed=seed,
        )
    ).export_weights()


def _single_example_batch(vocab=8, memory=3, words=3):
    stories = np.zeros((1, memory, words), dtype=np.int64)
    stories[0, 0] = [1, 2, 3]
    questions = np.array([[2, 1, 0]], dtype=np.int64)
    answers = np.array([3], dtype=np.int64)
    lengths = np.array([1], dtype=np.int64)
    return EncodedBatch(stories, questions, answers, lengths)


class TestMinimalConfigurations:
    def test_single_sentence_single_hop(self):
        weights = _weights(hops=1)
        config = HwConfig(frequency_mhz=25.0).with_embed_dim(4)
        report = MannAccelerator(weights, config).run(_single_example_batch())
        assert report.total_cycles > 0
        assert len(report.predictions) == 1

    def test_memory_size_one(self):
        weights = _weights(memory=1)
        config = HwConfig().with_embed_dim(4)
        batch = _single_example_batch(memory=1)
        report = MannAccelerator(weights, config).run(batch)
        assert report.total_cycles > 0

    def test_embed_dim_one(self):
        weights = _weights(embed=1)
        config = HwConfig().with_embed_dim(1)
        report = MannAccelerator(weights, config).run(_single_example_batch())
        assert len(report.predictions) == 1

    def test_vocab_two(self):
        weights = _weights(vocab=4)
        config = HwConfig().with_embed_dim(4)
        batch = _single_example_batch(vocab=4)
        report = MannAccelerator(weights, config).run(batch)
        assert 0 <= report.predictions[0] < 4

    def test_many_hops(self):
        weights = _weights(hops=8)
        config = HwConfig().with_embed_dim(4)
        report = MannAccelerator(weights, config).run(_single_example_batch())
        single_hop = MannAccelerator(_weights(hops=1), config).run(
            _single_example_batch()
        )
        assert report.total_cycles > single_hop.total_cycles

    def test_empty_question_tolerated(self):
        """All-pad question embeds to the zero key without crashing."""
        weights = _weights()
        config = HwConfig().with_embed_dim(4)
        batch = _single_example_batch()
        batch.questions[...] = 0
        report = MannAccelerator(weights, config).run(batch)
        assert len(report.predictions) == 1


class TestKernelFailureModes:
    def test_exception_in_process_propagates(self):
        env = Environment()

        def broken():
            yield env.timeout(1)
            raise RuntimeError("module fault")

        env.process(broken())
        with pytest.raises(RuntimeError, match="module fault"):
            env.run()

    def test_run_with_empty_queue_returns_now(self):
        env = Environment()
        assert env.run() == 0

    def test_stale_until_does_not_rewind(self):
        env = Environment()

        def proc():
            yield env.timeout(10)

        env.process(proc())
        env.run()
        assert env.run(until=5) == 10  # queue empty; clock keeps its value


class TestModuleProtocolErrors:
    def test_wrong_message_type_raises(self):
        from repro.hw.fifo import Fifo
        from repro.hw.latency import LatencyParams
        from repro.hw.modules.control import ControlModule

        env = Environment()
        lat = LatencyParams(embed_dim=4)
        fifo_in = Fifo(env, 4)
        fifo_out = Fifo(env, 4)
        control = ControlModule(
            env, lat, fifo_in, fifo_out, Fifo(env, 4), Fifo(env, 4), Fifo(env, 4)
        )

        def host():
            yield fifo_in.put("garbage")

        env.process(host())
        with pytest.raises(TypeError, match="StartExampleMsg"):
            env.run()

    def test_mem_slot_out_of_range(self):
        from repro.hw.fifo import Fifo
        from repro.hw.latency import LatencyParams
        from repro.hw.modules.mem import MemModule
        from repro.hw.modules.messages import MemoryRowMsg

        env = Environment()
        lat = LatencyParams(embed_dim=4)
        from_write = Fifo(env, 2)
        mem = MemModule(env, lat, 2, from_write, Fifo(env, 2), Fifo(env, 2))

        def writer():
            yield from_write.put(
                MemoryRowMsg(slot=5, row_a=np.zeros(4), row_c=np.zeros(4))
            )

        env.process(writer())
        with pytest.raises(IndexError):
            env.run()
        assert mem.rows_valid == 0


class TestReportInvariants:
    def test_ops_scale_with_examples(self, task1_system):
        config = HwConfig().with_embed_dim(
            task1_system["weights"].config.embed_dim
        )
        accelerator = MannAccelerator(task1_system["weights"], config)
        batch = task1_system["test_batch"]
        one = accelerator.run(batch.subset(np.arange(5)))
        two = accelerator.run(batch.subset(np.arange(10)))
        assert two.ops.flops > one.ops.flops
        assert two.total_cycles > one.total_cycles

    def test_wall_time_identity(self, task1_system):
        config = HwConfig().with_embed_dim(
            task1_system["weights"].config.embed_dim
        )
        report = MannAccelerator(task1_system["weights"], config).run(
            task1_system["test_batch"]
        )
        assert report.wall_seconds == pytest.approx(
            report.interface_seconds + report.compute_seconds
        )
        assert report.energy.total == pytest.approx(
            report.average_power_w * report.wall_seconds
        )
