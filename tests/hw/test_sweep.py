"""Tests for the design-space exploration utilities."""

import pytest

from repro.hw import HwConfig
from repro.hw.sweep import (
    WorkloadShape,
    evaluate_design_point,
    frequency_sweep,
    interface_latency_sweep,
    lane_width_sweep,
    sweep_table,
)
from repro.mann.config import MannConfig


@pytest.fixture()
def workload():
    return WorkloadShape(n_examples=500)


@pytest.fixture()
def model_config():
    return MannConfig(vocab_size=170, embed_dim=20, memory_size=20)


class TestEvaluateDesignPoint:
    def test_basic_fields(self, workload, model_config):
        point = evaluate_design_point(
            workload, HwConfig().with_embed_dim(20), model_config
        )
        assert point.cycles_per_example > 0
        assert point.wall_seconds > 0
        assert 12.0 < point.average_power_w < 25.0
        assert point.fits

    def test_matches_cycle_model(self, workload, model_config):
        from repro.hw.latency import LatencyParams
        from repro.hw.timing import CycleModel

        point = evaluate_design_point(
            workload, HwConfig().with_embed_dim(20), model_config
        )
        expected = CycleModel(LatencyParams(embed_dim=20)).example_cycles(
            list(workload.sentence_word_counts),
            workload.question_words,
            workload.hops,
            workload.output_visited,
        )
        assert point.cycles_per_example == expected.total

    def test_ith_workload_fewer_cycles(self, workload, model_config):
        plain = evaluate_design_point(
            workload, HwConfig().with_embed_dim(20), model_config
        )
        thresholded = evaluate_design_point(
            workload.with_output_visited(40),
            HwConfig().with_embed_dim(20),
            model_config,
        )
        assert thresholded.cycles_per_example < plain.cycles_per_example


class TestFrequencySweep:
    def test_time_monotone_power_monotone(self, workload, model_config):
        points = frequency_sweep(workload, model_config)
        times = [p.wall_seconds for p in points]
        powers = [p.average_power_w for p in points]
        assert times == sorted(times, reverse=True)
        assert powers == sorted(powers)

    def test_diminishing_returns(self, workload, model_config):
        """Each clock doubling buys less time (interface bound)."""
        points = frequency_sweep(
            workload, model_config, frequencies_mhz=(25.0, 50.0, 100.0, 200.0)
        )
        gains = [
            points[i].wall_seconds / points[i + 1].wall_seconds
            for i in range(len(points) - 1)
        ]
        assert gains == sorted(gains, reverse=True)
        assert gains[-1] < 1.5


class TestLaneWidthSweep:
    def test_wider_model_more_cycles_and_dsps(self, workload):
        """A larger embedding costs controller cycles and DSP lanes."""
        points = lane_width_sweep(workload, vocab_size=170, widths=(8, 32))
        assert points[1].cycles_per_example > points[0].cycles_per_example
        assert points[1].resources.dsps > points[0].resources.dsps

    def test_all_widths_fit_device(self, workload):
        points = lane_width_sweep(workload, vocab_size=170)
        assert all(p.fits for p in points)


class TestInterfaceLatencySweep:
    def test_lower_latency_faster(self, workload, model_config):
        points = interface_latency_sweep(workload, model_config)
        times = [p.wall_seconds for _lat, p in points]
        assert times == sorted(times, reverse=True)

    def test_latencies_recorded(self, workload, model_config):
        points = interface_latency_sweep(
            workload, model_config, latencies_us=(13.0, 1.0)
        )
        assert points[0][0] == 13.0
        assert points[1][0] == 1.0


class TestSweepTable:
    def test_renders(self, workload, model_config):
        points = frequency_sweep(
            workload, model_config, frequencies_mhz=(25.0, 100.0)
        )
        text = sweep_table(points, "demo").render()
        assert "cycles/example" in text
        assert "yes" in text
