"""Co-simulation tests of the full accelerator against the golden engine."""

import numpy as np
import pytest

from repro.hw import HwConfig, MannAccelerator
from repro.hw.timing import CycleModel
from repro.mips import ExactMips


@pytest.fixture(scope="module")
def configs(request):
    return {
        "plain": HwConfig(frequency_mhz=25.0),
        "ith": HwConfig(frequency_mhz=25.0).with_ith(True, rho=1.0),
    }


def _accelerator(system, config):
    cfg = config.with_embed_dim(system["weights"].config.embed_dim)
    return MannAccelerator(system["weights"], cfg, system["threshold_model"])


class TestFunctionalCoSimulation:
    def test_predictions_bit_exact_with_golden(self, task1_system, configs):
        accelerator = _accelerator(task1_system, configs["plain"])
        batch = task1_system["test_batch"]
        report = accelerator.run(batch)
        golden = task1_system["engine"].predict(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert np.array_equal(report.predictions, golden)

    def test_accuracy_reported(self, task1_system, configs):
        accelerator = _accelerator(task1_system, configs["plain"])
        report = accelerator.run(task1_system["test_batch"])
        batch = task1_system["test_batch"]
        assert report.accuracy == pytest.approx(
            float((report.predictions == batch.answers).mean())
        )

    def test_ith_matches_software_mips(self, task1_system, configs):
        """Accelerator + ITH must equal the software ITH engine exactly."""
        from repro.mips import InferenceThresholding

        accelerator = _accelerator(task1_system, configs["ith"])
        batch = task1_system["test_batch"]
        report = accelerator.run(batch)
        sw = InferenceThresholding(
            task1_system["weights"].w_o,
            task1_system["threshold_model"],
            rho=1.0,
        )
        engine = task1_system["engine"]
        for i in range(len(batch)):
            h = engine.forward_trace(
                batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
            ).h_final
            assert report.predictions[i] == sw.search(h).label

    def test_approximate_backend_matches_software_engine(self, task1_system):
        """Any registered backend co-simulates through the OUTPUT module."""
        from repro.mips import build_backend

        weights = task1_system["weights"]
        cfg = (
            HwConfig(frequency_mhz=25.0)
            .with_embed_dim(weights.config.embed_dim)
            .with_mips_backend("clustering")
        )
        accelerator = MannAccelerator(weights, cfg)
        batch = task1_system["test_batch"].subset(np.arange(10))
        report = accelerator.run(batch)
        sw = build_backend("clustering", weights.w_o, seed=0)
        engine = task1_system["engine"]
        for i in range(len(batch)):
            h = engine.forward_trace(
                batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
            ).h_final
            expected = sw.search(h)
            assert report.predictions[i] == expected.label
        assert report.mean_comparisons < weights.config.vocab_size

    def test_mem_module_values_match_trace(self, task1_system, configs):
        """MEM rows after a run equal the golden trace memories."""
        accelerator = _accelerator(task1_system, configs["plain"])
        batch = task1_system["test_batch"].subset(np.array([0]))
        env_report = accelerator.run(batch)
        assert env_report.total_cycles > 0
        trace = task1_system["engine"].forward_trace(
            batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
        )
        # Re-run one example with a fresh pipeline to inspect MEM.
        from repro.hw.kernel import Environment

        env = Environment()
        fifo_in, fifo_out, control, iw, mem, read, output = (
            accelerator._build_pipeline(env)
        )
        accelerator.run_example(
            env, fifo_in, fifo_out, mem,
            batch.stories[0], batch.questions[0], int(batch.story_lengths[0]),
        )
        n = int(batch.story_lengths[0])
        assert np.array_equal(mem.mem_a[:n], trace.mem_a)
        assert np.array_equal(mem.mem_c[:n], trace.mem_c)
        # READ module recorded the same keys and attention values.
        for k_hw, k_gold in zip(read.trace_keys, trace.keys):
            assert np.array_equal(k_hw, k_gold)
        for msg, att in zip(read.trace_reads, trace.attentions):
            assert np.array_equal(msg.attention, att)


class TestTimingEquivalence:
    def test_event_sim_equals_analytic_model(self, task1_system, configs):
        """The discrete-event cycles equal the closed-form model exactly."""
        for key in ("plain", "ith"):
            accelerator = _accelerator(task1_system, configs[key])
            report = accelerator.run(task1_system["test_batch"], keep_examples=True)
            for example in report.examples:
                assert example.cycles == example.phases.total

    def test_total_cycles_sum_of_examples(self, task1_system, configs):
        accelerator = _accelerator(task1_system, configs["plain"])
        report = accelerator.run(task1_system["test_batch"], keep_examples=True)
        assert report.total_cycles == sum(e.cycles for e in report.examples)

    def test_ith_reduces_cycles(self, task1_system, configs):
        plain = _accelerator(task1_system, configs["plain"]).run(
            task1_system["test_batch"]
        )
        ith = _accelerator(task1_system, configs["ith"]).run(
            task1_system["test_batch"]
        )
        assert ith.total_cycles < plain.total_cycles
        assert ith.mean_comparisons < plain.mean_comparisons
        assert ith.early_exit_rate > 0

    def test_frequency_scales_compute_not_interface(self, task1_system):
        batch = task1_system["test_batch"]
        r25 = _accelerator(task1_system, HwConfig(frequency_mhz=25.0)).run(batch)
        r100 = _accelerator(task1_system, HwConfig(frequency_mhz=100.0)).run(batch)
        assert r25.total_cycles == r100.total_cycles
        assert r25.interface_seconds == pytest.approx(r100.interface_seconds)
        assert r25.compute_seconds == pytest.approx(4 * r100.compute_seconds)
        assert r25.wall_seconds > r100.wall_seconds
        # Sub-linear: 4x clock gives less than 4x total speedup.
        assert r25.wall_seconds / r100.wall_seconds < 4.0

    def test_module_busy_cycles_reported(self, task1_system, configs):
        report = _accelerator(task1_system, configs["plain"]).run(
            task1_system["test_batch"]
        )
        for name in ("CONTROL", "INPUT&WRITE", "MEM", "READ", "OUTPUT"):
            assert report.module_busy_cycles[name] > 0


class TestEnergyAccounting:
    def test_power_in_plausible_band(self, task1_system):
        """Paper band: ~14-21 W across 25-100 MHz."""
        batch = task1_system["test_batch"]
        p25 = _accelerator(task1_system, HwConfig(frequency_mhz=25.0)).run(batch)
        p100 = _accelerator(task1_system, HwConfig(frequency_mhz=100.0)).run(batch)
        assert 13.0 < p25.average_power_w < 17.0
        assert 18.0 < p100.average_power_w < 23.0
        assert p100.average_power_w > p25.average_power_w

    def test_energy_breakdown_sums(self, task1_system, configs):
        report = _accelerator(task1_system, configs["plain"]).run(
            task1_system["test_batch"]
        )
        e = report.energy
        assert e.total == pytest.approx(e.switching + e.interface + e.floor)
        assert e.floor > 0 and e.interface > 0 and e.switching > 0

    def test_flops_per_kilojoule_positive(self, task1_system, configs):
        report = _accelerator(task1_system, configs["plain"]).run(
            task1_system["test_batch"]
        )
        assert report.flops_per_kilojoule() > 0
        assert report.flops == report.ops.flops


class TestConfigValidation:
    def test_embed_dim_mismatch_rejected(self, task1_system):
        bad = HwConfig().with_embed_dim(
            task1_system["weights"].config.embed_dim + 1
        )
        with pytest.raises(ValueError):
            MannAccelerator(task1_system["weights"], bad)

    def test_ith_requires_threshold_model(self, task1_system):
        cfg = HwConfig().with_embed_dim(
            task1_system["weights"].config.embed_dim
        ).with_ith(True)
        with pytest.raises(ValueError):
            MannAccelerator(task1_system["weights"], cfg, threshold_model=None)

    def test_threshold_backend_alias_requires_model_too(self, task1_system):
        """The fail-fast check resolves aliases, not just 'threshold'."""
        for name in ("threshold", "ith"):
            cfg = HwConfig().with_embed_dim(
                task1_system["weights"].config.embed_dim
            ).with_mips_backend(name)
            with pytest.raises(ValueError):
                MannAccelerator(task1_system["weights"], cfg, threshold_model=None)

    def test_unknown_backend_rejected_at_construction(self, task1_system):
        cfg = HwConfig().with_embed_dim(
            task1_system["weights"].config.embed_dim
        ).with_mips_backend("no-such-backend")
        with pytest.raises(KeyError):
            MannAccelerator(task1_system["weights"], cfg)

    def test_model_transfer_optional(self, task1_system, configs):
        accelerator = _accelerator(task1_system, configs["plain"])
        with_model = accelerator.run(task1_system["test_batch"])
        without = accelerator.run(
            task1_system["test_batch"], include_model_transfer=False
        )
        assert without.interface_seconds < with_model.interface_seconds
