"""Tests for the double-buffered streaming pipeline mode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import HwConfig
from repro.hw.streaming import (
    StageCycles,
    analytic_streaming_cycles,
    run_streaming,
    simulate_streaming,
    stage_cycles_for_batch,
)


class TestStageCycles:
    def test_bottleneck_and_total(self):
        stage = StageCycles(10, 20, 15)
        assert stage.bottleneck == 20
        assert stage.sequential_total == 45


class TestAnalyticVsSimulation:
    def test_single_example_equals_sum(self):
        stages = [StageCycles(5, 7, 11)]
        assert analytic_streaming_cycles(stages) == 23
        assert simulate_streaming(stages) == 23

    def test_identical_stages_reach_bottleneck_rate(self):
        stage = StageCycles(4, 6, 10)
        n = 50
        total = analytic_streaming_cycles([stage] * n)
        # Steady state: one result per bottleneck interval.
        assert total == pytest.approx(n * 10, rel=0.1)
        assert simulate_streaming([stage] * n) == total

    def test_streaming_never_slower_than_sequential(self):
        rng = np.random.default_rng(0)
        stages = [
            StageCycles(
                int(rng.integers(1, 30)),
                int(rng.integers(1, 30)),
                int(rng.integers(1, 30)),
            )
            for _ in range(20)
        ]
        streaming = simulate_streaming(stages)
        sequential = sum(s.sequential_total for s in stages)
        assert streaming <= sequential
        # Blocking (two banks) can only add over the unbounded bound.
        assert streaming >= analytic_streaming_cycles(stages)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=30),
    )
    def test_event_sim_bounded_by_recurrence_and_sum(self, seed, n):
        """Two-bank blocking sits between the infinite-buffer lower
        bound and the fully sequential upper bound."""
        rng = np.random.default_rng(seed)
        stages = [
            StageCycles(
                int(rng.integers(0, 40)),
                int(rng.integers(1, 40)),
                int(rng.integers(1, 40)),
            )
            for _ in range(n)
        ]
        streaming = simulate_streaming(stages)
        assert analytic_streaming_cycles(stages) <= streaming
        assert streaming <= sum(s.sequential_total for s in stages)

    def test_makespan_lower_bound_is_bottleneck_sum(self):
        rng = np.random.default_rng(3)
        stages = [
            StageCycles(
                int(rng.integers(1, 20)),
                int(rng.integers(1, 20)),
                int(rng.integers(1, 20)),
            )
            for _ in range(15)
        ]
        total = analytic_streaming_cycles(stages)
        for attr in ("transfer_cycles", "write_cycles", "read_output_cycles"):
            assert total >= sum(getattr(s, attr) for s in stages)


class TestRunStreaming:
    def test_on_trained_system(self, task1_system):
        config = HwConfig(frequency_mhz=100.0).with_embed_dim(
            task1_system["weights"].config.embed_dim
        )
        batch = task1_system["test_batch"]
        vocab = task1_system["weights"].config.vocab_size
        report = run_streaming(
            batch, config, task1_system["weights"].config.hops, vocab
        )
        assert report.n_examples == len(batch)
        assert report.speedup > 1.0
        assert report.wall_seconds(config) > 0

    def test_stage_costs_reflect_ith(self, task1_system):
        """Fewer visited output rows shrink the read/output stage."""
        config = HwConfig(frequency_mhz=100.0).with_embed_dim(
            task1_system["weights"].config.embed_dim
        )
        batch = task1_system["test_batch"]
        hops = task1_system["weights"].config.hops
        full = stage_cycles_for_batch(
            batch, config, hops, task1_system["weights"].config.vocab_size
        )
        reduced = stage_cycles_for_batch(batch, config, hops, 5)
        for a, b in zip(full, reduced):
            assert b.read_output_cycles < a.read_output_cycles
            assert b.write_cycles == a.write_cycles

    def test_interface_bound_workload_hides_compute(self, task1_system):
        """When transfer dominates, streaming time ~= transfer time."""
        config = HwConfig(frequency_mhz=400.0).with_embed_dim(
            task1_system["weights"].config.embed_dim
        )
        batch = task1_system["test_batch"]
        report = run_streaming(
            batch, config, task1_system["weights"].config.hops, 10
        )
        transfer_total = sum(
            s.transfer_cycles for s in report.stage_cycles
        )
        assert report.total_cycles_streaming < 1.25 * transfer_total
