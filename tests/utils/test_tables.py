"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import TextTable, format_float, format_ratio


class TestFormatters:
    def test_format_float(self):
        assert format_float(3.14159, 2) == "3.14"

    def test_format_float_none(self):
        assert format_float(None) == "-"

    def test_format_ratio(self):
        assert format_ratio(126.72) == "126.72x"

    def test_format_ratio_none(self):
        assert format_ratio(None) == "-"

    def test_format_float_digits(self):
        assert format_float(1.0, 4) == "1.0000"


class TestTextTable:
    def test_render_contains_headers_and_rows(self):
        table = TextTable(["config", "time"], title="demo")
        table.add_row(["GPU", "226.90"])
        text = table.render()
        assert "demo" in text
        assert "config" in text
        assert "GPU" in text
        assert "226.90" in text

    def test_row_length_mismatch_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only one"])

    def test_column_alignment(self):
        table = TextTable(["name", "x"])
        table.add_row(["aa", "1"])
        table.add_row(["bbbb", "2"])
        lines = table.render().splitlines()
        # All data lines have the separator at the same position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_non_string_cells_coerced(self):
        table = TextTable(["n"])
        table.add_row([42])
        assert "42" in table.render()

    def test_no_title(self):
        table = TextTable(["h"])
        table.add_row(["v"])
        assert table.render().splitlines()[0].startswith("h")
