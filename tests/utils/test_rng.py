"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, new_rng, spawn_rngs


class TestNewRng:
    def test_deterministic_for_same_seed(self):
        a = new_rng(42).random(10)
        b = new_rng(42).random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = new_rng(1).random(10)
        b = new_rng(2).random(10)
        assert not np.array_equal(a, b)

    def test_none_seed_allowed(self):
        gen = new_rng(None)
        assert isinstance(gen.random(), float)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_independent(self):
        streams = spawn_rngs(7, 3)
        draws = [g.random(5) for g in streams]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible(self):
        a = [g.random(3) for g in spawn_rngs(9, 2)]
        b = [g.random(3) for g in spawn_rngs(9, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestRngMixin:
    def test_lazy_generator(self):
        class Thing(RngMixin):
            seed = 5

        t = Thing()
        first = t.rng.random()
        t.reseed(5)
        assert t.rng.random() == first

    def test_reseed_changes_stream(self):
        class Thing(RngMixin):
            seed = 5

        t = Thing()
        a = t.rng.random()
        t.reseed(6)
        b = t.rng.random()
        assert a != b
