"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.tasks == list(range(1, 21))
        assert args.n_train == 150

    def test_custom_task_list(self):
        args = build_parser().parse_args(["fig3", "--tasks", "1", "2"])
        assert args.tasks == [1, 2]

    def test_resources_arguments(self):
        args = build_parser().parse_args(["resources", "--vocab", "99"])
        assert args.vocab == 99


class TestCommands:
    def test_tasks_listing(self, capsys):
        assert main(["tasks"]) == 0
        out = capsys.readouterr().out
        assert "single supporting fact" in out
        assert "path finding" in out

    def test_resources_report(self, capsys):
        assert main(["resources", "--vocab", "200"]) == 0
        out = capsys.readouterr().out
        assert "LUT" in out
        assert "fits on the device" in out

    def test_table1_small_run(self, capsys):
        code = main(
            [
                "table1",
                "--tasks", "1",
                "--n-train", "30",
                "--n-test", "10",
                "--epochs", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FPGA 100 MHz" in out
        assert "ITH inference-time reduction" in out

    def test_ablation_small_run(self, capsys):
        code = main(
            [
                "ablation",
                "--tasks", "1",
                "--n-train", "30",
                "--n-test", "10",
                "--epochs", "5",
            ]
        )
        assert code == 0
        assert "interface removed" in capsys.readouterr().out

    def test_sweep_frequency(self, capsys):
        assert main(["sweep", "--kind", "frequency"]) == 0
        assert "Clock sweep" in capsys.readouterr().out

    def test_sweep_width(self, capsys):
        assert main(["sweep", "--kind", "width"]) == 0
        out = capsys.readouterr().out
        assert "Model-width sweep" in out
        assert "DSP util" in out

    def test_sweep_interface(self, capsys):
        assert main(["sweep", "--kind", "interface"]) == 0
        assert "Interface-latency sweep" in capsys.readouterr().out
