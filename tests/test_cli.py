"""Tests for the command-line interface.

Every subcommand gets a smoke test on a tiny 1-task suite. Training
happens once: the session-scoped ``cli_artifacts`` fixture runs
``repro train --save`` and the experiment subcommands reuse that
directory through ``--artifacts`` — exercising exactly the
no-retraining path the serving API exists for.
"""

import pytest

from repro.cli import build_parser, main
from repro.eval.suite import SuiteConfig

TINY = ["--tasks", "1", "--n-train", "30", "--n-test", "10", "--epochs", "5"]


@pytest.fixture(scope="session")
def cli_artifacts(tmp_path_factory):
    """One `repro train --save` run shared by every --artifacts test."""
    directory = tmp_path_factory.mktemp("cli_artifacts") / "suite"
    assert main(["train", "--save", str(directory), *TINY]) == 0
    return str(directory)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_suite_defaults_come_from_suite_config(self):
        """One source of truth: argparse defaults == SuiteConfig()."""
        defaults = SuiteConfig()
        args = build_parser().parse_args(["table1"])
        assert args.tasks is None  # resolved to all 20 at build time
        assert args.n_train == defaults.n_train
        assert args.n_test == defaults.n_test
        assert args.epochs == defaults.epochs
        assert args.seed == defaults.seed
        assert args.artifacts is None

    def test_custom_task_list(self):
        args = build_parser().parse_args(["fig3", "--tasks", "1", "2"])
        assert args.tasks == [1, 2]

    def test_resources_arguments(self):
        args = build_parser().parse_args(["resources", "--vocab", "99"])
        assert args.vocab == 99

    def test_epilog_lists_every_subcommand(self):
        epilog = build_parser().epilog
        for name in (
            "table1", "fig3", "fig4", "ablation", "mips", "sweep",
            "resources", "tasks", "train", "query", "serve-bench",
        ):
            assert name in epilog

    def test_train_requires_save(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_train_takes_no_artifacts_flag(self):
        """`train` always trains; it must reject --artifacts."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--save", "x", "--artifacts", "y"])


class TestCommands:
    def test_tasks_listing(self, capsys):
        assert main(["tasks"]) == 0
        out = capsys.readouterr().out
        assert "single supporting fact" in out
        assert "path finding" in out

    def test_resources_report(self, capsys):
        assert main(["resources", "--vocab", "200"]) == 0
        out = capsys.readouterr().out
        assert "LUT" in out
        assert "fits on the device" in out

    def test_table1_small_run(self, capsys):
        assert main(["table1", *TINY]) == 0
        out = capsys.readouterr().out
        assert "FPGA 100 MHz" in out
        assert "ITH inference-time reduction" in out

    def test_ablation_small_run(self, capsys):
        assert main(["ablation", *TINY]) == 0
        assert "interface removed" in capsys.readouterr().out

    def test_sweep_frequency(self, capsys):
        assert main(["sweep", "--kind", "frequency"]) == 0
        assert "Clock sweep" in capsys.readouterr().out

    def test_sweep_width(self, capsys):
        assert main(["sweep", "--kind", "width"]) == 0
        out = capsys.readouterr().out
        assert "Model-width sweep" in out
        assert "DSP util" in out

    def test_sweep_interface(self, capsys):
        assert main(["sweep", "--kind", "interface"]) == 0
        assert "Interface-latency sweep" in capsys.readouterr().out


class TestServingCommands:
    def test_train_saves_artifacts(self, cli_artifacts, capsys):
        """The fixture ran `train --save`; the directory must verify."""
        from repro.artifacts import verify_artifacts

        suite = verify_artifacts(cli_artifacts)
        assert suite.task_ids == [1]

    def test_query_round_trip(self, cli_artifacts, capsys):
        assert main(["query", "--artifacts", cli_artifacts, "--task", "1"]) == 0
        out = capsys.readouterr().out
        assert "device=sw" in out
        assert "correct" in out

    def test_query_threshold_backend(self, cli_artifacts, capsys):
        code = main(
            [
                "query", "--artifacts", cli_artifacts, "--task", "1",
                "--mips-backend", "threshold", "--rho", "1.0", "--indices", "0", "1",
            ]
        )
        assert code == 0
        assert "threshold backend" in capsys.readouterr().out

    def test_query_hw_device(self, cli_artifacts, capsys):
        code = main(
            [
                "query", "--artifacts", cli_artifacts, "--task", "1",
                "--device", "hw", "--indices", "0",
            ]
        )
        assert code == 0
        assert "device=hw" in capsys.readouterr().out

    def test_query_unknown_task_exits(self, cli_artifacts):
        with pytest.raises(SystemExit):
            main(["query", "--artifacts", cli_artifacts, "--task", "99"])

    def test_query_bad_index_exits(self, cli_artifacts):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "--artifacts", cli_artifacts, "--task", "1",
                    "--indices", "9999",
                ]
            )

    def test_serve_bench(self, cli_artifacts, capsys):
        code = main(
            [
                "serve-bench", "--artifacts", cli_artifacts,
                "--requests", "32", "--max-batch", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "one-at-a-time" in out
        assert "micro-batching speedup" in out
        assert "worker-pool speedup" in out

    def test_serve_bench_workers_and_shards(self, cli_artifacts, capsys):
        code = main(
            [
                "serve-bench", "--artifacts", cli_artifacts,
                "--requests", "24", "--max-batch", "8",
                "--workers", "2", "--shards", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worker pool (2 thread workers, 2 shards)" in out
        assert "per-route requests: task 1: 24" in out

    def test_serve_bench_vocab_axis(self, cli_artifacts, capsys):
        code = main(
            [
                "serve-bench", "--artifacts", cli_artifacts,
                "--requests", "16", "--max-batch", "8",
                "--workers", "2", "--shards", "2", "--shard-axis", "vocab",
            ]
        )
        assert code == 0
        assert "worker pool" in capsys.readouterr().out

    def test_train_quantize_and_query_quantized(self, tmp_path, capsys):
        directory = str(tmp_path / "qsuite")
        assert main(["train", "--save", directory, "--quantize", "3", "8", *TINY]) == 0
        assert "Q3.8 fixed-point snapshot" in capsys.readouterr().out
        assert main(["query", "--artifacts", directory, "--task", "1", "--quantized"]) == 0
        assert "quantized weights" in capsys.readouterr().out

    def test_serve_bench_vocab_axis_rejects_approximate_backend(self, cli_artifacts):
        with pytest.raises(SystemExit, match="exhaustive"):
            main(
                [
                    "serve-bench", "--artifacts", cli_artifacts,
                    "--mips-backend", "alsh",
                    "--shards", "2", "--shard-axis", "vocab",
                ]
            )

    def test_serve_bench_vocab_axis_threshold(self, cli_artifacts, capsys):
        code = main(
            [
                "serve-bench", "--artifacts", cli_artifacts,
                "--requests", "16", "--max-batch", "8",
                "--mips-backend", "threshold",
                "--workers", "2", "--shards", "2", "--shard-axis", "vocab",
            ]
        )
        assert code == 0
        assert "worker pool" in capsys.readouterr().out

    def test_serve_bench_process_mode(self, cli_artifacts, capsys):
        code = main(
            [
                "serve-bench", "--artifacts", cli_artifacts,
                "--requests", "24", "--max-batch", "8",
                "--workers", "2", "--shards", "2",
                "--worker-mode", "process",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worker pool (2 process workers, 2 shards)" in out
        assert "per-route requests: task 1: 24" in out

    def test_serve_bench_process_mode_needs_artifacts(self):
        with pytest.raises(SystemExit, match="artifacts"):
            main(
                [
                    "serve-bench", "--worker-mode", "process",
                    "--tasks", "1", "--n-train", "8", "--n-test", "4",
                    "--epochs", "1",
                ]
            )

    def test_query_quantized_without_snapshot_exits(self, cli_artifacts):
        with pytest.raises(SystemExit, match="quantized"):
            main(["query", "--artifacts", cli_artifacts, "--task", "1", "--quantized"])


class TestArtifactsFlag:
    """Experiment subcommands reuse saved artifacts instead of retraining."""

    def test_table1_from_artifacts(self, cli_artifacts, capsys):
        assert main(["table1", "--artifacts", cli_artifacts]) == 0
        assert "FPGA 100 MHz" in capsys.readouterr().out

    def test_fig3_from_artifacts(self, cli_artifacts, capsys):
        assert main(["fig3", "--artifacts", cli_artifacts]) == 0
        assert "inference thresholding sweep" in capsys.readouterr().out

    def test_fig4_from_artifacts(self, cli_artifacts, capsys):
        assert main(["fig4", "--artifacts", cli_artifacts]) == 0
        assert "per-task energy efficiency" in capsys.readouterr().out

    def test_ablation_from_artifacts(self, cli_artifacts, capsys):
        assert main(["ablation", "--artifacts", cli_artifacts]) == 0
        assert "interface removed" in capsys.readouterr().out

    def test_mips_from_artifacts(self, cli_artifacts, capsys):
        code = main(
            ["mips", "--artifacts", cli_artifacts, "--mips-backend", "threshold"]
        )
        assert code == 0
        assert "threshold" in capsys.readouterr().out

    def test_task_subset_from_artifacts(self, cli_artifacts, capsys):
        assert main(["table1", "--artifacts", cli_artifacts, "--tasks", "1"]) == 0
        capsys.readouterr()

    def test_task_subset_keeps_config_consistent(self, cli_artifacts):
        """A subsetted suite must self-describe only the tasks it holds."""
        import argparse

        from repro.cli import _obtain_suite

        args = argparse.Namespace(artifacts=cli_artifacts, tasks=[1])
        suite = _obtain_suite(args)
        assert suite.task_ids == [1]
        assert suite.config.task_ids == (1,)

    def test_missing_task_in_artifacts_exits(self, cli_artifacts):
        with pytest.raises(SystemExit):
            main(["table1", "--artifacts", cli_artifacts, "--tasks", "2"])


class TestAsyncServing:
    """serve-bench --async and query --deadline-ms (PR 8 front end)."""

    def test_query_with_deadline_reports_attainment(self, cli_artifacts, capsys):
        code = main(
            [
                "query", "--artifacts", cli_artifacts, "--task", "1",
                "--deadline-ms", "5000", "--indices", "0", "1", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "correct" in out
        assert "deadline 5000.0 ms" in out
        assert "3 met / 0 missed" in out
        assert "goodput 100.0%" in out

    def test_serve_bench_async_pass(self, cli_artifacts, capsys):
        code = main(
            [
                "serve-bench", "--artifacts", cli_artifacts,
                "--requests", "32", "--max-batch", "8", "--workers", "2",
                "--shards", "2", "--async", "--deadline-ms", "10000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "async frontend" in out
        assert "goodput" in out  # table column + summary line
        assert "32/32 served, 0 shed, 0 expired" in out
        assert "goodput 100.0%" in out

    def test_serve_bench_async_shed_policy_and_qps(self, cli_artifacts, capsys):
        code = main(
            [
                "serve-bench", "--artifacts", cli_artifacts,
                "--requests", "24", "--max-batch", "8",
                "--async", "--queue-cap", "16", "--overload-policy", "shed",
                "--qps", "2000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cap=16, shed" in out
        assert "served" in out
        # Every line of the shed/expired/goodput columns is rendered.
        assert "shed" in out and "expired" in out
