"""Hypothesis property tests on the MIPS engines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mips import ExactMips, fit_threshold_model
from repro.mips.thresholding import InferenceThresholding


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=2, max_value=30),
    dim=st.integers(min_value=1, max_value=10),
)
def test_exact_matches_numpy_argmax(seed, rows, dim):
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(rows, dim))
    query = rng.normal(size=dim)
    result = ExactMips(weight).search(query)
    assert result.label == int(np.argmax(weight @ query))
    assert result.comparisons == rows


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_ith_never_beats_exact_on_comparisons_upper_bound(seed):
    """ITH visits at most |I| indices and at least 1."""
    rng = np.random.default_rng(seed)
    n, d = 12, 5
    logits = rng.normal(size=(50, n)) + 3 * np.eye(n)[rng.integers(0, n, 50)]
    labels = logits.argmax(axis=1)
    tm = fit_threshold_model(logits, labels)
    weight = rng.normal(size=(n, d))
    engine = InferenceThresholding(weight, tm, rho=1.0)
    for q in rng.normal(size=(20, d)):
        r = engine.search(q)
        assert 1 <= r.comparisons <= n
        assert 0 <= r.label < n


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rho=st.floats(min_value=0.5, max_value=1.0),
)
def test_threshold_model_invariants(seed, rho):
    rng = np.random.default_rng(seed)
    n = 8
    logits = rng.normal(size=(60, n)) + 4 * np.eye(n)[rng.integers(0, n, 60)]
    labels = logits.argmax(axis=1)
    tm = fit_threshold_model(logits, labels)
    theta = tm.thresholds(rho)
    assert theta.shape == (n,)
    # Thresholds are either finite (learnable index) or +inf (unseen).
    assert np.all((theta > -np.inf))
    assert sorted(tm.order.tolist()) == list(range(n))
    assert np.all(tm.silhouettes >= -1.0) and np.all(tm.silhouettes <= 1.0)
