"""Property tests every registered MIPS backend must satisfy.

Three families, per the backend contract:

(a) each backend's labels agree with the brute-force argmax at least as
    often as its documented ``min_recall``;
(b) the exact backend — and the threshold backend whenever it does not
    speculate — are bit-identical to the argmax over the full logit
    matrix (the golden ``forward_trace`` output projection);
(c) ``search_batch`` equals the per-query ``search`` loop elementwise,
    for ragged (arbitrary-size) query sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mips import (
    available_backends,
    build_backend,
    fit_threshold_model,
    get_backend,
)


def _build(name, weight, rng):
    """Construct a backend with a threshold model fitted to the weight's
    own argmax structure (so the 'threshold' backend is well-posed)."""
    train = rng.normal(size=(max(30, 8 * weight.shape[0]), weight.shape[1]))
    logits = train @ weight.T
    model = fit_threshold_model(logits, logits.argmax(axis=1))
    return build_backend(name, weight, threshold_model=model, seed=0)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=2, max_value=30),
    dim=st.integers(min_value=1, max_value=10),
    n_queries=st.integers(min_value=1, max_value=12),
)
def test_batch_equals_per_query_loop(seed, rows, dim, n_queries):
    """(c) stacked batch kernel == scalar search, elementwise."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(rows, dim))
    queries = rng.normal(size=(n_queries, dim))
    for name in available_backends():
        engine = _build(name, weight, rng)
        batch = engine.search_batch(queries)
        assert len(batch) == n_queries
        for i, query in enumerate(queries):
            single = engine.search(query)
            assert single.label == batch.labels[i], name
            assert single.comparisons == batch.comparisons[i], name
            assert single.early_exit == batch.early_exits[i], name
            assert np.isclose(single.logit, batch.logits[i]), name


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=2, max_value=30),
    dim=st.integers(min_value=1, max_value=10),
)
def test_exact_and_threshold_bit_identical_to_argmax(seed, rows, dim):
    """(b) exact always equals the full argmax; threshold does whenever
    it falls back instead of speculating."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(rows, dim))
    queries = rng.normal(size=(8, dim))
    brute = np.argmax(queries @ weight.T, axis=1)

    exact = _build("exact", weight, rng).search_batch(queries)
    assert np.array_equal(exact.labels, brute)
    assert (exact.comparisons == rows).all()
    assert not exact.early_exits.any()

    threshold = _build("threshold", weight, rng).search_batch(queries)
    fallback = ~threshold.early_exits
    assert np.array_equal(threshold.labels[fallback], brute[fallback])
    assert (threshold.comparisons[fallback] == rows).all()
    assert (threshold.comparisons >= 1).all()
    assert (threshold.comparisons <= rows).all()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=2, max_value=25),
    dim=st.integers(min_value=1, max_value=8),
)
def test_every_backend_returns_valid_results(seed, rows, dim):
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(rows, dim))
    queries = rng.normal(size=(5, dim))
    for name in available_backends():
        results = _build(name, weight, rng).search_batch(queries)
        assert ((results.labels >= 0) & (results.labels < rows)).all(), name
        assert (results.comparisons >= 1).all(), name
        # Winning logit really is the winning row's inner product.
        recomputed = np.einsum(
            "bd,bd->b", weight[results.labels], queries
        )
        assert np.allclose(results.logits, recomputed), name


def _ith_reference(engine, query):
    """The seed sequential Step-4 loop, independent of the batched kernel."""
    best_index, best_logit, comparisons = -1, -np.inf, 0
    for index in engine.order:
        logit = float(engine.weight[index] @ query)
        comparisons += 1
        if logit > engine.theta[index]:
            return int(index), logit, comparisons, True
        if logit > best_logit:
            best_logit, best_index = logit, int(index)
    return best_index, best_logit, comparisons, False


def _alsh_reference(engine, query):
    """The seed per-query bucket-union scan."""
    norm = float(np.linalg.norm(query))
    q = query / norm if norm > 0 else query
    augmented = np.concatenate([q, np.full(engine.m_augment, 0.5)])
    union: set[int] = set()
    for t in range(engine.n_tables):
        code = int(engine._hash_codes(augmented[None, :], t)[0])
        union.update(engine._tables[t].get(code, []))
    if not union:
        union = set(range(engine.weight.shape[0]))
    best_index, best_logit, comparisons = -1, -np.inf, 0
    for index in sorted(union):
        logit = float(engine.weight[index] @ query)
        comparisons += 1
        if logit > best_logit:
            best_logit, best_index = logit, index
    return best_index, best_logit, comparisons, False


def _clustering_reference(engine, query):
    """The seed per-query probe-then-scan loop."""
    centroid_scores = engine.centroids @ query
    probe = np.argsort(-centroid_scores)[: engine.n_probe]
    best_index, best_logit = -1, -np.inf
    comparisons = len(centroid_scores)
    for cluster in probe:
        for index in engine.members[cluster]:
            logit = float(engine.weight[index] @ query)
            comparisons += 1
            if logit > best_logit:
                best_logit, best_index = logit, int(index)
    if best_index < 0:
        for index in range(engine.weight.shape[0]):
            logit = float(engine.weight[index] @ query)
            comparisons += 1
            if logit > best_logit:
                best_logit, best_index = logit, index
    return best_index, best_logit, comparisons, False


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=2, max_value=30),
    dim=st.integers(min_value=1, max_value=10),
)
def test_batched_kernels_match_sequential_references(seed, rows, dim):
    """Pin every rewritten kernel against its seed sequential loop —
    an implementation the batched path shares no code with."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(rows, dim))
    queries = rng.normal(size=(6, dim))
    references = {
        "threshold": _ith_reference,
        "alsh": _alsh_reference,
        "clustering": _clustering_reference,
    }
    for name, reference in references.items():
        engine = _build(name, weight, rng)
        batch = engine.search_batch(queries)
        for i, query in enumerate(queries):
            label, logit, comparisons, early = reference(engine, query)
            assert batch.labels[i] == label, name
            assert batch.comparisons[i] == comparisons, name
            assert batch.early_exits[i] == early, name
            assert np.isclose(batch.logits[i], logit), name


class TestDocumentedRecall:
    """(a) agreement with brute force >= each backend's min_recall."""

    @pytest.mark.parametrize("name", ["exact", "threshold", "alsh", "clustering"])
    def test_recall_floor(self, name, rng):
        weight = rng.normal(size=(40, 8))
        queries = rng.normal(size=(80, 8))
        # Fit the threshold model on the weight's own argmax structure
        # (what Algorithm 1 does with trained-model logits).
        train = rng.normal(size=(400, 8))
        logits = train @ weight.T
        model = fit_threshold_model(logits, logits.argmax(axis=1))
        params = {"threshold_model": model, "seed": 0}
        if name == "alsh":
            # The tuned table shape the ALSH recall tests already use.
            params.update(n_tables=12, n_bits=6)
        backend_cls = get_backend(name)
        engine = backend_cls.build(weight, **params)
        brute = np.argmax(queries @ weight.T, axis=1)
        recall = float((engine.search_batch(queries).labels == brute).mean())
        assert recall >= backend_cls.min_recall, (
            f"{name}: recall {recall:.3f} below documented floor "
            f"{backend_cls.min_recall}"
        )
