"""Shard-parallel MIPS execution: exact-parity merging, both axes.

The contract the serving runtime leans on: ``sharded:<inner>`` produces
**bit-identical** ``BatchSearchResult`` arrays to ``<inner>`` — labels,
logits, comparisons and early-exit flags — for every registered
backend, any shard count, and a trained model's real queries. The CI
sharding-parity matrix runs this module once per backend via
``-k <backend>``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.mips import (
    BatchSearchResult,
    ShardPlan,
    ShardedBackend,
    available_backends,
    build_backend,
    fit_threshold_model,
    get_backend,
)


@pytest.fixture(scope="module")
def problem():
    """A vocabulary-scale weight matrix + fitted threshold model."""
    rng = np.random.default_rng(23)
    weight = rng.normal(size=(170, 20))
    queries = rng.normal(size=(97, 20))
    train = rng.normal(size=(1500, 20))
    logits = train @ weight.T
    model = fit_threshold_model(logits, logits.argmax(axis=1))
    return weight, queries, model


def _build_pair(name, weight, model, **shard_kwargs):
    plain = build_backend(name, weight, threshold_model=model, seed=0)
    sharded = get_backend(f"sharded:{name}").build(
        weight, threshold_model=model, seed=0, **shard_kwargs
    )
    return plain, sharded


def _assert_bit_identical(plain: BatchSearchResult, sharded: BatchSearchResult):
    assert np.array_equal(plain.labels, sharded.labels)
    assert np.array_equal(plain.logits, sharded.logits)  # bitwise, not close
    assert np.array_equal(plain.comparisons, sharded.comparisons)
    assert np.array_equal(plain.early_exits, sharded.early_exits)


class StridedPlan(ShardPlan):
    """Non-contiguous partition: shard s takes items s, s+n, s+2n, ..."""

    def partition(self, n_items):
        idx = np.arange(n_items, dtype=np.int64)
        return [idx[s :: self.n_shards] for s in range(self.n_shards)]


class BrokenPlan(ShardPlan):
    """Drops the last item — must be rejected, not silently wrong."""

    def partition(self, n_items):
        idx = np.arange(max(n_items - 1, 0), dtype=np.int64)
        return list(np.array_split(idx, self.n_shards))


class TestRegistry:
    def test_prefix_resolves_every_backend(self):
        for name in available_backends():
            factory = get_backend(f"sharded:{name}")
            assert factory.backend_name == f"sharded:{name}"
            assert issubclass(factory, ShardedBackend)

    def test_factory_mirrors_introspection(self):
        assert get_backend("sharded:threshold").requires_threshold_model
        assert get_backend("sharded:exact").min_recall == 1.0
        assert get_backend("sharded:alsh").min_recall < 1.0

    def test_inner_aliases_resolve(self):
        assert (
            get_backend("sharded:ith") is get_backend("sharded:threshold")
        )

    def test_unknown_inner_rejected(self):
        with pytest.raises(KeyError, match="unknown MIPS backend"):
            get_backend("sharded:nope")

    def test_nesting_rejected(self):
        with pytest.raises(KeyError, match="nested"):
            get_backend("sharded:sharded:exact")

    def test_available_backends_unchanged(self):
        assert available_backends() == (
            "alsh",
            "clustering",
            "exact",
            "threshold",
        )


class TestShardPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlan(n_shards=0)
        with pytest.raises(ValueError, match="axis"):
            ShardPlan(axis="embed")
        with pytest.raises(ValueError, match="merge"):
            ShardPlan(merge="sum")

    def test_merge_rules_are_axis_bound(self):
        assert ShardPlan(axis="batch").resolved_merge == "concat"
        assert ShardPlan(axis="vocab").resolved_merge == "running-max"
        with pytest.raises(ValueError, match="concat"):
            ShardPlan(axis="batch", merge="running-max")
        with pytest.raises(ValueError, match="running-max"):
            ShardPlan(axis="vocab", merge="concat")

    def test_partition_covers_everything_contiguously(self):
        parts = ShardPlan(n_shards=4).partition(10)
        assert len(parts) == 4
        assert np.array_equal(np.concatenate(parts), np.arange(10))

    def test_partition_with_scarce_items_leaves_empty_shards(self):
        parts = ShardPlan(n_shards=5).partition(2)
        assert sum(len(p) for p in parts) == 2
        assert len(parts) == 5


class TestBatchAxisParity:
    @pytest.mark.parametrize("name", ["alsh", "clustering", "exact", "threshold"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 96, 200])
    def test_bit_identical_to_inner(self, problem, name, n_shards):
        weight, queries, model = problem
        plain, sharded = _build_pair(
            name, weight, model, n_shards=n_shards, shard_axis="batch"
        )
        _assert_bit_identical(
            plain.search_batch(queries), sharded.search_batch(queries)
        )

    @pytest.mark.parametrize("name", ["alsh", "clustering", "exact", "threshold"])
    def test_single_query_matrix(self, problem, name):
        weight, queries, model = problem
        plain, sharded = _build_pair(name, weight, model, n_shards=4)
        _assert_bit_identical(
            plain.search_batch(queries[:1]), sharded.search_batch(queries[:1])
        )

    def test_scalar_search_parity(self, problem):
        weight, queries, model = problem
        for name in available_backends():
            plain, sharded = _build_pair(name, weight, model, n_shards=3)
            assert sharded.search(queries[0]) == plain.search_batch(
                queries[:1]
            ).result(0), name

    def test_shard_stats_populated(self, problem):
        weight, queries, model = problem
        _, sharded = _build_pair("exact", weight, model, n_shards=4)
        result = sharded.search_batch(queries)
        stats = result.shards
        assert stats is not None and stats.axis == "batch"
        assert stats.n_shards == 4
        assert int(stats.sizes.sum()) == len(queries)
        assert int(stats.comparisons.sum()) == int(result.comparisons.sum())

    def test_plain_backends_leave_shards_none(self, problem):
        weight, queries, model = problem
        assert build_backend("exact", weight).search_batch(queries).shards is None

    @pytest.mark.parametrize("name", ["alsh", "clustering", "exact", "threshold"])
    def test_non_contiguous_plan_parity(self, problem, name):
        """A partition override assigning interleaved query subsets:
        results must scatter back to submission positions bit-exactly
        (the old code sliced queries[p[0]:p[-1]+1], silently assuming
        contiguous runs)."""
        weight, queries, model = problem
        plain = build_backend(name, weight, threshold_model=model, seed=0)
        sharded = ShardedBackend(
            weight,
            name,
            StridedPlan(n_shards=3, axis="batch"),
            threshold_model=model,
            seed=0,
        )
        _assert_bit_identical(
            plain.search_batch(queries), sharded.search_batch(queries)
        )

    def test_non_covering_plan_rejected(self, problem):
        weight, queries, _ = problem
        sharded = ShardedBackend(weight, "exact", BrokenPlan(n_shards=2))
        with pytest.raises(ValueError, match="exactly one shard"):
            sharded.search_batch(queries)


class TestVocabAxisParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 64, 300])
    def test_exact_bit_identical(self, problem, n_shards):
        weight, queries, model = problem
        plain, sharded = _build_pair(
            "exact", weight, model, n_shards=n_shards, shard_axis="vocab"
        )
        _assert_bit_identical(
            plain.search_batch(queries), sharded.search_batch(queries)
        )

    def test_respects_custom_scan_order(self, problem):
        weight, queries, _ = problem
        order = np.random.default_rng(5).permutation(weight.shape[0])
        plain = get_backend("exact").build(weight, order)
        sharded = get_backend("sharded:exact").build(
            weight, order, n_shards=3, shard_axis="vocab"
        )
        _assert_bit_identical(
            plain.search_batch(queries), sharded.search_batch(queries)
        )

    def test_tie_break_matches_sequential_scan(self):
        """Duplicated rows straddling a shard boundary: first in scan
        order must win, exactly like the strict > running maximum."""
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(8, 4))
        weight[6] = weight[1]  # bitwise-identical rows in different shards
        queries = rng.normal(size=(16, 4))
        plain = get_backend("exact").build(weight)
        sharded = get_backend("sharded:exact").build(
            weight, n_shards=2, shard_axis="vocab"
        )
        _assert_bit_identical(
            plain.search_batch(queries), sharded.search_batch(queries)
        )

    @pytest.mark.parametrize("name", ["alsh", "clustering"])
    def test_non_exhaustive_backends_rejected(self, problem, name):
        weight, _, model = problem
        with pytest.raises(ValueError, match="exhaustive"):
            get_backend(f"sharded:{name}").build(
                weight, threshold_model=model, n_shards=2, shard_axis="vocab"
            )

    def test_all_masked_rows_fall_back_to_first_in_scan_order(self):
        """Every shard score -inf: the merge must return the first
        candidate in scan order (like the unsharded first-occurrence
        argmax), not the -1/-inf sentinel."""
        weight = np.ones((8, 4))
        queries = np.full((5, 4), -np.inf)  # every inner product is -inf
        plain = get_backend("exact").build(weight)
        sharded = get_backend("sharded:exact").build(
            weight, n_shards=3, shard_axis="vocab"
        )
        expected = plain.search_batch(queries)
        assert np.array_equal(expected.labels, np.zeros(5, dtype=np.int64))
        _assert_bit_identical(expected, sharded.search_batch(queries))

    def test_all_masked_rows_with_custom_order(self):
        weight = np.ones((9, 3))
        queries = np.full((4, 3), -np.inf)
        order = np.random.default_rng(11).permutation(9)
        plain = get_backend("exact").build(weight, order)
        sharded = get_backend("sharded:exact").build(
            weight, order, n_shards=4, shard_axis="vocab"
        )
        expected = plain.search_batch(queries)
        assert np.array_equal(expected.labels, np.full(4, order[0]))
        _assert_bit_identical(expected, sharded.search_batch(queries))

    def test_non_contiguous_vocab_partition_rejected(self, problem):
        weight, _, model = problem
        with pytest.raises(ValueError, match="contiguous"):
            ShardedBackend(weight, "exact", StridedPlan(n_shards=3, axis="vocab"))

    def test_vocab_shard_stats(self, problem):
        weight, queries, model = problem
        _, sharded = _build_pair(
            "exact", weight, model, n_shards=4, shard_axis="vocab"
        )
        stats = sharded.search_batch(queries).shards
        assert stats.axis == "vocab"
        assert int(stats.sizes.sum()) == weight.shape[0]


class TestVocabAxisThreshold:
    """The speculative scan shards on the vocab axis too: per-shard
    clearing positions merge to the unsharded Step-4 kernel exactly —
    labels, logits, comparison counts and early-exit flags."""

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 64, 300])
    def test_bit_identical_to_inner(self, problem, n_shards):
        weight, queries, model = problem
        plain, sharded = _build_pair(
            "threshold", weight, model, n_shards=n_shards, shard_axis="vocab"
        )
        result = plain.search_batch(queries)
        _assert_bit_identical(result, sharded.search_batch(queries))

    @pytest.mark.parametrize("rho", [1.0, 0.9, 0.5])
    def test_parity_across_rho(self, problem, rho):
        """Different rho values move the speculation rate; the merge
        must track the clearing positions at every setting."""
        weight, queries, model = problem
        plain = build_backend("threshold", weight, threshold_model=model, rho=rho)
        sharded = get_backend("sharded:threshold").build(
            weight, threshold_model=model, rho=rho, n_shards=4, shard_axis="vocab"
        )
        expected = plain.search_batch(queries)
        _assert_bit_identical(expected, sharded.search_batch(queries))

    def test_speculation_actually_exercised(self, problem):
        """Guard the fixture: the parity matrix must cover both the
        speculative and the fallback path."""
        weight, queries, model = problem
        plain = build_backend("threshold", weight, threshold_model=model)
        result = plain.search_batch(queries)
        assert result.early_exits.any()

    def test_without_index_ordering(self, problem):
        weight, queries, model = problem
        plain = build_backend(
            "threshold", weight, threshold_model=model, index_ordering=False
        )
        sharded = get_backend("sharded:threshold").build(
            weight,
            threshold_model=model,
            index_ordering=False,
            n_shards=3,
            shard_axis="vocab",
        )
        _assert_bit_identical(
            plain.search_batch(queries), sharded.search_batch(queries)
        )

    def test_shard_comparisons_sum_to_merged_total(self, problem):
        weight, queries, model = problem
        _, sharded = _build_pair(
            "threshold", weight, model, n_shards=4, shard_axis="vocab"
        )
        result = sharded.search_batch(queries)
        stats = result.shards
        assert stats is not None and stats.axis == "vocab"
        assert int(stats.sizes.sum()) == weight.shape[0]
        assert int(stats.comparisons.sum()) == int(result.comparisons.sum())
        assert int(stats.early_exits.sum()) == int(result.early_exits.sum())

    def test_concurrent_executor_parity(self, problem):
        weight, queries, model = problem
        sequential = get_backend("sharded:threshold").build(
            weight, threshold_model=model, n_shards=4, shard_axis="vocab"
        )
        with ThreadPoolExecutor(max_workers=4) as pool:
            concurrent = get_backend("sharded:threshold").build(
                weight,
                threshold_model=model,
                n_shards=4,
                shard_axis="vocab",
                executor=pool,
            )
            _assert_bit_identical(
                sequential.search_batch(queries),
                concurrent.search_batch(queries),
            )


class TestExecutor:
    def test_concurrent_shards_match_sequential(self, problem):
        weight, queries, model = problem
        sequential = get_backend("sharded:threshold").build(
            weight, threshold_model=model, n_shards=4
        )
        with ThreadPoolExecutor(max_workers=4) as pool:
            concurrent = get_backend("sharded:threshold").build(
                weight, threshold_model=model, n_shards=4, executor=pool
            )
            _assert_bit_identical(
                sequential.search_batch(queries),
                concurrent.search_batch(queries),
            )


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def system(self, small_suite):
        return small_suite.tasks[1]

    @pytest.mark.parametrize("name", ["alsh", "clustering", "exact", "threshold"])
    def test_trained_model_parity(self, system, name):
        """A real trained system: sharded engine == plain engine on the
        whole test set, through BatchInferenceEngine."""
        batch = system.test_batch
        args = (batch.stories, batch.questions, batch.story_lengths)
        plain = system.batch_engine_with(name).search(*args)
        sharded = system.batch_engine_with(
            f"sharded:{name}", n_shards=4
        ).search(*args)
        _assert_bit_identical(plain, sharded)

    def test_trace_surfaces_shard_stats(self, system):
        batch = system.test_batch
        engine = system.batch_engine_with("sharded:threshold", n_shards=3)
        trace = engine.forward_trace(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert trace.search is not None
        assert trace.search.shards is not None
        assert trace.search.shards.n_shards == 3
        assert int(trace.search.shards.sizes.sum()) == len(batch)
