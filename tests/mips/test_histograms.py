"""Tests for histogram and KDE density estimators."""

import numpy as np
import pytest

from repro.mips import GaussianKde, LogitHistogram


class TestLogitHistogram:
    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            LogitHistogram(1.0, 1.0)
        with pytest.raises(ValueError):
            LogitHistogram(0.0, float("inf"))

    def test_min_bins(self):
        with pytest.raises(ValueError):
            LogitHistogram(0.0, 1.0, n_bins=1)

    def test_update_and_total(self):
        h = LogitHistogram(0.0, 10.0, n_bins=10)
        h.update(2.5)
        h.update(2.6)
        h.update(9.9)
        assert h.total == 3
        assert h.counts[2] == 2

    def test_out_of_range_clamped_to_edges(self):
        h = LogitHistogram(0.0, 1.0, n_bins=4)
        h.update(-5.0)
        h.update(5.0)
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        assert h.total == 2

    def test_pdf_integrates_to_one(self, rng):
        h = LogitHistogram(-4.0, 4.0, n_bins=32)
        h.update_many(rng.normal(size=500))
        width = h.edges[1] - h.edges[0]
        mass = sum(h.pdf(c) * width for c in h.bin_centers())
        assert np.isclose(mass, 1.0)

    def test_pdf_empty_is_zero(self):
        assert LogitHistogram(0.0, 1.0).pdf(0.5) == 0.0

    def test_mean_estimate(self, rng):
        h = LogitHistogram(-6.0, 6.0, n_bins=64)
        h.update_many(rng.normal(loc=1.5, size=2000))
        assert abs(h.mean() - 1.5) < 0.15

    def test_mean_empty_is_nan(self):
        assert np.isnan(LogitHistogram(0.0, 1.0).mean())

    def test_bin_index_monotone(self):
        h = LogitHistogram(0.0, 1.0, n_bins=10)
        idx = [h.bin_index(v) for v in np.linspace(0.01, 0.99, 20)]
        assert idx == sorted(idx)


class TestGaussianKde:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GaussianKde(np.array([]))

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            GaussianKde(np.array([1.0]), bandwidth=-1.0)

    def test_pdf_peaks_at_data(self, rng):
        samples = rng.normal(size=400)
        kde = GaussianKde(samples)
        assert kde.pdf(0.0) > kde.pdf(4.0)

    def test_pdf_integrates_to_one(self, rng):
        kde = GaussianKde(rng.normal(size=200))
        grid = np.linspace(-8, 8, 2001)
        mass = np.trapezoid(kde.pdf(grid), grid)
        assert np.isclose(mass, 1.0, atol=1e-3)

    def test_scalar_and_vector_modes(self):
        kde = GaussianKde(np.array([0.0, 1.0]))
        scalar = kde.pdf(0.5)
        vector = kde.pdf(np.array([0.5]))
        assert isinstance(scalar, float)
        assert np.isclose(vector[0], scalar)

    def test_degenerate_data_fallback_bandwidth(self):
        kde = GaussianKde(np.array([2.0, 2.0, 2.0]))
        assert kde.bandwidth > 0
        assert kde.pdf(2.0) > kde.pdf(3.0)
