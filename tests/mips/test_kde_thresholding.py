"""Tests for the KDE-backed threshold model variant."""

import numpy as np
import pytest

from repro.mips import ExactMips, InferenceThresholding, fit_threshold_model


@pytest.fixture(scope="module")
def kde_model(task1_system):
    return fit_threshold_model(
        task1_system["train_logits"],
        task1_system["train_batch"].answers,
        density="kde",
    )


class TestKdeThresholdModel:
    def test_unknown_density_rejected(self, task1_system):
        with pytest.raises(ValueError):
            fit_threshold_model(
                task1_system["train_logits"],
                task1_system["train_batch"].answers,
                density="splines",
            )

    def test_uses_kde_flag(self, kde_model, task1_system):
        assert kde_model.uses_kde
        assert not task1_system["threshold_model"].uses_kde

    def test_posteriors_in_unit_interval(self, kde_model):
        for index in list(kde_model.positive_kdes)[:5]:
            for value in np.linspace(-5, 10, 9):
                assert 0.0 <= kde_model.posterior(index, float(value)) <= 1.0

    def test_posterior_increases_into_positive_region(self, kde_model):
        """Deep in the argmax mixture the posterior must be higher."""
        index = max(
            kde_model.positive_kdes,
            key=lambda i: kde_model.positive_kdes[i].samples.size,
        )
        samples = kde_model.positive_kdes[index].samples
        high = float(np.quantile(samples, 0.9))
        neg = kde_model.negative_kdes.get(index)
        low = float(np.quantile(neg.samples, 0.1)) if neg is not None else high - 5
        assert kde_model.posterior(index, high) >= kde_model.posterior(index, low)

    def test_kde_engine_agrees_with_exact(self, kde_model, task1_system):
        w = task1_system["weights"].w_o
        engine = InferenceThresholding(w, kde_model, rho=0.95)
        exact = ExactMips(w)
        batch = task1_system["test_batch"]
        agree = 0
        total = 30
        for i in range(total):
            h = task1_system["engine"].forward_trace(
                batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
            ).h_final
            agree += int(engine.search(h).label == exact.search(h).label)
        assert agree / total > 0.85

    def test_kde_thresholds_monotone_in_rho(self, kde_model):
        theta_99 = kde_model.thresholds(0.99)
        theta_90 = kde_model.thresholds(0.90)
        assert (theta_90 <= theta_99 + 1e-12).all()

    def test_shares_ordering_with_histogram_fit(self, kde_model, task1_system):
        """Step 3 ordering is estimator-independent (raw samples)."""
        assert np.array_equal(
            kde_model.order, task1_system["threshold_model"].order
        )
