"""Tests for the MIPS backend registry and the stacked batch result."""

import numpy as np
import pytest

from repro.mips import (
    AlshMips,
    BatchSearchResult,
    ClusteringMips,
    ExactMips,
    InferenceThresholding,
    MipsBackend,
    SearchResult,
    SearchStats,
    available_backends,
    build_backend,
    fit_threshold_model,
    get_backend,
    register_backend,
)


@pytest.fixture()
def threshold_model(rng):
    weight = rng.normal(size=(12, 6))
    train = rng.normal(size=(200, 6))
    logits = train @ weight.T
    return weight, fit_threshold_model(logits, logits.argmax(axis=1))


class TestRegistry:
    def test_all_four_engines_registered(self):
        assert available_backends() == ("alsh", "clustering", "exact", "threshold")
        assert get_backend("exact") is ExactMips
        assert get_backend("threshold") is InferenceThresholding
        assert get_backend("alsh") is AlshMips
        assert get_backend("clustering") is ClusteringMips

    def test_aliases_and_case_insensitivity(self):
        assert get_backend("ith") is InferenceThresholding
        assert get_backend("inference_thresholding") is InferenceThresholding
        assert get_backend("lsh") is AlshMips
        assert get_backend("kmeans") is ClusteringMips
        assert get_backend(" EXACT ") is ExactMips

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="exact"):
            get_backend("no-such-backend")

    def test_non_string_name_rejected(self):
        with pytest.raises(TypeError):
            get_backend(3)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("exact")(type("Fake", (), {}))

    def test_backend_name_attribute(self):
        assert ExactMips.backend_name == "exact"
        assert InferenceThresholding.backend_name == "threshold"

    def test_instances_satisfy_protocol(self, rng, threshold_model):
        weight, tm = threshold_model
        engines = [
            build_backend("exact", weight),
            build_backend("threshold", weight, threshold_model=tm),
            build_backend("alsh", weight, seed=0),
            build_backend("clustering", weight, seed=0),
        ]
        for engine in engines:
            assert isinstance(engine, MipsBackend)


class TestBuild:
    def test_exact_build_respects_order(self, rng):
        weight = rng.normal(size=(9, 4))
        order = rng.permutation(9)
        engine = get_backend("exact").build(weight, order)
        assert np.array_equal(engine.order, order)

    def test_threshold_build_requires_model(self, rng):
        with pytest.raises(ValueError, match="ThresholdModel"):
            get_backend("threshold").build(rng.normal(size=(5, 3)))

    def test_threshold_build_passes_rho_and_ordering(self, threshold_model):
        weight, tm = threshold_model
        engine = get_backend("threshold").build(
            weight, threshold_model=tm, rho=0.9, index_ordering=False
        )
        assert engine.rho == 0.9
        assert np.array_equal(engine.order, np.arange(tm.n_indices))

    def test_alsh_build_forwards_params(self, rng):
        engine = get_backend("alsh").build(
            rng.normal(size=(20, 5)), n_tables=3, n_bits=4, seed=9
        )
        assert engine.n_tables == 3
        assert engine.n_bits == 4

    def test_clustering_build_forwards_params(self, rng):
        engine = get_backend("clustering").build(
            rng.normal(size=(20, 5)), n_clusters=4, n_probe=3, seed=1
        )
        assert engine.n_clusters == 4
        assert engine.n_probe == 3

    def test_builders_accept_unused_threshold_context(self, rng, threshold_model):
        weight, tm = threshold_model
        # Every backend accepts the full keyword surface so one call
        # site can construct any of them.
        for name in available_backends():
            engine = build_backend(
                name, weight, threshold_model=tm, rho=1.0, index_ordering=True, seed=0
            )
            assert engine.num_indices == weight.shape[0]


class TestBatchSearchResult:
    def test_field_validation(self):
        with pytest.raises(ValueError):
            BatchSearchResult(
                labels=np.zeros(3, dtype=np.int64),
                logits=np.zeros(2),
                comparisons=np.zeros(3, dtype=np.int64),
                early_exits=np.zeros(3, dtype=bool),
            )

    def test_scalar_access_and_aggregates(self):
        res = BatchSearchResult(
            labels=[3, 1],
            logits=[0.5, -1.0],
            comparisons=[10, 4],
            early_exits=[False, True],
        )
        assert len(res) == 2
        assert res.result(1) == SearchResult(1, -1.0, 4, True)
        assert res.mean_comparisons == 7.0
        assert res.early_exit_rate == 0.5
        assert res.accuracy(np.array([3, 2])) == 0.5
        assert res.to_list() == [
            SearchResult(3, 0.5, 10, False),
            SearchResult(1, -1.0, 4, True),
        ]

    def test_from_results_round_trip(self):
        originals = [SearchResult(2, 1.5, 7, False), SearchResult(0, 0.25, 1, True)]
        assert BatchSearchResult.from_results(originals).to_list() == originals

    def test_list_shim_removed(self, rng):
        """The deprecated list-of-SearchResult shims are gone: stacked
        arrays (or the explicit to_list()) are the only shapes."""
        results = ExactMips(rng.normal(size=(6, 3))).search_batch(
            rng.normal(size=(4, 3))
        )
        with pytest.raises(TypeError):
            iter(results)
        with pytest.raises(TypeError):
            results[0]

    def test_to_list_matches_stacked_arrays(self, rng):
        """Explicit scalar materialisation reproduces the arrays exactly."""
        results = ExactMips(rng.normal(size=(6, 3))).search_batch(
            rng.normal(size=(5, 3))
        )
        scalars = results.to_list()
        assert len(scalars) == len(results) == 5
        for i, scalar in enumerate(scalars):
            assert scalar == results.result(i)
            assert scalar.label == int(results.labels[i])
            assert scalar.logit == float(results.logits[i])
            assert scalar.comparisons == int(results.comparisons[i])
            assert scalar.early_exit == bool(results.early_exits[i])

    def test_scan_candidates_empty_row_keeps_sentinel(self, rng):
        from repro.mips.backend import scan_candidates

        weight = rng.normal(size=(6, 3))
        queries = rng.normal(size=(2, 3))
        results = scan_candidates(
            weight,
            queries,
            [np.array([2, 4], dtype=np.int64), np.array([], dtype=np.int64)],
        )
        assert results.labels[0] in (2, 4)
        assert results.labels[1] == -1  # no candidates: -1, not index 0
        assert results.logits[1] == -np.inf
        assert results.comparisons.tolist() == [2, 0]

    def test_record_batch_matches_scalar_records(self, rng):
        engine = ExactMips(rng.normal(size=(8, 4)))
        queries = rng.normal(size=(6, 4))
        answers = rng.integers(0, 8, size=6)
        results = engine.search_batch(queries)

        batched = SearchStats()
        batched.record_batch(results, answers)
        scalar = SearchStats()
        for i, result in enumerate(results.to_list()):
            scalar.record(result, int(answers[i]))
        assert batched == scalar
