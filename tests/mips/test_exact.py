"""Tests for the exact sequential MIPS engine."""

import numpy as np
import pytest

from repro.mips import ExactMips


class TestExactMips:
    def test_finds_argmax(self, rng):
        weight = rng.normal(size=(12, 6))
        query = rng.normal(size=6)
        result = ExactMips(weight).search(query)
        assert result.label == int(np.argmax(weight @ query))
        assert np.isclose(result.logit, (weight @ query).max())

    def test_counts_all_comparisons(self, rng):
        weight = rng.normal(size=(9, 4))
        result = ExactMips(weight).search(rng.normal(size=4))
        assert result.comparisons == 9
        assert not result.early_exit

    def test_custom_order_same_result(self, rng):
        weight = rng.normal(size=(8, 4))
        query = rng.normal(size=4)
        order = rng.permutation(8)
        plain = ExactMips(weight).search(query)
        permuted = ExactMips(weight, order=order).search(query)
        assert plain.label == permuted.label

    def test_invalid_order_rejected(self, rng):
        weight = rng.normal(size=(5, 3))
        with pytest.raises(ValueError):
            ExactMips(weight, order=np.array([0, 1, 2, 3, 3]))

    def test_one_dim_weight_rejected(self):
        with pytest.raises(ValueError):
            ExactMips(np.zeros(5))

    def test_search_batch(self, rng):
        weight = rng.normal(size=(7, 3))
        queries = rng.normal(size=(4, 3))
        results = ExactMips(weight).search_batch(queries)
        assert len(results) == 4
        expected = np.argmax(queries @ weight.T, axis=1)
        assert results.labels.tolist() == expected.tolist()
        assert (results.comparisons == 7).all()
        assert not results.early_exits.any()

    def test_num_indices(self, rng):
        assert ExactMips(rng.normal(size=(11, 2))).num_indices == 11


class TestVectorizedScanRegression:
    """Pin the vectorized scan against the seed per-row Python loop."""

    def test_search_matches_reference_loop(self, rng):
        weight = rng.normal(size=(23, 7))
        engine = ExactMips(weight, order=rng.permutation(23))
        for query in rng.normal(size=(40, 7)):
            fast = engine.search(query)
            slow = engine._search_loop(query)
            assert fast.label == slow.label
            assert fast.comparisons == slow.comparisons
            assert fast.early_exit == slow.early_exit
            assert np.isclose(fast.logit, slow.logit)

    def test_tie_breaking_first_in_order_wins(self, rng):
        """Duplicated rows create exact logit ties; the winner must be
        the first index visited in ``order``, as with the strict-> loop."""
        weight = rng.normal(size=(10, 4))
        weight[7] = weight[3]  # bitwise-identical rows: exact logit tie
        # A query aligned with the tied pair makes it the global maximum.
        query = weight[3] * 10.0
        for order in (
            np.arange(10),  # 3 first
            np.concatenate([[7], np.delete(np.arange(10), 7)]),  # 7 first
            rng.permutation(10),
        ):
            engine = ExactMips(weight, order=order)
            fast = engine.search(query)
            slow = engine._search_loop(query)
            assert fast.label == slow.label
            # And the winner is whichever tied index appears first.
            tied_first = order[np.isin(order, (3, 7))][0]
            assert fast.label == tied_first

    def test_search_batch_matches_reference_loop(self, rng):
        weight = rng.normal(size=(15, 5))
        order = rng.permutation(15)
        engine = ExactMips(weight, order=order)
        queries = rng.normal(size=(30, 5))
        batch = engine.search_batch(queries)
        for i, query in enumerate(queries):
            slow = engine._search_loop(query)
            assert batch.labels[i] == slow.label
            assert batch.comparisons[i] == slow.comparisons
            assert np.isclose(batch.logits[i], slow.logit)
