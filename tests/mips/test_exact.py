"""Tests for the exact sequential MIPS engine."""

import numpy as np
import pytest

from repro.mips import ExactMips


class TestExactMips:
    def test_finds_argmax(self, rng):
        weight = rng.normal(size=(12, 6))
        query = rng.normal(size=6)
        result = ExactMips(weight).search(query)
        assert result.label == int(np.argmax(weight @ query))
        assert np.isclose(result.logit, (weight @ query).max())

    def test_counts_all_comparisons(self, rng):
        weight = rng.normal(size=(9, 4))
        result = ExactMips(weight).search(rng.normal(size=4))
        assert result.comparisons == 9
        assert not result.early_exit

    def test_custom_order_same_result(self, rng):
        weight = rng.normal(size=(8, 4))
        query = rng.normal(size=4)
        order = rng.permutation(8)
        plain = ExactMips(weight).search(query)
        permuted = ExactMips(weight, order=order).search(query)
        assert plain.label == permuted.label

    def test_invalid_order_rejected(self, rng):
        weight = rng.normal(size=(5, 3))
        with pytest.raises(ValueError):
            ExactMips(weight, order=np.array([0, 1, 2, 3, 3]))

    def test_one_dim_weight_rejected(self):
        with pytest.raises(ValueError):
            ExactMips(np.zeros(5))

    def test_search_batch(self, rng):
        weight = rng.normal(size=(7, 3))
        queries = rng.normal(size=(4, 3))
        results = ExactMips(weight).search_batch(queries)
        assert len(results) == 4
        expected = np.argmax(queries @ weight.T, axis=1)
        assert [r.label for r in results] == expected.tolist()

    def test_num_indices(self, rng):
        assert ExactMips(rng.normal(size=(11, 2))).num_indices == 11
