"""Tests for silhouette-based index ordering."""

import numpy as np
import pytest

from repro.mips import index_order_by_silhouette, silhouette_coefficient


class TestSilhouetteCoefficient:
    def test_separated_clusters_score_high(self, rng):
        pos = rng.normal(loc=10.0, scale=0.2, size=50)
        neg = rng.normal(loc=0.0, scale=0.2, size=200)
        assert silhouette_coefficient(pos, neg) > 0.9

    def test_overlapping_clusters_score_low(self, rng):
        pos = rng.normal(size=50)
        neg = rng.normal(size=200)
        assert silhouette_coefficient(pos, neg) < 0.3

    def test_empty_cluster_scores_zero(self):
        assert silhouette_coefficient(np.array([]), np.array([1.0])) == 0.0
        assert silhouette_coefficient(np.array([1.0]), np.array([])) == 0.0

    def test_singleton_positive(self):
        score = silhouette_coefficient(np.array([5.0]), np.array([0.0, 0.1]))
        assert 0.0 < score <= 1.0

    def test_more_separation_scores_higher(self, rng):
        neg = rng.normal(size=100)
        near = rng.normal(loc=1.0, scale=0.5, size=40)
        far = rng.normal(loc=6.0, scale=0.5, size=40)
        assert silhouette_coefficient(far, neg) > silhouette_coefficient(near, neg)

    def test_subsampling_stable(self, rng):
        pos = rng.normal(loc=4.0, size=5000)
        neg = rng.normal(size=5000)
        a = silhouette_coefficient(pos, neg, max_samples=128, seed=0)
        b = silhouette_coefficient(pos, neg, max_samples=512, seed=1)
        assert abs(a - b) < 0.1

    def test_matches_bruteforce_definition(self, rng):
        pos = rng.normal(loc=2.0, size=8)
        neg = rng.normal(size=11)
        fast = silhouette_coefficient(pos, neg)
        scores = []
        for value in pos:
            others = pos[pos != value]
            a = np.abs(others - value).mean() if len(others) else 0.0
            b = np.abs(neg - value).mean()
            scores.append((b - a) / max(a, b))
        assert np.isclose(fast, np.mean(scores), atol=1e-9)


class TestIndexOrder:
    def test_descending(self):
        order = index_order_by_silhouette(np.array([0.1, 0.9, 0.5]))
        assert order.tolist() == [1, 2, 0]

    def test_ascending_option(self):
        order = index_order_by_silhouette(
            np.array([0.1, 0.9, 0.5]), descending=False
        )
        assert order.tolist() == [0, 2, 1]

    def test_stable_for_ties(self):
        order = index_order_by_silhouette(np.array([0.5, 0.5, 0.5]))
        assert order.tolist() == [0, 1, 2]

    def test_permutation_property(self, rng):
        s = rng.random(20)
        order = index_order_by_silhouette(s)
        assert sorted(order.tolist()) == list(range(20))
