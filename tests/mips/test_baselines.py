"""Tests for the ALSH and clustering MIPS baselines."""

import numpy as np
import pytest

from repro.mips import AlshMips, ClusteringMips, ExactMips


@pytest.fixture()
def database(rng):
    return rng.normal(size=(40, 8))


class TestAlsh:
    def test_returns_valid_index(self, database, rng):
        engine = AlshMips(database, seed=0)
        result = engine.search(rng.normal(size=8))
        assert 0 <= result.label < 40

    def test_reasonable_recall(self, database, rng):
        engine = AlshMips(database, n_tables=12, n_bits=6, seed=0)
        exact = ExactMips(database)
        queries = rng.normal(size=(60, 8))
        hits = np.mean(
            [engine.search(q).label == exact.search(q).label for q in queries]
        )
        assert hits > 0.5

    def test_fewer_comparisons_than_exact_sometimes(self, database, rng):
        engine = AlshMips(database, n_tables=4, n_bits=10, seed=0)
        comparisons = [
            engine.search(q).comparisons for q in rng.normal(size=(40, 8))
        ]
        assert min(comparisons) < 40

    def test_deterministic(self, database, rng):
        q = rng.normal(size=8)
        a = AlshMips(database, seed=3).search(q)
        b = AlshMips(database, seed=3).search(q)
        assert a.label == b.label

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            AlshMips(np.zeros(5))

    def test_search_batch(self, database, rng):
        results = AlshMips(database, seed=0).search_batch(rng.normal(size=(5, 8)))
        assert len(results) == 5


class TestClustering:
    def test_returns_valid_index(self, database, rng):
        result = ClusteringMips(database, seed=0).search(rng.normal(size=8))
        assert 0 <= result.label < 40

    def test_probe_all_equals_exact(self, database, rng):
        engine = ClusteringMips(database, n_clusters=4, n_probe=4, seed=0)
        exact = ExactMips(database)
        for q in rng.normal(size=(30, 8)):
            assert engine.search(q).label == exact.search(q).label

    def test_good_recall_with_partial_probe(self, database, rng):
        engine = ClusteringMips(database, n_clusters=8, n_probe=3, seed=0)
        exact = ExactMips(database)
        queries = rng.normal(size=(60, 8))
        hits = np.mean(
            [engine.search(q).label == exact.search(q).label for q in queries]
        )
        assert hits > 0.6

    def test_clusters_capped_at_rows(self, rng):
        small = rng.normal(size=(3, 4))
        engine = ClusteringMips(small, n_clusters=10, n_probe=10)
        assert engine.n_clusters == 3

    def test_all_rows_assigned(self, database):
        engine = ClusteringMips(database, n_clusters=6, seed=0)
        members = np.concatenate(engine.members)
        assert sorted(members.tolist()) == list(range(40))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ClusteringMips(np.zeros(5))

    def test_comparisons_include_centroid_scan(self, database, rng):
        engine = ClusteringMips(database, n_clusters=5, n_probe=1, seed=0)
        result = engine.search(rng.normal(size=8))
        assert result.comparisons >= 5  # at least the centroid dots
