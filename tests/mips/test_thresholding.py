"""Tests for inference thresholding (Algorithm 1)."""

import numpy as np
import pytest

from repro.mips import (
    ExactMips,
    InferenceThresholding,
    fit_threshold_model,
)


def _queries(system):
    batch = system["test_batch"]
    engine = system["engine"]
    return np.stack(
        [
            engine.forward_trace(
                batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
            ).h_final
            for i in range(len(batch))
        ]
    )


class TestFitThresholdModel:
    def test_shapes_validated(self, rng):
        with pytest.raises(ValueError):
            fit_threshold_model(rng.normal(size=(4,)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            fit_threshold_model(rng.normal(size=(4, 3)), np.zeros(5, dtype=int))

    def test_labels_outside_logit_columns_rejected(self, rng):
        logits = rng.normal(size=(4, 3))
        with pytest.raises(ValueError):
            fit_threshold_model(logits, np.array([0, 1, 2, 3]))
        with pytest.raises(ValueError):
            fit_threshold_model(logits, np.array([0, -1, 2, 1]))

    def test_priors_sum_to_one(self, task1_system):
        tm = task1_system["threshold_model"]
        assert np.isclose(tm.priors.sum(), 1.0)

    def test_order_is_permutation(self, task1_system):
        tm = task1_system["threshold_model"]
        assert sorted(tm.order.tolist()) == list(range(tm.n_indices))

    def test_only_correct_predictions_update_histograms(self, rng):
        # One always-wrong example must leave the histograms empty.
        logits = np.array([[5.0, 0.0]])  # predicts 0
        labels = np.array([1])  # true label 1 -> incorrect
        tm = fit_threshold_model(logits, labels)
        assert not tm.positive_hists
        assert not tm.negative_hists

    def test_histograms_split_by_label(self):
        logits = np.array([[5.0, 0.0], [0.0, 4.0]])
        labels = np.array([0, 1])
        tm = fit_threshold_model(logits, labels)
        assert tm.positive_hists[0].total == 1
        assert tm.positive_hists[1].total == 1
        assert tm.negative_hists[0].total == 1  # z_0 of example 2
        assert tm.negative_hists[1].total == 1


class TestThresholds:
    def test_rho_bounds(self, task1_system):
        tm = task1_system["threshold_model"]
        with pytest.raises(ValueError):
            tm.thresholds(0.0)
        with pytest.raises(ValueError):
            tm.thresholds(1.5)

    def test_unseen_index_threshold_is_inf(self, task1_system):
        tm = task1_system["threshold_model"]
        theta = tm.thresholds(1.0)
        # Index 0 is the pad token, never a label.
        assert theta[0] == np.inf

    def test_thresholds_monotone_in_rho(self, task1_system):
        """Lower rho can only loosen (lower) thresholds."""
        tm = task1_system["threshold_model"]
        theta_100 = tm.thresholds(1.0)
        theta_90 = tm.thresholds(0.9)
        assert (theta_90 <= theta_100 + 1e-12).all()

    def test_posterior_in_unit_interval(self, task1_system):
        tm = task1_system["threshold_model"]
        for index in list(tm.positive_hists)[:5]:
            for value in np.linspace(-5, 10, 13):
                p = tm.posterior(index, float(value))
                assert 0.0 <= p <= 1.0

    def test_posterior_high_in_positive_region(self, task1_system):
        tm = task1_system["threshold_model"]
        index = max(tm.positive_hists, key=lambda i: tm.positive_hists[i].total)
        hist = tm.positive_hists[index]
        top_bin = hist.bin_centers()[np.argmax(hist.counts)]
        high_value = max(float(top_bin), float(hist.bin_centers()[hist.counts.nonzero()[0][-1]]))
        assert tm.posterior(index, high_value) > 0.5


class TestInferenceThresholdingSearch:
    def test_weight_mismatch_rejected(self, task1_system, rng):
        tm = task1_system["threshold_model"]
        with pytest.raises(ValueError):
            InferenceThresholding(rng.normal(size=(3, 4)), tm)

    def test_early_exit_flag_and_count(self, task1_system):
        w = task1_system["weights"].w_o
        tm = task1_system["threshold_model"]
        engine = InferenceThresholding(w, tm, rho=1.0)
        queries = _queries(task1_system)
        results = engine.search_batch(queries)
        assert results.early_exits.any(), "no early exits on a trained model"
        assert (results.comparisons[results.early_exits] < w.shape[0]).all()
        assert (results.comparisons[~results.early_exits] == w.shape[0]).all()

    def test_high_agreement_with_exact_at_rho_1(self, task1_system):
        w = task1_system["weights"].w_o
        tm = task1_system["threshold_model"]
        ith = InferenceThresholding(w, tm, rho=1.0)
        exact = ExactMips(w)
        queries = _queries(task1_system)
        agree = np.mean(
            [ith.search(q).label == exact.search(q).label for q in queries]
        )
        assert agree >= 0.95  # paper: <0.1% accuracy loss at rho=1.0

    def test_comparisons_monotone_in_rho(self, task1_system):
        w = task1_system["weights"].w_o
        tm = task1_system["threshold_model"]
        queries = _queries(task1_system)
        means = []
        for rho in (1.0, 0.95, 0.9):
            engine = InferenceThresholding(w, tm, rho=rho)
            means.append(
                np.mean([engine.search(q).comparisons for q in queries])
            )
        assert means[0] >= means[1] >= means[2]

    def test_ordering_reduces_comparisons(self, task1_system):
        w = task1_system["weights"].w_o
        tm = task1_system["threshold_model"]
        queries = _queries(task1_system)
        ordered = InferenceThresholding(w, tm, rho=1.0, use_index_ordering=True)
        unordered = InferenceThresholding(w, tm, rho=1.0, use_index_ordering=False)
        mean_ordered = np.mean([ordered.search(q).comparisons for q in queries])
        mean_unordered = np.mean(
            [unordered.search(q).comparisons for q in queries]
        )
        assert mean_ordered <= mean_unordered

    def test_fallback_is_exact_argmax(self, task1_system, rng):
        """With unreachable thresholds the result equals the exact scan."""
        w = task1_system["weights"].w_o
        tm = task1_system["threshold_model"]
        engine = InferenceThresholding(w, tm, rho=1.0)
        engine.theta = np.full(w.shape[0], np.inf)
        exact = ExactMips(w)
        for q in _queries(task1_system)[:10]:
            r = engine.search(q)
            assert not r.early_exit
            assert r.label == exact.search(q).label

    def test_visits_in_silhouette_order(self, task1_system):
        w = task1_system["weights"].w_o
        tm = task1_system["threshold_model"]
        engine = InferenceThresholding(w, tm, rho=1.0, use_index_ordering=True)
        assert np.array_equal(engine.order, tm.order)
