"""End-to-end integration tests across every layer of the system.

Each test runs the full path the paper's system takes: synthetic data ->
trained model -> fitted thresholds -> accelerator simulation -> metrics,
asserting cross-layer invariants that unit tests cannot see.
"""

import numpy as np
import pytest

from repro.babi import generate_task_dataset
from repro.devices import CpuModel, GpuModel
from repro.eval.workload import nominal_ops
from repro.hw import HwConfig, MannAccelerator
from repro.mann import InferenceEngine, train_task_model
from repro.mips import ExactMips, InferenceThresholding, fit_threshold_model


@pytest.fixture(scope="module", params=[2, 11, 16])
def pipeline(request):
    """Train + fit + simulate one non-trivial task end to end."""
    task_id = request.param
    train, test = generate_task_dataset(task_id, 150, 50, seed=31)
    result = train_task_model(train, test, epochs=30, seed=1)
    weights = result.model.export_weights()
    engine = InferenceEngine(weights)
    train_batch = train.encode()
    logits = engine.logits_batch(
        train_batch.stories, train_batch.questions, train_batch.story_lengths
    )
    thresholds = fit_threshold_model(logits, train_batch.answers)
    return {
        "task_id": task_id,
        "train": train,
        "test": test,
        "result": result,
        "weights": weights,
        "engine": engine,
        "thresholds": thresholds,
    }


class TestFullPipeline:
    def test_model_learns_task(self, pipeline):
        majority = pipeline["train"].majority_baseline_accuracy()
        assert pipeline["result"].test_accuracy > majority

    def test_accelerator_equals_golden_engine(self, pipeline):
        batch = pipeline["test"].encode()
        config = HwConfig(frequency_mhz=50.0).with_embed_dim(
            pipeline["weights"].config.embed_dim
        )
        report = MannAccelerator(pipeline["weights"], config).run(batch)
        golden = pipeline["engine"].predict(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert np.array_equal(report.predictions, golden)

    def test_ith_end_to_end_accuracy_cost(self, pipeline):
        batch = pipeline["test"].encode()
        base = HwConfig(frequency_mhz=50.0).with_embed_dim(
            pipeline["weights"].config.embed_dim
        )
        plain = MannAccelerator(pipeline["weights"], base).run(batch)
        ith = MannAccelerator(
            pipeline["weights"],
            base.with_ith(True, rho=1.0),
            pipeline["thresholds"],
        ).run(batch)
        assert ith.accuracy >= plain.accuracy - 0.06
        assert ith.total_cycles <= plain.total_cycles

    def test_fpga_more_efficient_than_gpu(self, pipeline):
        batch = pipeline["test"].encode()
        config = HwConfig(frequency_mhz=100.0).with_embed_dim(
            pipeline["weights"].config.embed_dim
        )
        fpga = MannAccelerator(pipeline["weights"], config).run(batch)
        ops = nominal_ops(
            batch,
            pipeline["weights"].config.embed_dim,
            pipeline["weights"].config.hops,
            pipeline["weights"].config.vocab_size,
        )
        gpu = GpuModel(config.calibration).run(ops, len(batch))
        cpu = CpuModel(config.calibration).run(ops, len(batch))
        assert fpga.wall_seconds < gpu.seconds
        assert fpga.energy_joules < gpu.energy_joules
        assert fpga.energy_joules < cpu.energy_joules

    def test_software_and_hardware_mips_agree(self, pipeline):
        batch = pipeline["test"].encode()
        weights = pipeline["weights"]
        sw_exact = ExactMips(weights.w_o)
        sw_ith = InferenceThresholding(
            weights.w_o, pipeline["thresholds"], rho=1.0
        )
        engine = pipeline["engine"]
        for i in range(0, len(batch), 7):
            h = engine.forward_trace(
                batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
            ).h_final
            exact = sw_exact.search(h)
            ith = sw_ith.search(h)
            if not ith.early_exit:
                assert ith.label == exact.label


class TestCrossTaskConsistency:
    def test_suite_metrics_consistent_with_single_runs(self, small_suite):
        """Table I totals must equal the sum of per-task artifacts."""
        from repro.eval.experiments import run_table1

        table1 = run_table1(small_suite)
        for mhz in (25.0, 100.0):
            row = table1.row(f"FPGA {mhz:.0f} MHz")
            total = sum(
                a.wall_seconds(mhz) for a in table1.fpga_plain.values()
            )
            assert row.seconds == pytest.approx(total)

    def test_quantized_weights_run_through_accelerator(self, small_suite):
        from repro.mann.quantize import QFormat, quantize_weights

        system = small_suite.tasks[1]
        quantized, _ = quantize_weights(system.weights, QFormat(3, 10))
        config = HwConfig(frequency_mhz=50.0).with_embed_dim(
            quantized.config.embed_dim
        )
        batch = system.test_batch
        report = MannAccelerator(quantized, config).run(batch)
        golden = InferenceEngine(quantized).predict(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert np.array_equal(report.predictions, golden)
        assert report.accuracy >= system.test_accuracy - 0.1
