"""Semantic correctness tests for all 20 task generators.

Every generator is checked for: determinism, requested count, presence
of valid supporting-fact indices, and — crucially — that the recorded
answer is actually entailed by the story according to an independent
re-derivation for the tasks where that is cheap to express.
"""

import numpy as np
import pytest

from repro.babi.story import QAExample
from repro.babi.tasks import TASK_NAMES, all_task_ids, get_generator

N = 40


def _generate(task_id: int, n: int = N, seed: int = 123) -> list[QAExample]:
    return get_generator(task_id)(np.random.default_rng(seed), n)


class TestRegistry:
    def test_all_twenty_tasks_present(self):
        assert all_task_ids() == list(range(1, 21))

    def test_names_cover_all_tasks(self):
        assert set(TASK_NAMES) == set(range(1, 21))

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            get_generator(21)


@pytest.mark.parametrize("task_id", all_task_ids())
class TestEveryGenerator:
    def test_count_and_task_id(self, task_id):
        examples = _generate(task_id, 10)
        assert len(examples) == 10
        assert all(e.task_id == task_id for e in examples)

    def test_deterministic(self, task_id):
        a = _generate(task_id, 8, seed=5)
        b = _generate(task_id, 8, seed=5)
        for x, y in zip(a, b):
            assert x.story == y.story
            assert x.question == y.question
            assert x.answer == y.answer

    def test_different_seeds_differ(self, task_id):
        a = _generate(task_id, 15, seed=1)
        b = _generate(task_id, 15, seed=2)
        assert any(
            x.story != y.story or x.answer != y.answer for x, y in zip(a, b)
        )

    def test_supporting_facts_valid(self, task_id):
        for e in _generate(task_id, 15):
            assert e.supporting, f"task {task_id} example has no supporting facts"
            for idx in e.supporting:
                assert 0 <= idx < len(e.story)

    def test_answers_single_token(self, task_id):
        for e in _generate(task_id, 15):
            assert " " not in e.answer

    def test_answer_diversity(self, task_id):
        answers = {e.answer for e in _generate(task_id, N)}
        assert len(answers) >= 2, f"task {task_id} answers are constant"


class TestTask1Semantics:
    def test_answer_is_last_move_of_asked_actor(self):
        for e in _generate(1):
            actor = e.question.tokens[-1]
            last_location = None
            for s in e.story:
                if s.tokens[0] == actor:
                    last_location = s.tokens[-1]
            assert e.answer == last_location


class TestTask2Semantics:
    def test_answer_is_carrier_location(self):
        from repro.babi.world import GRAB_VERBS, MOVE_VERBS

        grab_words = {v.split()[0] for v in GRAB_VERBS}
        move_words = {v.split()[0] for v in MOVE_VERBS}
        for e in _generate(2):
            obj = e.question.tokens[-1]
            carrier = None
            location = {}
            answer = None
            for s in e.story:
                head, verb = s.tokens[0], s.tokens[1]
                if verb in move_words:
                    location[head] = s.tokens[-1]
                elif verb in grab_words and s.tokens[-1] == obj:
                    carrier = head
            answer = location[carrier]
            assert e.answer == answer


class TestTask6Semantics:
    def test_yes_iff_actor_at_queried_location(self):
        for e in _generate(6):
            actor = e.question.tokens[1]
            queried = e.question.tokens[-1]
            last_location = None
            for s in e.story:
                if s.tokens[0] == actor:
                    last_location = s.tokens[-1]
            expected = "yes" if last_location == queried else "no"
            assert e.answer == expected


class TestTask7Semantics:
    def test_count_matches_simulation(self):
        from repro.babi.tasks.counting import NUMBER_WORDS
        from repro.babi.world import DROP_VERBS, GRAB_VERBS

        grab_words = {v.split()[0] for v in GRAB_VERBS}
        drop_words = {v.split()[0] for v in DROP_VERBS}
        for e in _generate(7):
            actor = e.question.tokens[-2]
            carried = set()
            for s in e.story:
                if s.tokens[0] != actor or len(s.tokens) < 3:
                    continue
                verb = s.tokens[1]
                if verb in grab_words or " ".join(s.tokens[1:3]) == "picked up":
                    carried.add(s.tokens[-1])
                elif verb in drop_words or " ".join(s.tokens[1:3]) == "put down":
                    carried.discard(s.tokens[-1])
            assert e.answer == NUMBER_WORDS[len(carried)]


class TestTask15Semantics:
    def test_deduction_chain(self):
        from repro.babi.world import ANIMAL_PLURALS

        plural_to_singular = {v: k for k, v in ANIMAL_PLURALS.items()}
        for e in _generate(15):
            name = e.question.tokens[2]
            species = None
            fears = {}
            for s in e.story:
                if s.tokens[1] == "is":  # "<name> is a <species>"
                    if s.tokens[0] == name:
                        species = s.tokens[-1]
                elif "afraid" in s.tokens:
                    fears[plural_to_singular[s.tokens[0]]] = plural_to_singular[
                        s.tokens[-1]
                    ]
            assert e.answer == fears[species]


class TestTask18Semantics:
    def test_transitive_size_reasoning(self):
        for e in _generate(18):
            # Rebuild the chain: "the A fits inside the B" => A < B.
            import networkx as nx

            graph = nx.DiGraph()
            for s in e.story:
                text = s.text()
                assert "fits inside the" in text
                left = text.split(" fits inside the ")[0].removeprefix("the ")
                right = text.split(" fits inside the ")[1]
                graph.add_edge(left, right)
            q = e.question.text().removeprefix("does the ")
            small, large = q.split(" fit inside the ")
            reachable = nx.has_path(graph, small, large) if small in graph and large in graph else False
            assert e.answer == ("yes" if reachable else "no")


class TestTask19Semantics:
    def test_path_is_executable(self):
        from repro.babi.world import DIRECTION_DELTA, DIRECTION_LETTER

        letter_to_delta = {
            DIRECTION_LETTER[d]: delta for d, delta in DIRECTION_DELTA.items()
        }
        for e in _generate(19, 25):
            # Rebuild coordinates from the narrated adjacency facts.
            positions: dict[str, tuple[int, int]] = {}
            facts = []
            for s in e.story:
                tokens = s.tokens  # the A is <dir> of the B
                a, direction, b = tokens[1], tokens[3], tokens[-1]
                facts.append((a, direction, b))
            # Fixpoint placement.
            positions[facts[0][2]] = (0, 0)
            changed = True
            while changed:
                changed = False
                for a, direction, b in facts:
                    dx, dy = DIRECTION_DELTA[direction]
                    if b in positions and a not in positions:
                        positions[a] = (positions[b][0] + dx, positions[b][1] + dy)
                        changed = True
                    elif a in positions and b not in positions:
                        positions[b] = (positions[a][0] - dx, positions[a][1] - dy)
                        changed = True
            start = e.question.tokens[-4]
            goal = e.question.tokens[-1]
            x, y = positions[start]
            for letter in e.answer.split(","):
                dx, dy = letter_to_delta[letter]
                x, y = x + dx, y + dy
            assert (x, y) == positions[goal]


class TestTask20Semantics:
    def test_motive_consistency(self):
        from repro.babi.world import MOTIVE_TARGET

        for e in _generate(20):
            if e.question.tokens[0] == "why":
                # why did X go to the <loc> -> answer is a motive whose
                # target is <loc>.
                location = e.question.tokens[-1]
                assert MOTIVE_TARGET[e.answer] == location
            elif e.question.tokens[:2] == ("where", "will"):
                actor = e.question.tokens[2]
                motive = next(
                    s.tokens[-1]
                    for s in e.story
                    if s.tokens[0] == actor and s.tokens[1] == "is"
                )
                assert e.answer == MOTIVE_TARGET[motive]
