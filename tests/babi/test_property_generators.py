"""Hypothesis property tests over the task generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.babi.dataset import BabiDataset
from repro.babi.tasks import all_task_ids, get_generator


@settings(max_examples=20, deadline=None)
@given(
    task_id=st.sampled_from(all_task_ids()),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_generator_always_yields_valid_examples(task_id, seed):
    examples = get_generator(task_id)(np.random.default_rng(seed), 5)
    assert len(examples) == 5
    for e in examples:
        assert e.story
        assert e.answer
        assert all(0 <= i < len(e.story) for i in e.supporting)
        # Every token survives the vocabulary round trip.
        ds = BabiDataset([e])
        story, question, answer = ds.encode_example(e)
        assert ds.vocab.word(answer) == e.answer


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_task1_answer_always_a_location(seed):
    from repro.babi.world import LOCATIONS

    examples = get_generator(1)(np.random.default_rng(seed), 10)
    for e in examples:
        assert e.answer in LOCATIONS


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_yesno_tasks_answer_space(seed):
    rng = np.random.default_rng(seed)
    for task_id, allowed in ((6, {"yes", "no"}), (9, {"yes", "no", "maybe"}),
                             (10, {"yes", "no", "maybe"}),
                             (17, {"yes", "no"}), (18, {"yes", "no"})):
        for e in get_generator(task_id)(rng, 5):
            assert e.answer in allowed


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_encoding_roundtrip_any_task(seed):
    rng = np.random.default_rng(seed)
    task_id = int(rng.integers(1, 21))
    examples = get_generator(task_id)(rng, 8)
    ds = BabiDataset(examples)
    batch = ds.encode()
    assert batch.stories.shape[0] == 8
    assert (batch.story_lengths >= 1).all()
    assert (batch.story_lengths <= ds.memory_size).all()
    # Padding is exactly the zero index.
    for i in range(8):
        n = batch.story_lengths[i]
        assert (batch.stories[i, n:] == 0).all()
