"""Tests for the story-world state tracker."""

import numpy as np
import pytest

from repro.babi.world import (
    WorldConfig,
    WorldState,
    choose,
    choose_distinct,
)


class TestWorldConfig:
    def test_default_pools(self):
        cfg = WorldConfig()
        assert len(cfg.actors()) == 4
        assert len(cfg.locations()) == 6
        assert len(cfg.objects()) == 3

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            WorldConfig(n_actors=0).actors()
        with pytest.raises(ValueError):
            WorldConfig(n_locations=1).locations()
        with pytest.raises(ValueError):
            WorldConfig(n_objects=99).objects()


class TestWorldState:
    def test_move_updates_location_and_fact(self):
        s = WorldState()
        s.move("mary", "kitchen", 3)
        assert s.actor_location["mary"] == "kitchen"
        assert s.actor_location_fact["mary"] == 3

    def test_grab_and_carry(self):
        s = WorldState()
        s.move("mary", "kitchen", 0)
        s.grab("mary", "apple", 1)
        assert s.carried_by("mary") == ["apple"]
        assert s.carrier_of("apple") == "mary"
        assert s.holding_fact[("mary", "apple")] == 1

    def test_object_follows_carrier(self):
        s = WorldState()
        s.move("mary", "kitchen", 0)
        s.grab("mary", "apple", 1)
        s.move("mary", "garden", 2)
        assert s.location_of_object("apple") == "garden"
        history = s.object_location_history["apple"]
        assert [loc for loc, _ in history] == ["kitchen", "garden"]

    def test_drop_releases_object(self):
        s = WorldState()
        s.move("mary", "kitchen", 0)
        s.grab("mary", "apple", 1)
        s.drop("mary", "apple", 2)
        assert s.carrier_of("apple") is None
        assert s.carried_by("mary") == []

    def test_drop_not_held_rejected(self):
        s = WorldState()
        with pytest.raises(ValueError):
            s.drop("mary", "apple", 0)

    def test_give_transfers_ownership(self):
        s = WorldState()
        s.move("mary", "kitchen", 0)
        s.move("john", "garden", 1)
        s.grab("mary", "apple", 2)
        s.give("mary", "john", "apple", 3)
        assert s.carrier_of("apple") == "john"
        # The object is now wherever john is.
        assert s.location_of_object("apple") == "garden"

    def test_dropped_object_stays_put(self):
        s = WorldState()
        s.move("mary", "kitchen", 0)
        s.grab("mary", "apple", 1)
        s.drop("mary", "apple", 2)
        s.move("mary", "garden", 3)
        assert s.location_of_object("apple") == "kitchen"


class TestChoiceHelpers:
    def test_choose_uniform_support(self):
        rng = np.random.default_rng(0)
        pool = ("a", "b", "c")
        seen = {choose(rng, pool) for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_choose_distinct_no_repeats(self):
        rng = np.random.default_rng(0)
        picked = choose_distinct(rng, list("abcdef"), 4)
        assert len(set(picked)) == 4

    def test_choose_distinct_too_many_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            choose_distinct(rng, ["a"], 2)
