"""Tests for dataset encoding and splitting."""

import numpy as np
import pytest

from repro.babi.dataset import BabiDataset, generate_task_dataset
from repro.babi.story import QAExample, Sentence
from repro.babi.vocab import Vocab


def _tiny_examples():
    return [
        QAExample(
            1,
            [Sentence.from_text("mary went to the kitchen"),
             Sentence.from_text("john went to the garden")],
            Sentence.from_text("where is mary"),
            "kitchen",
            (0,),
        ),
        QAExample(
            1,
            [Sentence.from_text("john went to the office")],
            Sentence.from_text("where is john"),
            "office",
            (0,),
        ),
    ]


class TestBabiDataset:
    def test_dimensions_inferred(self):
        ds = BabiDataset(_tiny_examples())
        assert ds.memory_size == 2
        assert ds.sentence_len == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BabiDataset([])

    def test_encode_example_indices(self):
        ds = BabiDataset(_tiny_examples())
        story, question, answer = ds.encode_example(ds.examples[0])
        assert story.shape == (2, 5)
        assert question.shape == (5,)
        assert ds.vocab.word(answer) == "kitchen"
        # First sentence fully encoded, no pad in the word positions.
        assert (story[0] != 0).sum() == 5

    def test_encode_pads_short_stories(self):
        ds = BabiDataset(_tiny_examples())
        story, _, _ = ds.encode_example(ds.examples[1])
        assert np.array_equal(story[1], np.zeros(5, dtype=np.int64))

    def test_memory_overflow_keeps_recent(self):
        examples = _tiny_examples()
        ds = BabiDataset(examples, memory_size=1)
        story, _, _ = ds.encode_example(examples[0])
        # Only the most recent sentence is kept.
        assert ds.vocab.word(story[0][0]) == "john"

    def test_encode_batch_shapes(self):
        ds = BabiDataset(_tiny_examples())
        batch = ds.encode()
        assert batch.stories.shape == (2, 2, 5)
        assert batch.questions.shape == (2, 5)
        assert batch.answers.shape == (2,)
        assert batch.story_lengths.tolist() == [2, 1]

    def test_batch_subset(self):
        ds = BabiDataset(_tiny_examples())
        sub = ds.encode().subset(np.array([1]))
        assert len(sub) == 1
        assert sub.story_lengths[0] == 1

    def test_split_preserves_vocab_and_dims(self):
        examples = _tiny_examples() * 10
        ds = BabiDataset(examples)
        train, test = ds.split(0.75, seed=0)
        assert train.vocab is ds.vocab
        assert train.memory_size == ds.memory_size
        assert len(train) + len(test) == len(ds)

    def test_split_fraction_bounds(self):
        ds = BabiDataset(_tiny_examples())
        with pytest.raises(ValueError):
            ds.split(0.0)
        with pytest.raises(ValueError):
            ds.split(1.0)

    def test_majority_baseline(self):
        examples = _tiny_examples() + _tiny_examples()[:1]
        ds = BabiDataset(examples)
        # kitchen appears 2/3 of the time.
        assert ds.majority_baseline_accuracy() == pytest.approx(2 / 3)

    def test_shared_vocab_constructor(self):
        vocab = Vocab.from_examples(_tiny_examples())
        ds = BabiDataset(_tiny_examples(), vocab, 4, 8)
        assert ds.memory_size == 4
        assert ds.sentence_len == 8
        batch = ds.encode()
        assert batch.stories.shape == (2, 4, 8)


class TestGenerateTaskDataset:
    def test_counts(self):
        train, test = generate_task_dataset(1, 20, 10, seed=0)
        assert len(train) == 20
        assert len(test) == 10

    def test_shared_vocab_and_dims(self):
        train, test = generate_task_dataset(2, 20, 10, seed=0)
        assert train.vocab is test.vocab
        assert train.memory_size == test.memory_size
        assert train.sentence_len == test.sentence_len

    def test_test_vocab_covered(self):
        _, test = generate_task_dataset(3, 15, 10, seed=1)
        batch = test.encode()  # would raise KeyError on missing words
        assert batch.stories.max() < test.vocab_size

    def test_deterministic(self):
        a_train, _ = generate_task_dataset(5, 10, 5, seed=9)
        b_train, _ = generate_task_dataset(5, 10, 5, seed=9)
        assert np.array_equal(
            a_train.encode().stories, b_train.encode().stories
        )
