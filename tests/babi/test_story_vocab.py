"""Tests for story structures and vocabulary."""

import pytest

from repro.babi.story import QAExample, Sentence
from repro.babi.vocab import PAD_TOKEN, Vocab


class TestSentence:
    def test_from_text_strips_punctuation(self):
        s = Sentence.from_text("Mary went to the Kitchen.")
        assert s.tokens == ("mary", "went", "to", "the", "kitchen")

    def test_lowercasing(self):
        assert Sentence(("MARY",)).tokens == ("mary",)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sentence(())

    def test_text_roundtrip(self):
        s = Sentence.from_text("john grabbed the apple")
        assert s.text() == "john grabbed the apple"

    def test_len(self):
        assert len(Sentence.from_text("a b c")) == 3


class TestQAExample:
    def _example(self, supporting=(0,)):
        return QAExample(
            task_id=1,
            story=[Sentence.from_text("mary went to the kitchen")],
            question=Sentence.from_text("where is mary"),
            answer="Kitchen",
            supporting=supporting,
        )

    def test_answer_lowercased(self):
        assert self._example().answer == "kitchen"

    def test_supporting_bounds_checked(self):
        with pytest.raises(ValueError):
            self._example(supporting=(5,))

    def test_empty_story_rejected(self):
        with pytest.raises(ValueError):
            QAExample(1, [], Sentence.from_text("q"), "a")

    def test_all_tokens_includes_answer(self):
        assert "kitchen" in self._example().all_tokens()

    def test_text_rendering(self):
        text = self._example().text()
        assert "Q: where is mary?" in text
        assert "A: kitchen" in text


class TestVocab:
    def test_pad_is_index_zero(self):
        v = Vocab()
        assert v.index(PAD_TOKEN) == 0
        assert v.pad_index == 0

    def test_add_idempotent(self):
        v = Vocab()
        first = v.add("kitchen")
        second = v.add("Kitchen")
        assert first == second
        assert len(v) == 2

    def test_index_word_roundtrip(self):
        v = Vocab(["alpha", "beta"])
        assert v.word(v.index("beta")) == "beta"

    def test_unknown_word_raises(self):
        with pytest.raises(KeyError):
            Vocab().index("missing")

    def test_contains(self):
        v = Vocab(["word"])
        assert "word" in v
        assert "WORD" in v
        assert "other" not in v

    def test_from_examples_covers_everything(self):
        ex = QAExample(
            1,
            [Sentence.from_text("mary went home")],
            Sentence.from_text("where is mary"),
            "home",
        )
        v = Vocab.from_examples([ex])
        for token in ex.all_tokens():
            assert token in v

    def test_words_listing(self):
        v = Vocab(["a"])
        assert v.words() == [PAD_TOKEN, "a"]
