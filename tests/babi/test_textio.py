"""Tests for bAbI text-format serialization."""

import numpy as np
import pytest

from repro.babi.dataset import BabiDataset
from repro.babi.tasks import all_task_ids, get_generator
from repro.babi.textio import (
    format_examples,
    parse_text,
    read_babi_file,
    write_babi_file,
)

SAMPLE = """\
1 Mary moved to the bathroom.
2 John went to the hallway.
3 Where is Mary?\tbathroom\t1
1 Daniel went back to the office.
2 Where is Daniel?\toffice\t1
"""


class TestParse:
    def test_parses_two_examples(self):
        examples = parse_text(SAMPLE, task_id=1)
        assert len(examples) == 2
        assert examples[0].answer == "bathroom"
        assert examples[1].answer == "office"

    def test_story_excludes_questions(self):
        examples = parse_text(SAMPLE)
        assert len(examples[0].story) == 2
        assert examples[0].story[0].tokens[0] == "mary"

    def test_supporting_facts_remapped(self):
        examples = parse_text(SAMPLE)
        assert examples[0].supporting == (0,)
        assert examples[1].supporting == (0,)

    def test_numbering_reset_starts_new_story(self):
        examples = parse_text(SAMPLE)
        assert len(examples[1].story) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_text("nonumber here")
        with pytest.raises(ValueError):
            parse_text("x bad line")

    def test_question_before_facts_rejected(self):
        with pytest.raises(ValueError):
            parse_text("1 Where is Mary?\tbathroom\t1")

    def test_unknown_supporting_line_rejected(self):
        bad = "1 Mary moved.\n2 Where is Mary?\tbathroom\t9\n"
        with pytest.raises(ValueError):
            parse_text(bad)

    def test_question_without_supports(self):
        text = "1 Mary moved to the bathroom.\n2 Where is Mary?\tbathroom\t\n"
        examples = parse_text(text)
        assert examples[0].supporting == ()


class TestRoundTrip:
    @pytest.mark.parametrize("task_id", [1, 6, 15, 19])
    def test_generator_output_roundtrips(self, task_id):
        examples = get_generator(task_id)(np.random.default_rng(7), 10)
        text = format_examples(examples)
        parsed = parse_text(text, task_id=task_id)
        assert len(parsed) == len(examples)
        for original, restored in zip(examples, parsed):
            assert restored.answer == original.answer
            assert restored.question == original.question
            assert len(restored.story) == len(original.story)
            assert restored.supporting == original.supporting

    def test_file_roundtrip(self, tmp_path):
        examples = get_generator(2)(np.random.default_rng(3), 5)
        path = tmp_path / "task2.txt"
        write_babi_file(path, examples)
        restored = read_babi_file(path, task_id=2)
        assert len(restored) == 5
        assert restored[0].answer == examples[0].answer

    def test_parsed_examples_feed_dataset_pipeline(self):
        examples = parse_text(SAMPLE, task_id=1)
        ds = BabiDataset(examples)
        batch = ds.encode()
        assert batch.stories.shape[0] == 2

    def test_all_tasks_serializable(self):
        rng = np.random.default_rng(0)
        for task_id in all_task_ids():
            examples = get_generator(task_id)(rng, 3)
            text = format_examples(examples)
            assert parse_text(text, task_id)
