"""Tests of the table/figure experiment drivers on a small suite.

These assert the *shape* claims of the paper: who wins, the direction of
every trend, and rough factor bands (not absolute numbers — the
substrate is a simulator, not the authors' testbed).
"""

import numpy as np
import pytest

from repro.eval.experiments import (
    run_fig3,
    run_fig4,
    run_interface_ablation,
    run_table1,
    summarise_logit_distributions,
)
from repro.eval.metrics import EfficiencyRow, normalise_to_gpu
from repro.hw import HwConfig


@pytest.fixture(scope="module")
def table1(small_suite):
    return run_table1(small_suite)


@pytest.fixture(scope="module")
def fig3(small_suite):
    return run_fig3(small_suite)


@pytest.fixture(scope="module")
def fig4(small_suite):
    return run_fig4(small_suite)


class TestMetrics:
    def test_normalise_requires_gpu_row(self):
        with pytest.raises(ValueError):
            normalise_to_gpu([EfficiencyRow("CPU", 1.0, 10.0, 100.0)])

    def test_gpu_row_is_unity(self):
        rows = [
            EfficiencyRow("GPU", 2.0, 40.0, 100.0),
            EfficiencyRow("FPGA", 1.0, 10.0, 100.0),
        ]
        normalise_to_gpu(rows)
        assert rows[0].speedup == pytest.approx(1.0)
        assert rows[0].energy_efficiency_vs_gpu == pytest.approx(1.0)
        # speedup 2x, energy ratio 8x -> efficiency 16x.
        assert rows[1].energy_efficiency_vs_gpu == pytest.approx(16.0)


class TestTable1Shape:
    def test_all_rows_present(self, table1):
        names = [r.name for r in table1.rows]
        assert "CPU" in names and "GPU" in names
        for mhz in (25, 50, 75, 100):
            assert f"FPGA {mhz} MHz" in names
            assert f"FPGA+ITH {mhz} MHz" in names

    def test_fpga_beats_gpu_in_time(self, table1):
        """Paper: 5.2-7.5x faster; we assert a generous 3-12x band."""
        for mhz in (25, 50, 75, 100):
            speedup = table1.row(f"FPGA {mhz} MHz").speedup
            assert 3.0 < speedup < 12.0

    def test_fpga_energy_efficiency_band(self, table1):
        """Paper: 84-127x (plain), 108-140x (ITH); assert 40-250x."""
        for mhz in (25, 50, 75, 100):
            plain = table1.row(f"FPGA {mhz} MHz").energy_efficiency_vs_gpu
            ith = table1.row(f"FPGA+ITH {mhz} MHz").energy_efficiency_vs_gpu
            assert 40.0 < plain < 250.0
            assert ith > plain  # ITH increases the margin

    def test_cpu_near_gpu_parity(self, table1):
        cpu = table1.row("CPU")
        assert 0.7 < cpu.speedup < 1.2
        assert 1.2 < cpu.energy_efficiency_vs_gpu < 2.5

    def test_time_decreases_with_frequency_sublinearly(self, table1):
        times = [table1.row(f"FPGA {m} MHz").seconds for m in (25, 50, 75, 100)]
        assert times == sorted(times, reverse=True)
        # 4x clock buys far less than 4x time (interface bound).
        assert times[0] / times[-1] < 2.5

    def test_power_increases_with_frequency(self, table1):
        powers = [table1.row(f"FPGA {m} MHz").power_w for m in (25, 50, 75, 100)]
        assert powers == sorted(powers)
        assert 13.0 < powers[0] < 17.0
        assert 18.0 < powers[-1] < 23.0

    def test_gpu_uses_most_power(self, table1):
        gpu_power = table1.row("GPU").power_w
        for row in table1.rows:
            if row.name != "GPU":
                assert row.power_w < gpu_power

    def test_ith_time_reduction_band_and_trend(self, table1):
        """Paper: 6-18%, biggest at 25 MHz.

        This fixture's three-task suite has a smaller shared vocabulary
        than the full 20-task workload, so the output-layer share (and
        hence the ITH saving) is smaller; the full-suite band is
        asserted by the Table I benchmark. Here we require a positive,
        frequency-monotone reduction.
        """
        reductions = [
            table1.ith_time_reduction(m) for m in (25.0, 50.0, 75.0, 100.0)
        ]
        for r in reductions:
            assert 0.003 < r < 0.30
        assert reductions[0] > 0.015
        assert reductions == sorted(reductions, reverse=True)

    def test_ith_accuracy_loss_small(self, table1):
        """Paper: rho=1.0 lost under 0.1% accuracy; allow 2% here."""
        assert table1.accuracy_ith >= table1.accuracy_plain - 0.02


class TestFig3Shape:
    def test_baseline_point_normalised_to_one(self, fig3):
        base = fig3.point(None)
        assert base.normalised_accuracy == pytest.approx(1.0)
        assert base.normalised_comparisons == pytest.approx(1.0)

    def test_ith_reduces_comparisons(self, fig3):
        for rho in (1.0, 0.99, 0.95, 0.9):
            p = fig3.point(rho, index_ordering=True)
            assert p.normalised_comparisons < 0.9

    def test_comparisons_monotone_in_rho(self, fig3):
        cmps = [
            fig3.point(rho, True).normalised_comparisons
            for rho in (1.0, 0.99, 0.95, 0.9)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(cmps, cmps[1:]))

    def test_ordering_helps_comparisons(self, fig3):
        for rho in (1.0, 0.99, 0.95, 0.9):
            ordered = fig3.point(rho, True).normalised_comparisons
            unordered = fig3.point(rho, False).normalised_comparisons
            assert ordered <= unordered + 1e-9

    def test_accuracy_stays_high_at_rho_1(self, fig3):
        assert fig3.point(1.0, True).normalised_accuracy > 0.97

    def test_table_renders(self, fig3):
        text = fig3.to_table().render()
        assert "w/o ITH" in text


class TestFig4Shape:
    def test_all_series_cover_all_tasks(self, fig4, small_suite):
        for name, values in fig4.series.items():
            assert sorted(values) == small_suite.task_ids, name

    def test_gpu_series_is_unity(self, fig4):
        assert all(v == 1.0 for v in fig4.series["GPU"].values())

    def test_fpga_most_efficient_on_every_task(self, fig4):
        """Paper: 'the FPGA implementation was the most energy-efficient
        across all tasks'."""
        best = fig4.best_config_per_task()
        assert all(config.startswith("FPGA") for config in best.values())

    def test_ith_increases_margin_per_task(self, fig4):
        for task_id in fig4.task_ids:
            assert (
                fig4.series["FPGA+ITH 100 MHz"][task_id]
                > fig4.series["FPGA 100 MHz"][task_id]
            )

    def test_per_task_spread_exists(self, fig4):
        values = list(fig4.series["FPGA+ITH 100 MHz"].values())
        assert max(values) / min(values) > 1.1


class TestInterfaceAblation:
    def test_removing_interface_boosts_efficiency(self, small_suite):
        result = run_interface_ablation(small_suite)
        assert result.without_interface > 2 * result.with_interface
        assert result.without_interface > 60.0  # paper estimates ~162x

    def test_table_renders(self, small_suite):
        result = run_interface_ablation(small_suite)
        assert "interface removed" in result.to_table().render()


class TestLogitDistributions:
    def test_summary_structure(self, small_suite):
        system = small_suite.tasks[1]
        summary = summarise_logit_distributions(
            system, small_suite.vocab.words()
        )
        assert summary.rows
        for row in summary.rows:
            assert row.n_positive > 0
            assert np.isfinite(row.positive_mean)

    def test_positive_mean_exceeds_negative(self, small_suite):
        """Fig. 2b: the argmax mixture sits to the right."""
        system = small_suite.tasks[1]
        summary = summarise_logit_distributions(
            system, small_suite.vocab.words()
        )
        for row in summary.rows:
            if row.n_negative > 10:
                assert row.positive_mean > row.negative_mean
