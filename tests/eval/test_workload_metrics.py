"""Tests for nominal workload construction and the efficiency metric."""

import numpy as np
import pytest

from repro.eval.metrics import EfficiencyRow, efficiency_ratio
from repro.eval.workload import batch_word_counts, nominal_ops
from repro.hw.opcounts import OpCounter


class TestBatchWordCounts:
    def test_counts_match_encoding(self, task1_system):
        batch = task1_system["test_batch"]
        counts = batch_word_counts(batch)
        assert len(counts) == len(batch)
        words, q_words = counts[0]
        assert len(words) == int(batch.story_lengths[0])
        assert q_words == int((batch.questions[0] != 0).sum())
        assert all(w >= 1 for w in words)

    def test_pad_rows_excluded(self, task1_system):
        batch = task1_system["test_batch"]
        for (words, _q), length in zip(
            batch_word_counts(batch), batch.story_lengths
        ):
            assert len(words) == int(length)


class TestNominalOps:
    def test_manual_aggregation_matches(self, task1_system):
        batch = task1_system["test_batch"].subset(np.arange(4))
        embed = task1_system["weights"].config.embed_dim
        hops = task1_system["weights"].config.hops
        vocab = task1_system["weights"].config.vocab_size
        total = nominal_ops(batch, embed, hops, vocab)
        counter = OpCounter(embed)
        manual = None
        for words, q_words in batch_word_counts(batch):
            ops = counter.example(words, q_words, hops, vocab)
            manual = ops if manual is None else manual + ops
        assert total.flops == manual.flops
        assert total.kernel_launches == manual.kernel_launches

    def test_full_scan_assumed(self, task1_system):
        """Nominal counts always include the full |I| output scan."""
        batch = task1_system["test_batch"].subset(np.arange(2))
        embed = task1_system["weights"].config.embed_dim
        vocab = task1_system["weights"].config.vocab_size
        small = nominal_ops(batch, embed, 1, 10)
        full = nominal_ops(batch, embed, 1, vocab)
        assert full.compares - small.compares == 2 * (vocab - 10)


class TestEfficiencyRatio:
    def test_matches_paper_arithmetic(self):
        """5.21x speedup and 16.1x energy ratio give ~83.9x (Table I)."""
        gpu_seconds, gpu_energy = 226.90, 226.90 * 45.36
        fpga_seconds = gpu_seconds / 5.21
        fpga_energy = gpu_energy / 16.08
        ratio = efficiency_ratio(
            fpga_seconds, fpga_energy, gpu_seconds, gpu_energy
        )
        assert ratio == pytest.approx(5.21 * 16.08, rel=1e-6)

    def test_identity_for_gpu_itself(self):
        assert efficiency_ratio(2.0, 90.0, 2.0, 90.0) == pytest.approx(1.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            efficiency_ratio(0.0, 1.0, 1.0, 1.0)

    def test_row_properties(self):
        row = EfficiencyRow("X", seconds=2.0, power_w=10.0, flops=100.0)
        assert row.energy_joules == pytest.approx(20.0)
        assert row.flops_rate == pytest.approx(50.0)
