"""Tests for the evaluation-suite builder."""

import numpy as np
import pytest

from repro.eval.backends import evaluate_mips_backends
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.mips import available_backends


class TestSuiteConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SuiteConfig(task_ids=())
        with pytest.raises(ValueError):
            SuiteConfig(n_train=0)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            BabiSuite.build(SuiteConfig(task_ids=(99,), n_train=5, n_test=5))


class TestBuiltSuite:
    def test_tasks_present(self, small_suite):
        assert small_suite.task_ids == [1, 6, 15]

    def test_shared_vocabulary(self, small_suite):
        vocabs = {id(t.train.vocab) for t in small_suite.tasks.values()}
        assert len(vocabs) == 1
        for system in small_suite.tasks.values():
            assert system.train.vocab is small_suite.vocab
            assert system.vocab_size == len(small_suite.vocab)

    def test_union_vocab_is_large(self, small_suite):
        """Shared |I| far exceeds any single task's needs — the regime
        where the sequential output scan dominates (Section IV)."""
        assert len(small_suite.vocab) > 40

    def test_models_learn(self, small_suite):
        for system in small_suite.tasks.values():
            majority = system.train.majority_baseline_accuracy()
            assert system.test_accuracy > majority, (
                f"task {system.task_id} did not beat majority baseline"
            )

    def test_threshold_models_fitted(self, small_suite):
        for system in small_suite.tasks.values():
            tm = system.threshold_model
            assert tm.n_indices == len(small_suite.vocab)
            assert tm.positive_hists, "no logit statistics collected"

    def test_train_logits_shape(self, small_suite):
        for system in small_suite.tasks.values():
            assert system.train_logits.shape == (
                len(system.train_batch),
                len(small_suite.vocab),
            )

    def test_encodings_share_answer_space(self, small_suite):
        """The same word must map to the same index across tasks."""
        systems = list(small_suite.tasks.values())
        word = "kitchen"
        idx = small_suite.vocab.index(word)
        for system in systems:
            assert system.train.vocab.index(word) == idx

    def test_mean_accuracy(self, small_suite):
        accs = [t.test_accuracy for t in small_suite.tasks.values()]
        assert small_suite.mean_test_accuracy() == pytest.approx(np.mean(accs))

    def test_deterministic_build(self):
        cfg = SuiteConfig(task_ids=(1,), n_train=30, n_test=10, epochs=5, seed=9)
        a = BabiSuite.build(cfg)
        b = BabiSuite.build(cfg)
        wa = a.tasks[1].weights.w_o
        wb = b.tasks[1].weights.w_o
        assert np.array_equal(wa, wb)


class TestMipsBackendAccess:
    def test_mips_engine_builds_every_backend(self, small_suite):
        system = small_suite.tasks[1]
        for name in available_backends():
            engine = system.mips_engine(name)
            assert engine.num_indices == len(small_suite.vocab)

    def test_batch_engine_with_backend_predicts(self, small_suite):
        system = small_suite.tasks[1]
        batch = system.test_batch
        engine = system.batch_engine_with("threshold", rho=1.0)
        results = engine.search(batch.stories, batch.questions, batch.story_lengths)
        assert len(results) == len(batch)
        assert np.array_equal(
            engine.predict(batch.stories, batch.questions, batch.story_lengths),
            results.labels,
        )
        # The exact backend reproduces the plain batch engine bitwise.
        exact = system.batch_engine_with("exact")
        assert np.array_equal(
            exact.predict(batch.stories, batch.questions, batch.story_lengths),
            system.batch_engine.predict(
                batch.stories, batch.questions, batch.story_lengths
            ),
        )


class TestEvaluateMipsBackends:
    def test_rows_cover_all_backends(self, small_suite):
        rows = evaluate_mips_backends(small_suite)
        assert [r.backend for r in rows] == list(available_backends())
        for row in rows:
            assert 0.0 <= row.agreement_with_exact <= 1.0
            assert 0.0 <= row.label_accuracy <= 1.0
            assert row.mean_comparisons > 0

    def test_exact_row_is_reference(self, small_suite):
        (row,) = evaluate_mips_backends(small_suite, ["exact"])
        assert row.agreement_with_exact == 1.0
        assert row.early_exit_rate == 0.0
        vocab = len(small_suite.vocab)
        assert row.mean_comparisons == pytest.approx(vocab)

    def test_threshold_row_saves_comparisons(self, small_suite):
        (row,) = evaluate_mips_backends(small_suite, ["threshold"], rho=1.0)
        assert row.early_exit_rate > 0
        assert row.mean_comparisons < len(small_suite.vocab)
