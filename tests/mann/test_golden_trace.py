"""Golden-trace regression fixture: the full `InferenceTrace` of a
deterministic-seed example is pinned **by value** in a committed .npz
snapshot, so any future refactor of the read/write path (batched or
per-example) that changes a number — not just a shape — fails here.

Regenerate (only after an intentional numerical change) with:

    PYTHONPATH=src python tests/mann/test_golden_trace.py
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.mann import BatchInferenceEngine, InferenceEngine, MannConfig
from repro.mann.model import MemoryNetwork

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "golden_trace.npz"
SNAPSHOT_ATOL = 1e-12


def reference_setup():
    """Deterministic weights + one fixed ragged example."""
    config = MannConfig(
        vocab_size=19, embed_dim=8, memory_size=6, hops=3, seed=123
    )
    weights = MemoryNetwork(config).export_weights()
    rng = np.random.default_rng(456)
    story = rng.integers(1, config.vocab_size, size=(6, 5))
    story[4:] = 0  # two trailing pad slots
    story[1, 3:] = 0  # interior sentence pads
    question = np.array([7, 2, 0, 11, 0], dtype=np.int64)
    return weights, story.astype(np.int64), question, 4


def compute_snapshot() -> dict[str, np.ndarray]:
    weights, story, question, n_sentences = reference_setup()
    trace = InferenceEngine(weights).forward_trace(story, question, n_sentences)
    return {
        "story": story,
        "question": question,
        "n_sentences": np.int64(n_sentences),
        "mem_a": trace.mem_a,
        "mem_c": trace.mem_c,
        "keys": np.stack(trace.keys),
        "scores": np.stack(trace.scores),
        "attentions": np.stack(trace.attentions),
        "reads": np.stack(trace.reads),
        "controller_outputs": np.stack(trace.controller_outputs),
        "logits": trace.logits,
        "prediction": np.int64(trace.prediction),
    }


@pytest.fixture(scope="module")
def snapshot():
    if not FIXTURE.exists():
        pytest.fail(
            f"missing fixture {FIXTURE}; regenerate with "
            "`PYTHONPATH=src python tests/mann/test_golden_trace.py`"
        )
    with np.load(FIXTURE) as data:
        return {key: data[key] for key in data.files}


def test_golden_trace_matches_snapshot_by_value(snapshot):
    current = compute_snapshot()
    assert set(current) == set(snapshot)
    for key, expected in snapshot.items():
        np.testing.assert_allclose(
            current[key],
            expected,
            rtol=0.0,
            atol=SNAPSHOT_ATOL,
            err_msg=f"golden trace field {key!r} drifted from the snapshot",
        )


def test_batch_engine_matches_snapshot_by_value(snapshot):
    """The vectorised path is held to the same pinned values."""
    weights, story, question, n_sentences = reference_setup()
    trace = BatchInferenceEngine(weights).forward_trace(
        story[None], question[None], np.array([n_sentences])
    )
    n = n_sentences
    np.testing.assert_allclose(
        trace.mem_a[0, :n], snapshot["mem_a"], rtol=0.0, atol=SNAPSHOT_ATOL
    )
    np.testing.assert_allclose(
        np.stack([k[0] for k in trace.keys]),
        snapshot["keys"],
        rtol=0.0,
        atol=SNAPSHOT_ATOL,
    )
    np.testing.assert_allclose(
        np.stack([a[0, :n] for a in trace.attentions]),
        snapshot["attentions"],
        rtol=0.0,
        atol=SNAPSHOT_ATOL,
    )
    np.testing.assert_allclose(
        trace.logits[0], snapshot["logits"], rtol=0.0, atol=SNAPSHOT_ATOL
    )
    assert int(trace.predictions[0]) == int(snapshot["prediction"])


if __name__ == "__main__":
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(FIXTURE, **compute_snapshot())
    print(f"wrote {FIXTURE}")
