"""Tests for training convergence and the golden inference engine."""

import numpy as np
import pytest

from repro.babi import generate_task_dataset
from repro.mann import (
    InferenceEngine,
    MannConfig,
    MemoryNetwork,
    Trainer,
    train_task_model,
)
from repro.mann.weights import MannWeights


class TestTrainer:
    def test_loss_decreases(self):
        train, _ = generate_task_dataset(1, 60, 10, seed=4)
        result = train_task_model(
            train, epochs=15, seed=0, target_accuracy=None
        )
        assert result.train_losses[-1] < result.train_losses[0]

    def test_beats_majority_baseline(self, task1_system):
        result = task1_system["result"]
        assert result.test_accuracy > result.majority_accuracy + 0.2

    def test_early_stop_on_target(self):
        train, _ = generate_task_dataset(1, 60, 10, seed=4)
        result = train_task_model(train, epochs=100, target_accuracy=0.6, seed=0)
        assert result.epochs_run < 100

    def test_unknown_optimizer_rejected(self):
        cfg = MannConfig(vocab_size=10, embed_dim=4, memory_size=3)
        with pytest.raises(ValueError):
            Trainer(MemoryNetwork(cfg), optimizer="rmsprop")

    def test_pad_rows_stay_zero_through_training(self, task1_system):
        weights = task1_system["weights"]
        assert np.array_equal(weights.w_emb_a[0], np.zeros(weights.w_emb_a.shape[1]))
        assert np.array_equal(weights.w_emb_q[0], np.zeros(weights.w_emb_q.shape[1]))

    def test_history_lengths_match(self, task1_system):
        result = task1_system["result"]
        assert len(result.train_losses) == result.epochs_run
        assert len(result.train_accuracies) == result.epochs_run


class TestMannWeights:
    def test_shape_validation(self):
        cfg = MannConfig(vocab_size=5, embed_dim=3, memory_size=2)
        with pytest.raises(ValueError):
            MannWeights(
                config=cfg,
                w_emb_a=np.zeros((5, 3)),
                w_emb_c=np.zeros((5, 3)),
                w_emb_q=np.zeros((5, 4)),  # wrong
                w_r=np.zeros((3, 3)),
                w_o=np.zeros((5, 3)),
                t_a=np.zeros((2, 3)),
                t_c=np.zeros((2, 3)),
            )

    def test_num_parameters_and_bytes(self, task1_system):
        w = task1_system["weights"]
        v, e = w.w_emb_a.shape
        l = w.t_a.shape[0]
        expected = 4 * v * e + e * e + 2 * l * e
        assert w.num_parameters() == expected
        assert w.nbytes() == expected * 4


class TestInferenceEngine:
    def test_matches_autograd_model(self, task1_system):
        engine = task1_system["engine"]
        batch = task1_system["test_batch"]
        model = task1_system["result"].model
        golden = engine.logits_batch(
            batch.stories, batch.questions, batch.story_lengths
        )
        auto = model.forward(
            batch.stories, batch.questions, batch.story_lengths
        ).data
        assert np.allclose(golden, auto, atol=1e-10)

    def test_predictions_match_model(self, task1_system):
        engine = task1_system["engine"]
        batch = task1_system["test_batch"]
        model = task1_system["result"].model
        golden = engine.predict(batch.stories, batch.questions, batch.story_lengths)
        auto = model.predict(batch.stories, batch.questions, batch.story_lengths)
        assert np.array_equal(golden, auto)

    def test_trace_structure(self, task1_system):
        engine = task1_system["engine"]
        batch = task1_system["test_batch"]
        n = int(batch.story_lengths[0])
        trace = engine.forward_trace(batch.stories[0], batch.questions[0], n)
        hops = engine.config.hops
        e = engine.config.embed_dim
        assert trace.mem_a.shape == (n, e)
        assert len(trace.keys) == hops
        assert len(trace.attentions) == hops
        assert len(trace.controller_outputs) == hops
        assert trace.logits.shape == (engine.config.vocab_size,)
        assert trace.prediction == int(np.argmax(trace.logits))

    def test_attention_is_distribution(self, task1_system):
        engine = task1_system["engine"]
        batch = task1_system["test_batch"]
        trace = engine.forward_trace(
            batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
        )
        for attention in trace.attentions:
            assert np.all(attention >= 0)
            assert np.isclose(attention.sum(), 1.0)

    def test_recurrence_feeds_keys(self, task1_system):
        """Key of hop t+1 must equal controller output of hop t (Eq. 3)."""
        engine = task1_system["engine"]
        batch = task1_system["test_batch"]
        trace = engine.forward_trace(
            batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
        )
        for t in range(1, len(trace.keys)):
            assert np.array_equal(trace.keys[t], trace.controller_outputs[t - 1])

    def test_n_sentences_inferred_when_omitted(self, task1_system):
        engine = task1_system["engine"]
        batch = task1_system["test_batch"]
        explicit = engine.forward_trace(
            batch.stories[0], batch.questions[0], int(batch.story_lengths[0])
        )
        inferred = engine.forward_trace(batch.stories[0], batch.questions[0])
        assert explicit.prediction == inferred.prediction
        assert np.array_equal(explicit.logits, inferred.logits)

    def test_invalid_n_sentences_rejected(self, task1_system):
        engine = task1_system["engine"]
        batch = task1_system["test_batch"]
        with pytest.raises(ValueError):
            engine.forward_trace(batch.stories[0], batch.questions[0], 0)
        with pytest.raises(ValueError):
            engine.forward_trace(
                batch.stories[0], batch.questions[0],
                engine.config.memory_size + 1,
            )

    def test_embed_sentence_skips_pads(self, task1_system):
        engine = task1_system["engine"]
        w = task1_system["weights"]
        indices = np.array([3, 0, 5, 0])
        out = engine.embed_sentence(indices, w.w_emb_a)
        assert np.allclose(out, w.w_emb_a[3] + w.w_emb_a[5])

    def test_embed_empty_sentence_is_zero(self, task1_system):
        engine = task1_system["engine"]
        w = task1_system["weights"]
        out = engine.embed_sentence(np.zeros(4, dtype=int), w.w_emb_a)
        assert np.array_equal(out, np.zeros(w.w_emb_a.shape[1]))

    def test_accuracy_helper(self, task1_system):
        engine = task1_system["engine"]
        batch = task1_system["test_batch"]
        acc = engine.accuracy(
            batch.stories, batch.questions, batch.answers, batch.story_lengths
        )
        assert 0.0 <= acc <= 1.0
        assert acc > 0.5  # trained model on a learnable task
