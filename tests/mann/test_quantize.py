"""Tests for fixed-point weight quantization."""

import numpy as np
import pytest

from repro.mann import InferenceEngine
from repro.mann.quantize import QFormat, accuracy_vs_bits, quantize_weights


class TestQFormat:
    def test_validation(self):
        with pytest.raises(ValueError):
            QFormat(-1, 4)
        with pytest.raises(ValueError):
            QFormat(0, 0)

    def test_word_width(self):
        assert QFormat(3, 12).total_bits == 16
        assert QFormat(0, 7).total_bits == 8

    def test_resolution_and_range(self):
        q = QFormat(2, 4)
        assert q.resolution == pytest.approx(1 / 16)
        assert q.max_value == pytest.approx(4 - 1 / 16)
        assert q.min_value == -4.0

    def test_quantize_rounds_to_grid(self):
        q = QFormat(2, 2)  # resolution 0.25
        assert q.quantize(np.array([0.3]))[0] == pytest.approx(0.25)
        assert q.quantize(np.array([0.38]))[0] == pytest.approx(0.5)

    def test_saturation(self):
        q = QFormat(1, 2)
        out = q.quantize(np.array([100.0, -100.0]))
        assert out[0] == pytest.approx(q.max_value)
        assert out[1] == pytest.approx(q.min_value)

    def test_grid_values_are_fixed_points(self):
        q = QFormat(3, 8)
        values = np.random.default_rng(0).normal(size=100)
        snapped = q.quantize(values)
        assert np.array_equal(q.quantize(snapped), snapped)  # idempotent

    def test_integer_roundtrip(self):
        q = QFormat(2, 6)
        values = np.random.default_rng(1).uniform(-3, 3, size=50)
        codes = q.to_integers(values)
        assert np.allclose(q.from_integers(codes), q.quantize(values))

    def test_str(self):
        assert str(QFormat(3, 12)) == "Q3.12"

    def test_finer_precision_less_error(self):
        values = np.random.default_rng(2).normal(size=200)
        coarse = np.abs(QFormat(3, 2).quantize(values) - values).max()
        fine = np.abs(QFormat(3, 10).quantize(values) - values).max()
        assert fine < coarse


class TestQuantizeWeights:
    def test_all_matrices_on_grid(self, task1_system):
        q = QFormat(3, 8)
        quantized, _ = quantize_weights(task1_system["weights"], q)
        for name in ("w_emb_a", "w_o", "w_r", "t_a"):
            matrix = getattr(quantized, name)
            assert np.array_equal(q.quantize(matrix), matrix)

    def test_error_bounded_by_half_lsb(self, task1_system):
        q = QFormat(3, 8)
        _, report = quantize_weights(task1_system["weights"], q)
        # No saturation expected for N(0, 0.1)-scale weights.
        assert all(v == 0.0 for v in report.saturated_fraction.values())
        assert report.worst_max_abs_error <= q.resolution / 2 + 1e-12

    def test_compression_ratio(self, task1_system):
        _, report = quantize_weights(task1_system["weights"], QFormat(3, 12))
        assert report.compression_ratio == pytest.approx(32 / 16)

    def test_config_preserved(self, task1_system):
        quantized, _ = quantize_weights(task1_system["weights"], QFormat(3, 8))
        assert quantized.config is task1_system["weights"].config

    def test_original_untouched(self, task1_system):
        before = task1_system["weights"].w_o.copy()
        quantize_weights(task1_system["weights"], QFormat(1, 2))
        assert np.array_equal(before, task1_system["weights"].w_o)


class TestAccuracyVsBits:
    def test_accuracy_holds_at_high_precision(self, task1_system):
        batch = task1_system["test_batch"]

        def evaluate(weights):
            return InferenceEngine(weights).accuracy(
                batch.stories, batch.questions, batch.answers, batch.story_lengths
            )

        baseline = evaluate(task1_system["weights"])
        sweep = accuracy_vs_bits(
            task1_system["weights"], evaluate, frac_bits_sweep=(10, 8, 2)
        )
        accuracy_by_bits = {q.frac_bits: acc for q, acc, _ in sweep}
        assert accuracy_by_bits[10] >= baseline - 0.02
        assert accuracy_by_bits[8] >= baseline - 0.05
        # 2 fractional bits destroys the N(0, 0.1)-scale weights.
        assert accuracy_by_bits[2] < baseline

    def test_report_bytes_shrink_with_bits(self, task1_system):
        batch = task1_system["test_batch"]
        evaluate = lambda w: 0.0  # noqa: E731 - accuracy unused here
        sweep = accuracy_vs_bits(
            task1_system["weights"], evaluate, frac_bits_sweep=(12, 6)
        )
        assert sweep[0][2].quantized_bytes > sweep[1][2].quantized_bytes
