"""Golden-parity property tests for the vectorised batch engine.

The batch engine must reproduce the per-example golden engine
(`forward_trace`) on arbitrary weights and ragged batches — including
weights whose pad embedding row is NOT zero, stories with interior
all-pad sentences, single-sentence stories and all-pad questions — to
within float tolerance, across many random seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mann import (
    BatchInferenceEngine,
    InferenceEngine,
    MannConfig,
    MannWeights,
)

ATOL = 1e-10


def random_weights(
    rng: np.random.Generator,
    vocab: int = 13,
    embed: int = 6,
    memory: int = 5,
    hops: int = 3,
    dtype=np.float64,
) -> MannWeights:
    """Dense random weights — deliberately without a zeroed pad row."""
    config = MannConfig(
        vocab_size=vocab, embed_dim=embed, memory_size=memory, hops=hops
    )

    def m(*shape):
        return rng.normal(0.0, 1.0, size=shape).astype(dtype)

    return MannWeights(
        config=config,
        w_emb_a=m(vocab, embed),
        w_emb_c=m(vocab, embed),
        w_emb_q=m(vocab, embed),
        w_r=m(embed, embed),
        w_o=m(vocab, embed),
        t_a=m(memory, embed),
        t_c=m(memory, embed),
    )


def random_batch(
    rng: np.random.Generator,
    vocab: int = 13,
    memory: int = 5,
    sentence_len: int = 4,
    batch: int = 12,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ragged stories: random lengths, random interior pads."""
    stories = rng.integers(1, vocab, size=(batch, memory, sentence_len))
    questions = rng.integers(1, vocab, size=(batch, sentence_len))
    lengths = rng.integers(1, memory + 1, size=batch)
    # Zero everything past each story's length and sprinkle pad tokens
    # inside real sentences (including some fully-pad sentences).
    slot_mask = np.arange(memory)[None, :] < lengths[:, None]
    stories *= slot_mask[:, :, None]
    stories[rng.random(stories.shape) < 0.25] = 0
    questions[rng.random(questions.shape) < 0.25] = 0
    return stories.astype(np.int64), questions.astype(np.int64), lengths


def golden_stack(engine: InferenceEngine, stories, questions, lengths):
    """Per-example forward_trace results stacked the seed way."""
    logits, preds, h_final = [], [], []
    for i in range(len(stories)):
        trace = engine.forward_trace(stories[i], questions[i], int(lengths[i]))
        logits.append(trace.logits)
        preds.append(trace.prediction)
        h_final.append(trace.h_final)
    return np.stack(logits), np.array(preds), np.stack(h_final)


@pytest.mark.parametrize("seed", range(12))
def test_batch_matches_golden_on_ragged_batches(seed):
    rng = np.random.default_rng(seed)
    weights = random_weights(rng)
    stories, questions, lengths = random_batch(rng)
    golden = InferenceEngine(weights)
    batch = BatchInferenceEngine(weights)

    g_logits, g_preds, g_h = golden_stack(golden, stories, questions, lengths)
    b_logits = batch.logits(stories, questions, lengths)
    b_preds = batch.predict(stories, questions, lengths)
    trace = batch.forward_trace(stories, questions, lengths)

    assert np.allclose(b_logits, g_logits, atol=ATOL)
    assert np.array_equal(b_preds, g_preds)
    assert np.allclose(trace.h_final, g_h, atol=ATOL)
    assert np.allclose(trace.logits, b_logits, atol=ATOL)
    assert np.array_equal(trace.predictions, b_preds)


@pytest.mark.parametrize("seed", range(6))
def test_batch_trace_intermediates_match_golden(seed):
    rng = np.random.default_rng(100 + seed)
    weights = random_weights(rng, hops=2)
    stories, questions, lengths = random_batch(rng)
    golden = InferenceEngine(weights)
    trace = BatchInferenceEngine(weights).forward_trace(
        stories, questions, lengths
    )

    for i in range(len(stories)):
        n = int(lengths[i])
        g = golden.forward_trace(stories[i], questions[i], n)
        assert np.allclose(trace.mem_a[i, :n], g.mem_a, atol=ATOL)
        assert np.allclose(trace.mem_c[i, :n], g.mem_c, atol=ATOL)
        # Pad slots carry zero memory rows and zero attention mass.
        assert np.all(trace.mem_a[i, n:] == 0)
        assert np.all(trace.mem_c[i, n:] == 0)
        for t in range(weights.config.hops):
            assert np.allclose(trace.keys[t][i], g.keys[t], atol=ATOL)
            assert np.allclose(trace.scores[t][i, :n], g.scores[t], atol=ATOL)
            assert np.all(np.isneginf(trace.scores[t][i, n:]))
            assert np.allclose(
                trace.attentions[t][i, :n], g.attentions[t], atol=ATOL
            )
            assert np.all(trace.attentions[t][i, n:] == 0)
            assert np.isclose(trace.attentions[t][i].sum(), 1.0)
            assert np.allclose(trace.reads[t][i], g.reads[t], atol=ATOL)
            assert np.allclose(
                trace.controller_outputs[t][i], g.controller_outputs[t],
                atol=ATOL,
            )


@pytest.mark.parametrize("seed", range(8))
def test_inferred_lengths_match_golden_inference(seed):
    """With lengths omitted, both engines infer per-example lengths."""
    rng = np.random.default_rng(200 + seed)
    weights = random_weights(rng)
    stories, questions, lengths = random_batch(rng)
    golden = InferenceEngine(weights)
    batch = BatchInferenceEngine(weights)

    g_logits = np.stack(
        [
            golden.forward_trace(stories[i], questions[i]).logits
            for i in range(len(stories))
        ]
    )
    assert np.allclose(batch.logits(stories, questions), g_logits, atol=ATOL)


def test_degenerate_cases_match_golden():
    rng = np.random.default_rng(7)
    weights = random_weights(rng, memory=4)
    golden = InferenceEngine(weights)
    batch = BatchInferenceEngine(weights)

    memory, width = 4, 4
    one_sentence = np.zeros((memory, width), dtype=np.int64)
    one_sentence[0] = [3, 0, 5, 1]
    all_pad_story = np.zeros((memory, width), dtype=np.int64)
    full_story = rng.integers(1, 13, size=(memory, width))
    stories = np.stack([one_sentence, all_pad_story, full_story])
    questions = np.array(
        [[2, 4, 0, 0], [0, 0, 0, 0], [7, 7, 7, 7]], dtype=np.int64
    )
    lengths = np.array([1, 1, memory])

    g_logits, g_preds, _ = golden_stack(golden, stories, questions, lengths)
    assert np.allclose(
        batch.logits(stories, questions, lengths), g_logits, atol=ATOL
    )
    assert np.array_equal(batch.predict(stories, questions, lengths), g_preds)

    # A single-example batch degenerates cleanly too.
    assert np.allclose(
        batch.logits(stories[:1], questions[:1], lengths[:1]),
        g_logits[:1],
        atol=ATOL,
    )


def test_batch_validates_inputs():
    rng = np.random.default_rng(0)
    weights = random_weights(rng, memory=5)
    batch = BatchInferenceEngine(weights)
    stories = np.ones((2, 5, 4), dtype=np.int64)
    questions = np.ones((2, 4), dtype=np.int64)

    with pytest.raises(ValueError):
        batch.logits(stories[0], questions)  # 2-D stories
    with pytest.raises(ValueError):
        batch.logits(stories, questions[0])  # 1-D questions
    with pytest.raises(ValueError):
        batch.logits(stories, questions, np.array([0, 3]))  # length < 1
    with pytest.raises(ValueError):
        batch.logits(stories, questions, np.array([6, 3]))  # length > L
    with pytest.raises(ValueError):
        batch.logits(stories, questions, np.array([3]))  # wrong shape
    with pytest.raises(ValueError):
        batch.logits(np.ones((2, 9, 4), dtype=np.int64), questions)  # L > mem


def test_engine_batch_helpers_delegate_to_batch_engine():
    """InferenceEngine.predict/logits_batch/accuracy run the batch path."""
    rng = np.random.default_rng(3)
    weights = random_weights(rng)
    stories, questions, lengths = random_batch(rng, batch=6)
    engine = InferenceEngine(weights)

    assert isinstance(engine.batch, BatchInferenceEngine)
    assert engine.batch is engine.batch  # cached
    assert np.allclose(
        engine.logits_batch(stories, questions, lengths),
        engine.batch.logits(stories, questions, lengths),
    )
    answers = engine.predict(stories, questions, lengths)
    assert engine.accuracy(stories, questions, answers, lengths) == 1.0


class TestEmbeddingDtype:
    """Regression: embeddings must follow the matrix dtype, including
    the empty-sentence zero vector (previously always float64)."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_golden_empty_sentence_dtype(self, dtype):
        rng = np.random.default_rng(1)
        weights = random_weights(rng, dtype=dtype)
        engine = InferenceEngine(weights)
        out = engine.embed_sentence(np.zeros(4, dtype=np.int64), weights.w_emb_a)
        assert out.dtype == dtype
        assert np.array_equal(out, np.zeros(weights.config.embed_dim, dtype))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_batch_embedding_dtype(self, dtype):
        rng = np.random.default_rng(2)
        weights = random_weights(rng, dtype=dtype)
        batch = BatchInferenceEngine(weights)
        indices = np.array([[0, 0, 0, 0], [3, 0, 5, 0]], dtype=np.int64)
        out = batch.embed_sentences(indices, weights.w_emb_a)
        assert out.dtype == dtype
        assert np.array_equal(out[0], np.zeros(weights.config.embed_dim, dtype))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_logits_dtype_follows_weights(self, dtype):
        rng = np.random.default_rng(4)
        weights = random_weights(rng, dtype=dtype)
        stories, questions, lengths = random_batch(rng, batch=3)
        engine = InferenceEngine(weights)
        assert engine.logits_batch(stories, questions, lengths).dtype == dtype
        assert (
            engine.forward_trace(stories[0], questions[0], int(lengths[0]))
            .logits.dtype
            == dtype
        )
