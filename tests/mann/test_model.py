"""Tests for the MemN2N model and its configuration."""

import numpy as np
import pytest

from repro.babi import generate_task_dataset
from repro.mann import MannConfig, MemoryNetwork
from repro.nn import cross_entropy


class TestMannConfig:
    def test_defaults(self):
        cfg = MannConfig(vocab_size=50)
        assert cfg.embed_dim == 20
        assert cfg.hops == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MannConfig(vocab_size=1)
        with pytest.raises(ValueError):
            MannConfig(vocab_size=10, embed_dim=0)
        with pytest.raises(ValueError):
            MannConfig(vocab_size=10, memory_size=0)
        with pytest.raises(ValueError):
            MannConfig(vocab_size=10, hops=0)

    def test_with_memory_size(self):
        cfg = MannConfig(vocab_size=10, memory_size=5)
        assert cfg.with_memory_size(9).memory_size == 9
        assert cfg.with_memory_size(9).vocab_size == 10


class TestMemoryNetwork:
    @pytest.fixture()
    def setup(self):
        train, test = generate_task_dataset(1, 30, 10, seed=2)
        cfg = MannConfig(
            vocab_size=train.vocab_size,
            embed_dim=8,
            memory_size=train.memory_size,
            hops=2,
            seed=0,
        )
        return MemoryNetwork(cfg), train.encode(), cfg

    def test_forward_shape(self, setup):
        model, batch, cfg = setup
        logits = model.forward(batch.stories, batch.questions, batch.story_lengths)
        assert logits.shape == (len(batch), cfg.vocab_size)

    def test_pad_rows_zero_after_init(self, setup):
        model, _, _ = setup
        assert np.array_equal(model.w_emb_a.data[0], np.zeros(8))
        assert np.array_equal(model.w_emb_q.data[0], np.zeros(8))

    def test_forward_rejects_wrong_rank(self, setup):
        model, batch, _ = setup
        with pytest.raises(ValueError):
            model.forward(batch.stories[0], batch.questions)
        with pytest.raises(ValueError):
            model.forward(batch.stories, batch.questions[0])

    def test_forward_rejects_wrong_memory(self, setup):
        model, batch, _ = setup
        with pytest.raises(ValueError):
            model.forward(batch.stories[:, :2], batch.questions)

    def test_padding_slots_masked(self, setup):
        """Extending a story with pad slots must not change the logits."""
        model, batch, cfg = setup
        logits = model.forward(
            batch.stories, batch.questions, batch.story_lengths
        ).data
        # Without lengths, pad slots would receive temporal encodings and
        # change the result.
        logits_nolen = model.forward(batch.stories, batch.questions).data
        short = batch.story_lengths < cfg.memory_size
        assert short.any()
        assert not np.allclose(logits[short], logits_nolen[short])

    def test_deterministic_for_seed(self, setup):
        _, batch, cfg = setup
        a = MemoryNetwork(cfg).forward(batch.stories, batch.questions).data
        b = MemoryNetwork(cfg).forward(batch.stories, batch.questions).data
        assert np.array_equal(a, b)

    def test_gradients_reach_all_parameters(self, setup):
        model, batch, _ = setup
        logits = model.forward(batch.stories, batch.questions, batch.story_lengths)
        loss = cross_entropy(logits, batch.answers)
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"
            assert np.isfinite(p.grad).all()

    def test_zero_pad_rows(self, setup):
        model, _, _ = setup
        model.w_emb_a.data[0] = 1.0
        model.zero_pad_rows()
        assert np.array_equal(model.w_emb_a.data[0], np.zeros(8))

    def test_export_weights_shapes(self, setup):
        model, _, cfg = setup
        w = model.export_weights()
        assert w.w_emb_a.shape == (cfg.vocab_size, cfg.embed_dim)
        assert w.w_r.shape == (cfg.embed_dim, cfg.embed_dim)
        assert w.t_a.shape == (cfg.memory_size, cfg.embed_dim)

    def test_export_weights_is_copy(self, setup):
        model, _, _ = setup
        w = model.export_weights()
        model.w_r.data[...] = 0.0
        assert not np.array_equal(w.w_r, model.w_r.data)

    def test_no_temporal_encoding_option(self):
        cfg = MannConfig(
            vocab_size=10, embed_dim=4, memory_size=3, temporal_encoding=False
        )
        model = MemoryNetwork(cfg)
        assert np.array_equal(model.t_a.data, np.zeros((3, 4)))

    def test_predict_returns_labels(self, setup):
        model, batch, cfg = setup
        preds = model.predict(batch.stories, batch.questions, batch.story_lengths)
        assert preds.shape == (len(batch),)
        assert (preds >= 0).all() and (preds < cfg.vocab_size).all()
