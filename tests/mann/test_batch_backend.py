"""BatchInferenceEngine with a pluggable MIPS output backend."""

import numpy as np
import pytest

from repro.babi import generate_task_dataset
from repro.mann import BatchInferenceEngine, InferenceEngine, MemoryNetwork
from repro.mann.config import MannConfig
from repro.mips import ExactMips, InferenceThresholding


@pytest.fixture(scope="module")
def untrained():
    train, _ = generate_task_dataset(task_id=2, n_train=40, n_test=5, seed=13)
    batch = train.encode()
    config = MannConfig(
        vocab_size=train.vocab_size,
        embed_dim=16,
        memory_size=train.memory_size,
        seed=9,
    )
    weights = MemoryNetwork(config).export_weights()
    return weights, batch


class TestExactBackendParity:
    def test_bit_identical_to_golden_trace(self, untrained):
        """Acceptance: the exact backend reproduces the golden argmax."""
        weights, batch = untrained
        golden = InferenceEngine(weights)
        reference = np.array(
            [
                golden.forward_trace(
                    batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
                ).prediction
                for i in range(len(batch))
            ]
        )
        engine = BatchInferenceEngine(weights, mips_backend="exact")
        preds = engine.predict(batch.stories, batch.questions, batch.story_lengths)
        assert np.array_equal(preds, reference)

        # And bit-identical to the plain tensor-argmax path.
        plain = BatchInferenceEngine(weights)
        assert np.array_equal(
            preds, plain.predict(batch.stories, batch.questions, batch.story_lengths)
        )

    def test_trace_carries_search_stats(self, untrained):
        weights, batch = untrained
        engine = BatchInferenceEngine(weights, mips_backend="exact")
        trace = engine.forward_trace(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert trace.search is not None
        assert np.array_equal(trace.predictions, trace.search.labels)
        assert (trace.comparisons == weights.config.vocab_size).all()
        assert not trace.early_exits.any()
        # Full logits remain available for analysis alongside the search.
        assert trace.logits.shape == (len(batch), weights.config.vocab_size)
        assert np.array_equal(np.argmax(trace.logits, axis=1), trace.predictions)

    def test_trace_without_backend_has_no_search(self, untrained):
        weights, batch = untrained
        trace = BatchInferenceEngine(weights).forward_trace(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert trace.search is None
        with pytest.raises(ValueError):
            _ = trace.comparisons
        with pytest.raises(ValueError):
            _ = trace.early_exits


class TestThresholdBackend:
    def test_matches_software_ith_engine(self, task1_system):
        weights = task1_system["weights"]
        batch = task1_system["test_batch"]
        tm = task1_system["threshold_model"]
        engine = BatchInferenceEngine(
            weights, mips_backend="threshold", threshold_model=tm, rho=1.0
        )
        results = engine.search(batch.stories, batch.questions, batch.story_lengths)

        sw = InferenceThresholding(weights.w_o, tm, rho=1.0)
        golden = task1_system["engine"]
        for i in range(len(batch)):
            h = golden.forward_trace(
                batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
            ).h_final
            expected = sw.search(h)
            assert results.labels[i] == expected.label
            assert results.comparisons[i] == expected.comparisons
            assert results.early_exits[i] == expected.early_exit

    def test_some_early_exits_on_trained_model(self, task1_system):
        weights = task1_system["weights"]
        batch = task1_system["test_batch"]
        engine = BatchInferenceEngine(
            weights,
            mips_backend="threshold",
            threshold_model=task1_system["threshold_model"],
        )
        trace = engine.forward_trace(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert trace.early_exits.any()
        assert trace.search.mean_comparisons < weights.config.vocab_size


class TestBackendResolution:
    def test_accepts_prebuilt_instance(self, untrained):
        weights, batch = untrained
        backend = ExactMips(weights.w_o)
        engine = BatchInferenceEngine(weights, backend)
        assert engine.mips is backend
        preds = engine.predict(batch.stories, batch.questions, batch.story_lengths)
        assert preds.shape == (len(batch),)

    def test_rejects_vocab_mismatch(self, untrained, rng):
        weights, _ = untrained
        wrong = ExactMips(rng.normal(size=(weights.config.vocab_size + 1, 4)))
        with pytest.raises(ValueError, match="vocabulary"):
            BatchInferenceEngine(weights, wrong)

    def test_rejects_params_without_backend(self, untrained):
        weights, _ = untrained
        with pytest.raises(ValueError):
            BatchInferenceEngine(weights, rho=0.9)

    def test_search_requires_backend(self, untrained):
        weights, batch = untrained
        with pytest.raises(ValueError, match="mips_backend"):
            BatchInferenceEngine(weights).search(
                batch.stories, batch.questions, batch.story_lengths
            )

    def test_inference_engine_validates_at_construction(self, untrained):
        weights, _ = untrained
        with pytest.raises(ValueError):
            InferenceEngine(weights, rho=0.9)  # params without a backend
        with pytest.raises(ValueError, match="ThresholdModel"):
            InferenceEngine(weights, "threshold")  # model forgotten
        with pytest.raises(KeyError):
            InferenceEngine(weights, "no-such-backend")

    def test_inference_engine_passthrough(self, task1_system):
        weights = task1_system["weights"]
        batch = task1_system["test_batch"]
        engine = InferenceEngine(
            weights,
            mips_backend="threshold",
            threshold_model=task1_system["threshold_model"],
        )
        results = engine.search_batch(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert len(results) == len(batch)
        assert np.array_equal(
            engine.predict(batch.stories, batch.questions, batch.story_lengths),
            results.labels,
        )