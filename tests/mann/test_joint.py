"""Tests for joint multi-task training."""

import numpy as np
import pytest

from repro.mann.joint import build_joint_dataset, train_joint_model


class TestBuildJointDataset:
    def test_merges_tasks(self):
        joint = build_joint_dataset((1, 6), n_per_task=10, seed=0)
        assert len(joint.dataset) == 20
        assert set(joint.task_of_example.tolist()) == {1, 6}

    def test_task_indices(self):
        joint = build_joint_dataset((1, 6), n_per_task=10, seed=0)
        idx1 = joint.task_indices(1)
        idx6 = joint.task_indices(6)
        assert len(idx1) == 10
        assert len(idx6) == 10
        assert not set(idx1) & set(idx6)

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            build_joint_dataset((), n_per_task=5, seed=0)

    def test_encoding_covers_all_tasks(self):
        joint = build_joint_dataset((1, 4, 15), n_per_task=8, seed=1)
        batch = joint.dataset.encode()
        assert batch.stories.shape[0] == 24


class TestTrainJointModel:
    @pytest.fixture(scope="class")
    def joint(self):
        return train_joint_model(
            task_ids=(1, 6),
            n_train_per_task=80,
            n_test_per_task=30,
            embed_dim=16,
            epochs=25,
            seed=5,
        )

    def test_per_task_accuracy_reported(self, joint):
        assert set(joint.per_task_accuracy) == {1, 6}
        for accuracy in joint.per_task_accuracy.values():
            assert 0.0 <= accuracy <= 1.0

    def test_single_model_learns_both_tasks(self, joint):
        """One weight set must beat chance on both task types."""
        for task_id, accuracy in joint.per_task_accuracy.items():
            idx = joint.test.task_indices(task_id)
            answers = joint.test.dataset.encode().answers[idx]
            _, counts = np.unique(answers, return_counts=True)
            majority = counts.max() / counts.sum()
            assert accuracy >= majority - 0.1, (
                f"task {task_id}: {accuracy:.2f} vs majority {majority:.2f}"
            )

    def test_mean_accuracy(self, joint):
        assert joint.mean_accuracy == pytest.approx(
            np.mean(list(joint.per_task_accuracy.values()))
        )

    def test_joint_model_runs_on_accelerator(self, joint):
        """A jointly trained model is one transfer serving all tasks."""
        from repro.hw import HwConfig, MannAccelerator

        weights = joint.model.export_weights()
        config = HwConfig(frequency_mhz=50.0).with_embed_dim(
            weights.config.embed_dim
        )
        batch = joint.test.dataset.encode()
        report = MannAccelerator(weights, config).run(batch)
        golden = joint.engine.predict(
            batch.stories, batch.questions, batch.story_lengths
        )
        assert np.array_equal(report.predictions, golden)
