"""Tests for attention analysis utilities."""

import pytest

from repro.mann.analysis import attention_statistics, hop_contributions


class TestAttentionStatistics:
    @pytest.fixture(scope="class")
    def stats(self, task1_system):
        return attention_statistics(
            task1_system["engine"], task1_system["test"], max_examples=60
        )

    def test_structure(self, stats, task1_system):
        hops = task1_system["engine"].config.hops
        assert len(stats.support_recall_per_hop) == hops
        assert len(stats.mean_entropy_per_hop) == hops
        assert stats.n_examples > 0

    def test_recall_bounds(self, stats):
        for r in stats.support_recall_per_hop:
            assert 0.0 <= r <= 1.0
        assert 0.0 <= stats.support_recall_any_hop <= 1.0

    def test_any_hop_at_least_best_single_hop(self, stats):
        assert stats.support_recall_any_hop >= max(
            stats.support_recall_per_hop
        ) - 1e-9

    def test_trained_model_attends_to_support(self, stats):
        """A converged task-1 model should find the supporting fact in
        at least one hop for most examples."""
        assert stats.support_recall_any_hop > 0.5

    def test_max_attention_bounds(self, stats):
        for m in stats.mean_max_attention_per_hop:
            assert 0.0 < m <= 1.0

    def test_summary_text(self, stats):
        assert "supporting-fact recall" in stats.summary()


class TestHopContributions:
    def test_norms_positive(self, task1_system):
        contrib = hop_contributions(
            task1_system["engine"], task1_system["test"], max_examples=30
        )
        hops = task1_system["engine"].config.hops
        assert len(contrib.read_norms) == hops
        assert all(n > 0 for n in contrib.read_norms)
        assert all(n >= 0 for n in contrib.carry_norms)

    def test_dominance_in_unit_interval(self, task1_system):
        contrib = hop_contributions(
            task1_system["engine"], task1_system["test"], max_examples=30
        )
        for d in contrib.read_dominance_per_hop:
            assert 0.0 <= d <= 1.0
