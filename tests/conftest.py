"""Shared fixtures: small trained systems reused across test modules.

Training is the slow part, so one small task-1 system and one two-task
suite are built once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.babi import generate_task_dataset
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.mann import InferenceEngine, train_task_model
from repro.mips import fit_threshold_model


@pytest.fixture(scope="session")
def task1_system():
    """A trained task-1 model plus everything inference needs."""
    train, test = generate_task_dataset(task_id=1, n_train=200, n_test=80, seed=11)
    result = train_task_model(train, test, epochs=40, seed=0)
    weights = result.model.export_weights()
    engine = InferenceEngine(weights)
    train_batch = train.encode()
    test_batch = test.encode()
    train_logits = engine.logits_batch(
        train_batch.stories, train_batch.questions, train_batch.story_lengths
    )
    threshold_model = fit_threshold_model(train_logits, train_batch.answers)
    return {
        "train": train,
        "test": test,
        "train_batch": train_batch,
        "test_batch": test_batch,
        "result": result,
        "weights": weights,
        "engine": engine,
        "train_logits": train_logits,
        "threshold_model": threshold_model,
    }


@pytest.fixture(scope="session")
def small_suite():
    """A three-task suite with a shared vocabulary."""
    return BabiSuite.build(
        SuiteConfig(
            task_ids=(1, 6, 15),
            n_train=120,
            n_test=40,
            epochs=25,
            seed=3,
        )
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
