"""Tests for Dropout and LayerNorm."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Dropout, LayerNorm, Tensor, gradcheck


class TestDropout:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_identity_in_eval_mode(self, rng):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(rng.normal(size=(4, 5)))
        assert np.array_equal(layer(x).data, x.data)

    def test_identity_at_p_zero(self, rng):
        layer = Dropout(0.0)
        x = Tensor(rng.normal(size=(4, 5)))
        assert np.array_equal(layer(x).data, x.data)

    def test_zeroes_and_scales_in_train_mode(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        # Surviving activations are scaled by 1/keep.
        assert set(np.unique(out)).issubset({0.0, 2.0})
        # Expected mean preserved.
        assert abs(out.mean() - 1.0) < 0.05

    def test_gradient_masks_match_forward(self):
        layer = Dropout(0.5, rng=np.random.default_rng(1))
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        # Gradient is exactly the forward mask.
        assert np.array_equal(x.grad, out.data)


class TestLayerNorm:
    def test_dim_validated(self):
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_normalises_last_axis(self, rng):
        layer = LayerNorm(8)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(6, 8)))
        out = layer(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gain_bias_applied(self, rng):
        layer = LayerNorm(4)
        layer.gain.data[...] = 2.0
        layer.bias.data[...] = 1.0
        x = Tensor(rng.normal(size=(3, 4)))
        out = layer(x).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_parameters_discovered(self):
        assert len(LayerNorm(4).parameters()) == 2

    def test_gradcheck(self, rng):
        layer = LayerNorm(5)
        w = rng.normal(size=(2, 5))
        gradcheck(
            lambda x: (layer(x) * Tensor(w)).sum(),
            rng.normal(size=(2, 5)),
        )

    def test_gradients_reach_gain_and_bias(self, rng):
        layer = LayerNorm(4)
        out = layer(Tensor(rng.normal(size=(3, 4)), requires_grad=True))
        out.sum().backward()
        assert layer.gain.grad is not None
        assert layer.bias.grad is not None
