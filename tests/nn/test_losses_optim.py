"""Tests for losses, optimisers and schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn import (
    SGD,
    Adam,
    ExponentialDecay,
    Parameter,
    StepDecay,
    cross_entropy,
    nll_loss,
    softmax_cross_entropy_grad,
)


class TestCrossEntropy:
    def test_matches_manual_nll(self, rng):
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 1, 2, 3])
        loss = cross_entropy(nn.Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        assert np.isclose(loss.item(), expected)

    def test_gradient_matches_closed_form(self, rng):
        logits = rng.normal(size=(3, 6))
        targets = np.array([2, 0, 5])
        t = nn.Tensor(logits, requires_grad=True)
        cross_entropy(t, targets).backward()
        assert np.allclose(
            t.grad, softmax_cross_entropy_grad(logits, targets), atol=1e-10
        )

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = cross_entropy(nn.Tensor(logits), np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_nll_target_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nll_loss(nn.Tensor(np.zeros((2, 3))), np.array([0]))

    def test_numerical_gradcheck(self, rng):
        targets = np.array([1, 0])
        nn.gradcheck(
            lambda x: cross_entropy(x, targets), rng.normal(size=(2, 4))
        )


class TestSGD:
    def test_step_moves_against_gradient(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        assert np.allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        p.grad = np.array([1.0])
        opt.step()
        # First step -1, second -(1 + 0.9) = -1.9, total -2.9.
        assert np.allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert np.allclose(p.data, [1.0 - 0.1 * 0.5])

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_minimises_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = (nn.Tensor(p.data, requires_grad=False) * 0).sum()  # placeholder
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 1e-4


class TestAdam:
    def test_minimises_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_bias_correction_first_step(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        # With bias correction the first step is ~lr in magnitude.
        assert np.isclose(abs(p.data[0]), 0.1, rtol=1e-3)

    def test_weight_decay_applied(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0


class TestGradClipping:
    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 10.0)
        pre_norm = opt.clip_grad_norm(1.0)
        assert pre_norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_no_clip_below_max(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([0.3, 0.4])
        opt.clip_grad_norm(1.0)
        assert np.allclose(p.grad, [0.3, 0.4])


class TestSchedules:
    def test_step_decay_halves(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepDecay(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_step_decay_invalid_step_size(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepDecay(opt, step_size=0)

    def test_exponential_decay(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = ExponentialDecay(opt, gamma=0.9)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.81)
