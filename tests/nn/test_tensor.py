"""Tests for the autograd tensor: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, gradcheck, no_grad, tensor
from repro.nn.tensor import concatenate, stack


class TestConstruction:
    def test_wraps_array_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_tensor_helper(self):
        t = tensor([[1.0, 2.0]], requires_grad=True, name="w")
        assert t.requires_grad
        assert t.name == "w"

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_repr(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len_and_size(self):
        t = Tensor(np.ones((3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2


class TestArithmeticForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.array_equal(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0]) + 2.0
        assert out.data[0] == 3.0

    def test_radd(self):
        out = 2.0 + Tensor([1.0])
        assert out.data[0] == 3.0

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([3.0])
        assert out.data[0] == 2.0

    def test_rsub(self):
        out = 5.0 - Tensor([3.0])
        assert out.data[0] == 2.0

    def test_mul_broadcast(self):
        out = Tensor(np.ones((2, 3))) * Tensor([1.0, 2.0, 3.0])
        assert np.array_equal(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_div(self):
        out = Tensor([6.0]) / Tensor([3.0])
        assert out.data[0] == 2.0

    def test_rdiv(self):
        out = 6.0 / Tensor([3.0])
        assert out.data[0] == 2.0

    def test_neg(self):
        assert (-Tensor([1.0])).data[0] == -1.0

    def test_pow(self):
        assert (Tensor([3.0]) ** 2).data[0] == 9.0

    def test_pow_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        assert np.array_equal((a @ b).data, a.data)

    def test_matmul_vec(self):
        m = Tensor([[1.0, 2.0], [3.0, 4.0]])
        v = Tensor([1.0, 1.0])
        assert np.array_equal((m @ v).data, [3.0, 7.0])


class TestBackwardBasics:
    def test_scalar_backward_default_grad(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        assert np.allclose(x.grad, [4.0])

    def test_backward_nonscalar_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_wrong_grad_shape_rejected(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(ValueError):
            y.backward(np.ones(3))

    def test_grad_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        assert np.allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_grad(self):
        # y = x*x + x*x must give dy/dx = 4x, not 2x.
        x = Tensor([3.0], requires_grad=True)
        a = x * x
        (a + a).sum().backward()
        assert np.allclose(x.grad, [12.0])

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        s = x + 1.0
        y = (s * s).sum()
        y.backward()
        assert np.allclose(x.grad, [6.0])


class TestNoGrad:
    def test_no_graph_recorded(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._parents == ()

    def test_nested_restores(self):
        with no_grad():
            with no_grad():
                pass
            x = Tensor([1.0], requires_grad=True)
            assert not x.requires_grad
        x = Tensor([1.0], requires_grad=True)
        assert x.requires_grad


class TestGradcheckOps:
    """Central-difference validation of each primitive."""

    def test_add_broadcast(self, rng):
        b = rng.normal(size=(3,))
        gradcheck(lambda x: (x + Tensor(b)).sum(), rng.normal(size=(2, 3)))

    def test_mul_broadcast(self, rng):
        b = rng.normal(size=(3,))
        gradcheck(lambda x: (x * Tensor(b)).sum(), rng.normal(size=(2, 3)))

    def test_matmul(self, rng):
        b = rng.normal(size=(4, 5))
        gradcheck(lambda x: (x @ Tensor(b)).sum(), rng.normal(size=(3, 4)))

    def test_matmul_vector_left(self, rng):
        b = rng.normal(size=(4, 5))
        gradcheck(lambda x: (x @ Tensor(b)).sum(), rng.normal(size=(4,)))

    def test_matmul_vector_right(self, rng):
        m = rng.normal(size=(3, 4))
        gradcheck(lambda x: (Tensor(m) @ x).sum(), rng.normal(size=(4,)))

    def test_div(self, rng):
        b = rng.normal(size=(3,)) + 3.0
        gradcheck(lambda x: (x / Tensor(b)).sum(), rng.normal(size=(3,)))

    def test_div_denominator(self, rng):
        a = rng.normal(size=(3,))
        gradcheck(
            lambda x: (Tensor(a) / x).sum(), rng.normal(size=(3,)) + 3.0
        )

    def test_exp(self, rng):
        gradcheck(lambda x: x.exp().sum(), rng.normal(size=(4,)))

    def test_log(self, rng):
        gradcheck(lambda x: x.log().sum(), rng.random(4) + 0.5)

    def test_tanh(self, rng):
        gradcheck(lambda x: x.tanh().sum(), rng.normal(size=(4,)))

    def test_sigmoid(self, rng):
        gradcheck(lambda x: x.sigmoid().sum(), rng.normal(size=(4,)))

    def test_relu(self, rng):
        x = rng.normal(size=(6,))
        x[np.abs(x) < 0.05] = 0.5  # keep away from the kink
        gradcheck(lambda t: t.relu().sum(), x)

    def test_abs(self, rng):
        x = rng.normal(size=(6,))
        x[np.abs(x) < 0.05] = 0.5
        gradcheck(lambda t: t.abs().sum(), x)

    def test_pow(self, rng):
        gradcheck(lambda x: (x**3).sum(), rng.random(4) + 0.5)

    def test_sum_axis(self, rng):
        gradcheck(lambda x: x.sum(axis=1).sum(), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self, rng):
        gradcheck(
            lambda x: (x.sum(axis=0, keepdims=True) ** 2).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_mean(self, rng):
        gradcheck(lambda x: x.mean(), rng.normal(size=(3, 4)))

    def test_mean_axis(self, rng):
        gradcheck(lambda x: (x.mean(axis=1) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_max(self, rng):
        x = rng.normal(size=(5,))
        gradcheck(lambda t: t.max(), x)

    def test_max_axis(self, rng):
        x = rng.normal(size=(3, 4))
        gradcheck(lambda t: t.max(axis=1).sum(), x)

    def test_reshape(self, rng):
        gradcheck(
            lambda x: (x.reshape(6) ** 2).sum(), rng.normal(size=(2, 3))
        )

    def test_transpose(self, rng):
        b = rng.normal(size=(3, 2))
        gradcheck(lambda x: (x.T * Tensor(b)).sum(), rng.normal(size=(2, 3)))

    def test_getitem(self, rng):
        gradcheck(lambda x: (x[1] ** 2).sum(), rng.normal(size=(3, 4)))

    def test_take_rows(self, rng):
        idx = np.array([0, 2, 2, 1])
        gradcheck(
            lambda x: (x.take_rows(idx) ** 2).sum(), rng.normal(size=(3, 4))
        )

    def test_softmax(self, rng):
        w = rng.normal(size=(4,))
        gradcheck(
            lambda x: (x.softmax(axis=-1) * Tensor(w)).sum(),
            rng.normal(size=(4,)),
        )

    def test_softmax_2d(self, rng):
        w = rng.normal(size=(2, 4))
        gradcheck(
            lambda x: (x.softmax(axis=1) * Tensor(w)).sum(),
            rng.normal(size=(2, 4)),
        )

    def test_log_softmax(self, rng):
        w = rng.normal(size=(2, 4))
        gradcheck(
            lambda x: (x.log_softmax(axis=1) * Tensor(w)).sum(),
            rng.normal(size=(2, 4)),
        )

    def test_concatenate(self, rng):
        b = rng.normal(size=(2, 3))
        gradcheck(
            lambda x: (concatenate([x, Tensor(b)], axis=0) ** 2).sum(),
            rng.normal(size=(2, 3)),
        )

    def test_stack(self, rng):
        b = rng.normal(size=(3,))
        gradcheck(
            lambda x: (stack([x, Tensor(b)], axis=0) ** 2).sum(),
            rng.normal(size=(3,)),
        )


class TestSoftmaxProperties:
    def test_softmax_sums_to_one(self, rng):
        s = Tensor(rng.normal(size=(5, 7))).softmax(axis=1)
        assert np.allclose(s.data.sum(axis=1), 1.0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(6,))
        a = Tensor(x).softmax().data
        b = Tensor(x + 100.0).softmax().data
        assert np.allclose(a, b)

    def test_softmax_handles_large_values(self):
        s = Tensor([1000.0, 1000.0]).softmax().data
        assert np.allclose(s, [0.5, 0.5])

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(4,))
        assert np.allclose(
            Tensor(x).log_softmax().data, np.log(Tensor(x).softmax().data)
        )
