"""Tests for Module/Linear/Embedding/Sequential."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Embedding, Linear, Module, Parameter, Sequential


class TestModule:
    def test_parameters_recursive(self):
        class Inner(Module):
            def __init__(self):
                self.w = Parameter(np.ones(2))

        class Outer(Module):
            def __init__(self):
                self.inner = Inner()
                self.b = Parameter(np.zeros(3))
                self.layers = [Inner(), Inner()]

        params = Outer().parameters()
        assert len(params) == 4

    def test_parameters_deduplicated(self):
        class Shared(Module):
            def __init__(self):
                self.a = Parameter(np.ones(2))
                self.b = self.a  # tied weight

        assert len(Shared().parameters()) == 1

    def test_named_parameters_paths(self):
        class M(Module):
            def __init__(self):
                self.lin = Linear(2, 3)

        names = dict(M().named_parameters())
        assert "lin.weight" in names
        assert "lin.bias" in names

    def test_state_dict_roundtrip(self):
        m1 = Linear(3, 2, rng=np.random.default_rng(0))
        m2 = Linear(3, 2, rng=np.random.default_rng(1))
        assert not np.array_equal(m1.weight.data, m2.weight.data)
        m2.load_state_dict(m1.state_dict())
        assert np.array_equal(m1.weight.data, m2.weight.data)

    def test_load_state_dict_missing_key_rejected(self):
        m = Linear(2, 2)
        state = m.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_rejected(self):
        m = Linear(2, 2)
        state = m.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_zero_grad(self):
        m = Linear(2, 2)
        out = m(nn.Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None

    def test_train_eval_propagate(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        seq.eval()
        assert not seq[0].training
        seq.train()
        assert seq[1].training

    def test_num_parameters(self):
        m = Linear(3, 4)
        assert m.num_parameters() == 3 * 4 + 4


class TestLinear:
    def test_forward_shape(self):
        m = Linear(4, 5)
        out = m(nn.Tensor(np.ones((2, 4))))
        assert out.shape == (2, 5)

    def test_no_bias(self):
        m = Linear(4, 5, bias=False)
        assert m.bias is None
        assert len(m.parameters()) == 1

    def test_matches_manual_computation(self):
        m = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(4, 3))
        expected = x @ m.weight.data + m.bias.data
        assert np.allclose(m(nn.Tensor(x)).data, expected)

    def test_unknown_init_rejected(self):
        with pytest.raises(ValueError):
            Linear(2, 2, init="bogus")

    def test_gradients_flow(self):
        m = Linear(3, 2)
        loss = m(nn.Tensor(np.ones((1, 3)))).sum()
        loss.backward()
        assert m.weight.grad is not None
        assert m.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4)
        out = emb(np.array([1, 2, 3]))
        assert out.shape == (3, 4)

    def test_pad_row_zero(self):
        emb = Embedding(10, 4, pad_index=0)
        assert np.array_equal(emb.weight.data[0], np.zeros(4))

    def test_bag_of_words_sums_rows(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        idx = np.array([1, 2, 0, 0])  # two real words + padding
        out = emb.bag_of_words(idx)
        expected = emb.weight.data[1] + emb.weight.data[2]
        assert np.allclose(out.data, expected)

    def test_bag_of_words_batch(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        idx = np.array([[1, 2], [3, 0]])
        out = emb.bag_of_words(idx)
        assert out.shape == (2, 4)
        assert np.allclose(out.data[1], emb.weight.data[3])

    def test_gradient_scatter_add(self):
        emb = Embedding(5, 3, rng=np.random.default_rng(0))
        idx = np.array([1, 1, 2])
        emb(idx).sum().backward()
        # Row 1 used twice, row 2 once, others never.
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[2], 1.0)
        assert np.allclose(emb.weight.grad[3], 0.0)


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Linear(2, 3), Linear(3, 4))
        out = seq(nn.Tensor(np.ones((1, 2))))
        assert out.shape == (1, 4)

    def test_len_getitem(self):
        seq = Sequential(Linear(2, 2))
        assert len(seq) == 1
        assert isinstance(seq[0], Linear)
