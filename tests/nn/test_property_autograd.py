"""Hypothesis property tests on the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, gradcheck

_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False, width=64
)


def _matrix(max_side: int = 4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=max_side),
        elements=_floats,
    )


def _vector(max_side: int = 6):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=1, min_side=1, max_side=max_side),
        elements=_floats,
    )


@settings(max_examples=30, deadline=None)
@given(_matrix())
def test_softmax_rows_are_distributions(x):
    s = Tensor(x).softmax(axis=-1).data
    assert np.all(s >= 0)
    assert np.allclose(s.sum(axis=-1), 1.0)


@settings(max_examples=30, deadline=None)
@given(_vector())
def test_softmax_shift_invariant(x):
    a = Tensor(x).softmax().data
    b = Tensor(x + 7.5).softmax().data
    assert np.allclose(a, b, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(_matrix())
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert np.array_equal(t.grad, np.ones_like(x))


@settings(max_examples=25, deadline=None)
@given(_vector())
def test_linear_combination_gradcheck(x):
    w = np.linspace(-1.0, 1.0, x.size)
    gradcheck(lambda t: (t * Tensor(w)).sum(), x)


@settings(max_examples=20, deadline=None)
@given(_vector(max_side=5))
def test_tanh_gradcheck(x):
    gradcheck(lambda t: t.tanh().sum(), x)


@settings(max_examples=20, deadline=None)
@given(_matrix(max_side=3), _matrix(max_side=3))
def test_matmul_shapes_and_values(a, b):
    if a.shape[1] != b.shape[0]:
        b = np.resize(b, (a.shape[1], 2))
    out = Tensor(a) @ Tensor(b)
    assert np.allclose(out.data, a @ b)


@settings(max_examples=25, deadline=None)
@given(_vector())
def test_add_commutative(x):
    y = x[::-1].copy()
    assert np.allclose(
        (Tensor(x) + Tensor(y)).data, (Tensor(y) + Tensor(x)).data
    )


@settings(max_examples=25, deadline=None)
@given(_vector())
def test_exp_log_roundtrip(x):
    positive = np.abs(x) + 0.5
    assert np.allclose(Tensor(positive).log().exp().data, positive)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_max_gradient_sums_to_one_per_row(rows, cols):
    rng = np.random.default_rng(rows * 10 + cols)
    x = rng.normal(size=(rows, cols))
    t = Tensor(x, requires_grad=True)
    t.max(axis=1).sum().backward()
    assert np.allclose(t.grad.sum(axis=1), 1.0)
