"""Retry/backoff and per-route circuit breaking for the serving stack.

Two small, deterministic machines the fault-tolerant runtime composes:

* :class:`RetryPolicy` — how many times a *transient* failure (see
  :func:`repro.serving.errors.is_transient`) may be replayed, and how
  long to back off between attempts. Backoff is exponential with
  deterministic jitter: the jitter factors come from an injected
  ``random.Random`` seed, so a fixed seed yields a fixed backoff
  sequence and tests (and chaos soaks) are bit-reproducible. Sleeps go
  through the injected :class:`~repro.serving.clock.Clock`, so tests on
  a :class:`~repro.serving.clock.ManualClock` never actually wait.
* :class:`CircuitBreaker` — the per-route failure isolator. A route
  that fails ``failure_threshold`` consecutive flushes transitions
  closed → **open**: requests fail fast with
  :class:`~repro.serving.errors.RouteUnavailableError` (or divert to a
  degraded fallback) instead of burning scheduler capacity on a model
  that cannot answer. After ``reset_timeout_s`` the breaker goes
  **half-open** and admits up to ``half_open_probes`` probe requests;
  one probe success closes it, one probe failure reopens it (and
  restarts the timer). All timing reads the injected clock; all
  transitions are lock-protected and counted.

The :class:`~repro.serving.BatchScheduler` owns the retry loop (it is
the layer that can replay a sub-batch bit-identically); the
:class:`~repro.serving.ModelRouter` owns one breaker per route.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.serving.clock import MONOTONIC, Clock
from repro.serving.errors import is_transient

BREAKER_STATES = ("closed", "open", "half-open")


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts every execution, including the first — the
    default ``3`` means one try plus up to two replays. Backoff before
    attempt ``k+1`` is ``backoff_base_s * backoff_multiplier**(k-1)``,
    capped at ``backoff_max_s``, then scaled by a jitter factor drawn
    uniformly from ``[1, 1 + jitter]`` — from a ``Random(seed)`` stream,
    so the whole sequence is a pure function of the seed. Only errors
    :func:`~repro.serving.errors.is_transient` blesses are retried;
    permanent errors propagate on the first attempt.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.001
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 0.050
    jitter: float = 0.1
    seed: int = 0xB0FF

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether a failure on execution ``attempt`` (1-based) may be
        replayed: the error must be transient and budget must remain."""
        return attempt < self.max_attempts and is_transient(error)

    def backoff_s(self, attempt: int) -> float:
        """Seconds to wait before replaying after failed ``attempt``.

        Deterministic given the seed: concurrent callers draw from one
        locked jitter stream, so a single-threaded replay of the same
        failure history reproduces the same waits.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
            self.backoff_max_s,
        )
        with self._lock:
            factor = 1.0 + self.jitter * self._rng.random()
        return base * factor


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    ``record_failure()``/``record_success()`` feed it flush outcomes;
    ``allow()`` asks whether an execution may proceed *and* consumes a
    probe slot while half-open. ``would_allow()`` is the side-effect-free
    variant admission control uses to fail doomed requests fast without
    eating the probe budget. ``on_open`` (when set) fires on every
    transition into the open state — the router uses it to mirror
    ``breaker_opens`` into the scheduler's stats.
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 0.5
    half_open_probes: int = 1
    clock: Clock = MONOTONIC
    on_open: object = None
    state: str = field(default="closed", init=False)
    opens: int = field(default=0, init=False)

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    # -- queries -------------------------------------------------------
    def allow(self) -> bool:
        """May an execution for this route proceed right now?

        Closed: yes. Open: only once ``reset_timeout_s`` has elapsed —
        the breaker turns half-open and this call claims one probe
        slot. Half-open: yes while unclaimed probe slots remain.
        """
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if (
                    self.clock.now() - self._opened_at
                    < self.reset_timeout_s
                ):
                    return False
                self.state = "half-open"
                self._probes_in_flight = 0
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def would_allow(self) -> bool:
        """Like :meth:`allow` but read-only: no state transition, no
        probe slot consumed — the admission-time fast-fail check."""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                return (
                    self.clock.now() - self._opened_at
                    >= self.reset_timeout_s
                )
            return self._probes_in_flight < self.half_open_probes

    # -- outcome recording ---------------------------------------------
    def record_success(self) -> None:
        """A flush for this route completed: close (from half-open) and
        reset the consecutive-failure count."""
        with self._lock:
            self._consecutive_failures = 0
            self._probes_in_flight = 0
            self.state = "closed"

    def record_failure(self) -> None:
        """A flush for this route failed (post-retry): count it, open
        at the threshold, and reopen immediately from half-open."""
        fire = False
        with self._lock:
            self._consecutive_failures += 1
            reopen = self.state == "half-open"
            if reopen or (
                self.state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self.state = "open"
                self._opened_at = self.clock.now()
                self._probes_in_flight = 0
                self.opens += 1
                fire = True
        if fire and self.on_open is not None:
            self.on_open()
