"""One monotonic clock for the whole serving stack.

Before this module, scheduler timestamps were raw ``time.perf_counter()``
floats scattered through ``_Pending``/``_worker_loop``, which made three
things impossible to line up: frontend deadlines, the scheduler's flush
timing, and the latencies recorded in
:class:`~repro.serving.api.ServingStats` each read the wall clock at
slightly different places, and none of them could be mocked in a test.
:class:`Clock` is the single time source all three share — submission
timestamps, deadline arithmetic and latency measurements are all
``clock.now()`` differences on the same monotonic axis — and
:class:`ManualClock` swaps in for deterministic tests (expiry, latency
accounting, flush-due arithmetic) without a single ``sleep``.

The clock governs *timestamps*, not *sleeps*: the scheduler's deadline
thread still parks on ``Condition.wait(timeout=...)``, which is real
time regardless of the clock — deterministic tests therefore drive the
scheduler in manual mode (``start_worker=False``) and advance a
:class:`ManualClock` by hand.
"""

from __future__ import annotations

import math
import time


class Clock:
    """Monotonic time source (seconds since an arbitrary epoch).

    ``now()`` wraps :func:`time.perf_counter`; the helpers express the
    deadline arithmetic the scheduler and frontend need so the
    conversions live in exactly one place.
    """

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        """Pause the calling thread (retry backoff, chaos delays).

        On the real clock this is :func:`time.sleep`;
        :class:`ManualClock` advances instantly instead, so
        deterministic tests never wait wall time.
        """
        if seconds > 0:
            time.sleep(seconds)

    def deadline_at(
        self, timeout_s: float | None, start: float | None = None
    ) -> float | None:
        """Absolute deadline for a relative budget (None stays None)."""
        if timeout_s is None:
            return None
        return (self.now() if start is None else start) + timeout_s

    def remaining_s(self, deadline_at: float | None) -> float:
        """Slack until an absolute deadline (+inf for no deadline)."""
        if deadline_at is None:
            return math.inf
        return deadline_at - self.now()

    def expired(self, deadline_at: float | None) -> bool:
        """Whether an absolute deadline has already passed."""
        return deadline_at is not None and self.now() >= deadline_at


#: The process-wide default clock every serving component shares.
MONOTONIC = Clock()


class ManualClock(Clock):
    """Test clock: time stands still until ``advance()`` moves it."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance manual time instead of blocking the thread."""
        if seconds > 0:
            self.advance(seconds)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds
