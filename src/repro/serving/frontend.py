"""Asyncio-native front door over the blocking serving stack.

:class:`BatchScheduler` speaks ``concurrent.futures``: ``submit()``
returns a thread-y Future and may block when the bounded queue is
full. An async service built on top of that would need one thread per
in-flight request just to park on ``Future.result()`` — exactly the
overhead micro-batching exists to avoid. :class:`AsyncFrontend` is the
bridge done right:

* ``await frontend.query(request, deadline_s=0.05)`` — admission via
  the scheduler's non-blocking ``submit_nowait``; the returned
  ``concurrent.futures.Future`` is adapted with
  :func:`asyncio.wrap_future`, so **zero** threads wait per request —
  the scheduler's flush path resolves the Future, asyncio wakes the
  coroutine.
* When admission hits a full queue under ``overload_policy="block"``,
  the coroutine parks on an ``asyncio.Event`` armed through the
  scheduler's ``add_room_callback`` (a ``call_soon_threadsafe``
  wrapper) and retries once a dequeue frees room — async backpressure
  without holding any thread. Under the shed policies the typed
  :class:`~repro.serving.api.OverloadError` propagates to the caller
  immediately: load shedding is the caller's signal to back off.
* Deadlines ride on the request: ``deadline_s`` (per call, or the
  frontend's ``default_deadline_s``) is stamped into
  ``QueryRequest.deadline_s``, which the scheduler's deadline thread
  turns into an SLO-aware early flush and — under ``"shed-expired"`` —
  a typed :class:`~repro.serving.api.DeadlineExceededError` when the
  budget is spent before the flush lands.

The frontend wraps either a bare :class:`BatchScheduler` or a
:class:`~repro.serving.router.ModelRouter` (anything with
``submit_nowait`` / ``add_room_callback`` / ``close``). Use
:meth:`AsyncFrontend.open` to build the whole stack from an artifact
directory with ``inline_flush=False``, so a max-batch flush runs on
the scheduler's deadline thread instead of whichever coroutine
happened to submit the batch-completing request — the event loop never
executes model math.

Usage::

    async with AsyncFrontend.open("artifacts/", queue_cap=256,
                                  overload_policy="shed") as frontend:
        response = await frontend.query(request, deadline_s=0.05)

Every coroutine resolves: with a response, the flush's exception,
``DeadlineExceededError`` (budget spent under "shed-expired"), or
``OverloadError`` (request never admitted — nothing was enqueued).
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any, Iterable, Sequence

from repro.serving.api import OverloadError, QueryRequest, QueryResponse
from repro.serving.router import ModelRouter


class AsyncFrontend:
    """Awaitable facade over a ``BatchScheduler`` or ``ModelRouter``.

    ``backend`` must expose ``submit_nowait(request) -> Future``,
    ``add_room_callback(cb)``, ``close()`` and ``stats`` —
    :class:`BatchScheduler` and :class:`ModelRouter` both do.
    ``default_deadline_s`` stamps a deadline on every request that does
    not carry its own; ``close_backend=False`` leaves shutdown to
    whoever built the backend. ``room_retry_s`` bounds how long an
    admission coroutine parks before retrying anyway when its room
    wakeup was lost (see :meth:`_admit`) — it used to be a hard-coded
    0.1 s, which put a hidden 100 ms latency cliff on any lost wakeup;
    now it is tunable and every safety-net firing is counted in
    ``stats.safety_net_wakeups``.
    """

    def __init__(
        self,
        backend: Any,
        *,
        default_deadline_s: float | None = None,
        close_backend: bool = True,
        room_retry_s: float = 0.1,
    ):
        if default_deadline_s is not None and not default_deadline_s > 0:
            raise ValueError("default_deadline_s must be positive (or None)")
        if not room_retry_s > 0:
            raise ValueError("room_retry_s must be positive")
        self.backend = backend
        self.default_deadline_s = default_deadline_s
        self.room_retry_s = float(room_retry_s)
        self._close_backend = close_backend
        self._closed = False

    # -- deadline plumbing --------------------------------------------
    def _with_deadline(
        self, request: QueryRequest, deadline_s: float | None
    ) -> QueryRequest:
        if deadline_s is not None:
            return replace(request, deadline_s=deadline_s)
        if request.deadline_s is None and self.default_deadline_s is not None:
            return replace(request, deadline_s=self.default_deadline_s)
        return request

    # -- admission ----------------------------------------------------
    async def _admit(self, request: QueryRequest) -> "asyncio.Future":
        """Enqueue without blocking the loop; returns the wrapped future.

        ``submit_nowait`` raises :class:`OverloadError` at a full
        queue under *every* policy. For the shed policies that is the
        final answer and propagates. For ``"block"`` it only means
        "no room right now": we arm a room callback, retry, and park
        on an asyncio.Event between attempts — the async equivalent of
        the backpressure a blocking ``submit()`` applies to threads.
        The ``room_retry_s`` wait timeout is a lost-wakeup safety net
        (the same pattern the scheduler's own blocking waiters use),
        not a polling loop — the callback normally fires the retry,
        and every timeout firing is counted in
        ``stats.safety_net_wakeups`` so a lost-wakeup bug shows up in
        the numbers instead of hiding as tail latency.
        """
        if self._closed:
            raise RuntimeError("frontend is closed")
        loop = asyncio.get_running_loop()
        scheduler = getattr(self.backend, "scheduler", self.backend)
        while True:
            try:
                return asyncio.wrap_future(
                    self.backend.submit_nowait(request), loop=loop
                )
            except OverloadError:
                if scheduler.overload_policy != "block":
                    raise
            room = asyncio.Event()

            def _wake() -> None:
                try:
                    loop.call_soon_threadsafe(room.set)
                except RuntimeError:
                    pass  # loop already closed: nothing to wake

            scheduler.add_room_callback(_wake)
            try:
                return asyncio.wrap_future(
                    self.backend.submit_nowait(request), loop=loop
                )
            except OverloadError:
                pass  # the callback is armed; wait for a dequeue
            try:
                await asyncio.wait_for(room.wait(), timeout=self.room_retry_s)
            except asyncio.TimeoutError:
                note = getattr(scheduler, "note_safety_net_wakeup", None)
                if note is not None:
                    note()

    # -- public API ---------------------------------------------------
    async def query(
        self, request: QueryRequest, *, deadline_s: float | None = None
    ) -> QueryResponse:
        """Serve one request through the batching stack, awaitably.

        ``deadline_s`` (seconds of SLO budget from *this* call)
        overrides both ``request.deadline_s`` and the frontend
        default. Raises :class:`OverloadError` when shed at admission,
        :class:`~repro.serving.api.DeadlineExceededError` when the
        budget is spent before the flush lands (policy
        ``"shed-expired"``), or whatever the flush raised.
        """
        return await (await self._admit(self._with_deadline(request, deadline_s)))

    async def query_many(
        self,
        requests: Iterable[QueryRequest],
        *,
        deadline_s: float | None = None,
        return_exceptions: bool = False,
    ) -> Sequence[QueryResponse | BaseException]:
        """Serve many requests concurrently (one coroutine each, still
        zero threads) and return responses in input order. With
        ``return_exceptions=True`` shed/expired requests come back as
        their typed exceptions instead of raising — the bulk-benchmark
        mode, where partial results are the point."""
        return await asyncio.gather(
            *(self.query(request, deadline_s=deadline_s) for request in requests),
            return_exceptions=return_exceptions,
        )

    @property
    def stats(self):
        """The backend's live :class:`~repro.serving.api.ServingStats`."""
        return self.backend.stats

    async def aclose(self) -> None:
        """Close the frontend (and backend, unless ``close_backend=False``).

        ``backend.close()`` blocks on in-flight flushes, so it runs in
        the default executor — the event loop stays responsive while
        the last batch drains. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._close_backend:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.backend.close)

    async def __aenter__(self) -> "AsyncFrontend":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- construction -------------------------------------------------
    @classmethod
    def open(
        cls,
        artifacts: str,
        tasks: Sequence[int] | None = None,
        *,
        default_deadline_s: float | None = None,
        queue_cap: int | None = None,
        overload_policy: str = "block",
        room_retry_s: float = 0.1,
        **router_kwargs: Any,
    ) -> "AsyncFrontend":
        """Build router + scheduler + frontend from an artifact directory.

        Accepts every :meth:`ModelRouter.open` keyword (``mips_backend``,
        ``max_batch``, ``n_workers``, ``worker_mode``, ...). Forces
        ``inline_flush=False`` so flush math never runs on the event
        loop's thread — with ``start_worker=False`` you must call
        ``backend.flush()`` (from a worker thread) yourself.
        """
        router_kwargs.setdefault("inline_flush", False)
        router = ModelRouter.open(
            artifacts,
            tasks,
            queue_cap=queue_cap,
            overload_policy=overload_policy,
            **router_kwargs,
        )
        return cls(
            router,
            default_deadline_s=default_deadline_s,
            room_retry_s=room_retry_s,
        )
