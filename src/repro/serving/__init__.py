"""Serving-first public API: one facade over every inference path.

The deployment story of the repro in three calls::

    from repro.serving import open_predictor, BatchScheduler, QueryRequest

    predictor = open_predictor("artifacts/", task_id=1,
                               mips_backend="threshold", rho=1.0)
    with BatchScheduler(predictor, max_batch=32) as scheduler:
        future = scheduler.submit(QueryRequest(story, question))
        print(future.result().answer)

* :func:`open_predictor` — turns saved artifacts
  (:mod:`repro.artifacts`), a built suite or a single task system into
  a :class:`Predictor`, on ``device="sw"`` (vectorised batch engine,
  any registered MIPS backend) or ``device="hw"`` (cycle-level FPGA
  co-simulation) — same :class:`QueryRequest`/:class:`QueryResponse`
  types either way.
* :class:`BatchScheduler` — coalesces individually submitted requests
  into vectorised flushes (max-batch / max-wait) executed by a pool of
  ``n_workers`` flush workers (each flush split into concurrent shard
  sub-batches), recording per-request latency, per-flush batch sizes
  and sub-batch counts in :class:`ServingStats`.
  ``worker_mode="process"`` swaps the GIL-bound thread pool for worker
  processes that rebuild artifact-backed predictors locally from
  picklable :class:`WorkerSpec` recipes, sharing the weights zero-copy
  via the memory-mapped artifacts npz.
* :class:`ModelRouter` — many named predictors (one per bAbI task)
  behind one shared scheduler, routed by ``QueryRequest.task`` with
  per-route statistics::

      with ModelRouter.open("artifacts/", n_workers=4, shards=4) as r:
          answer = r.submit(QueryRequest(story, question, task=6)).result()
* :class:`MemoryCache` — the cross-request story-encoding cache
  (``cache_entries=`` on :func:`open_predictor` / ``ModelRouter.open``):
  replayed stories skip the memory-write phase (Eqs. 1–2)
  bit-identically, with hit rates surfaced in :class:`ServingStats`.
"""

from repro.serving.api import (
    Predictor,
    QueryRequest,
    QueryResponse,
    ServingStats,
)
from repro.serving.cache import CacheStats, MemoryCache
from repro.serving.predictor import (
    DEVICES,
    HardwarePredictor,
    SoftwarePredictor,
    open_predictor,
)
from repro.serving.router import ModelRouter
from repro.serving.scheduler import WORKER_MODES, BatchScheduler
from repro.serving.worker import WorkerSpec

__all__ = [
    "BatchScheduler",
    "CacheStats",
    "WORKER_MODES",
    "WorkerSpec",
    "DEVICES",
    "HardwarePredictor",
    "MemoryCache",
    "ModelRouter",
    "Predictor",
    "QueryRequest",
    "QueryResponse",
    "ServingStats",
    "SoftwarePredictor",
    "open_predictor",
]
