"""Serving-first public API: one facade over every inference path.

The deployment story of the repro in three calls::

    from repro.serving import open_predictor, BatchScheduler, QueryRequest

    predictor = open_predictor("artifacts/", task_id=1,
                               mips_backend="threshold", rho=1.0)
    with BatchScheduler(predictor, max_batch=32) as scheduler:
        future = scheduler.submit(QueryRequest(story, question))
        print(future.result().answer)

* :func:`open_predictor` — turns saved artifacts
  (:mod:`repro.artifacts`), a built suite or a single task system into
  a :class:`Predictor`, on ``device="sw"`` (vectorised batch engine,
  any registered MIPS backend) or ``device="hw"`` (cycle-level FPGA
  co-simulation) — same :class:`QueryRequest`/:class:`QueryResponse`
  types either way.
* :class:`BatchScheduler` — coalesces individually submitted requests
  into vectorised flushes (max-batch / max-wait) executed by a pool of
  ``n_workers`` flush workers (each flush split into concurrent shard
  sub-batches), recording per-request latency, per-flush batch sizes
  and sub-batch counts in :class:`ServingStats`.
  ``worker_mode="process"`` swaps the GIL-bound thread pool for worker
  processes that rebuild artifact-backed predictors locally from
  picklable :class:`WorkerSpec` recipes, sharing the weights zero-copy
  via the memory-mapped artifacts npz.
* :class:`ModelRouter` — many named predictors (one per bAbI task)
  behind one shared scheduler, routed by ``QueryRequest.task`` with
  per-route statistics::

      with ModelRouter.open("artifacts/", n_workers=4, shards=4) as r:
          answer = r.submit(QueryRequest(story, question, task=6)).result()
* :class:`MemoryCache` — the cross-request story-encoding cache
  (``cache_entries=`` on :func:`open_predictor` / ``ModelRouter.open``):
  replayed stories skip the memory-write phase (Eqs. 1–2)
  bit-identically, with hit rates surfaced in :class:`ServingStats`.
* :class:`AsyncFrontend` — the asyncio front door: awaitable queries
  with per-request SLO deadlines (``deadline_s``), admission control
  over a bounded queue (``queue_cap`` + ``overload_policy`` —
  :data:`OVERLOAD_POLICIES`), typed :class:`OverloadError` /
  :class:`DeadlineExceededError`, and a deadline thread that flushes
  early when the predicted flush cost (:class:`FlushCostModel`, fed by
  live :class:`ServingStats` and the cache hit rate) would eat a
  request's remaining slack::

      async with AsyncFrontend.open("artifacts/", queue_cap=256,
                                    overload_policy="shed") as frontend:
          response = await frontend.query(request, deadline_s=0.05)

* **Fault tolerance** (:mod:`repro.serving.errors` /
  :mod:`repro.serving.resilience` / :mod:`repro.serving.chaos`) — a
  typed failure taxonomy (transient failures are replay-safe because
  predictions are pure; :func:`is_transient` is the verdict), a
  :class:`RetryPolicy` with deterministic exponential backoff the
  scheduler applies per sub-batch, a *supervised* process pool that
  rebuilds itself from retained :class:`WorkerSpec` recipes when a
  worker dies and replays the affected sub-batches bit-identically,
  one :class:`CircuitBreaker` per router route
  (``breaker_threshold=`` on ``ModelRouter.open``, with optional
  degraded fallbacks), and a deterministic fault-injection harness
  (:class:`FaultPlan` / :class:`ChaosPredictor`) that kills real
  worker processes on schedule so all of the above is tested against
  the genuine failure, not a mock.

All serving timestamps come from one :class:`Clock`
(:data:`MONOTONIC`); tests swap in a :class:`ManualClock`.
"""

from repro.serving.api import (
    Predictor,
    QueryRequest,
    QueryResponse,
    ServingStats,
)
from repro.serving.cache import CacheStats, MemoryCache
from repro.serving.chaos import (
    FAULT_KINDS,
    ChaosPredictor,
    FaultPlan,
    InjectedFaultError,
)
from repro.serving.clock import MONOTONIC, Clock, ManualClock
from repro.serving.errors import (
    TRANSIENT_ERRORS,
    DeadlineExceededError,
    OverloadError,
    PayloadCorruptionError,
    RouteUnavailableError,
    SchedulerClosedError,
    ServingError,
    WorkerCrashError,
    is_transient,
)
from repro.serving.frontend import AsyncFrontend
from repro.serving.predictor import (
    DEVICES,
    HardwarePredictor,
    SoftwarePredictor,
    open_predictor,
)
from repro.serving.resilience import BREAKER_STATES, CircuitBreaker, RetryPolicy
from repro.serving.router import ModelRouter
from repro.serving.scheduler import (
    OVERLOAD_POLICIES,
    WORKER_MODES,
    BatchScheduler,
    FlushCostModel,
)
from repro.serving.worker import WorkerSpec

__all__ = [
    "AsyncFrontend",
    "BatchScheduler",
    "BREAKER_STATES",
    "CacheStats",
    "ChaosPredictor",
    "CircuitBreaker",
    "Clock",
    "DeadlineExceededError",
    "FAULT_KINDS",
    "FaultPlan",
    "FlushCostModel",
    "InjectedFaultError",
    "ManualClock",
    "MONOTONIC",
    "OVERLOAD_POLICIES",
    "OverloadError",
    "PayloadCorruptionError",
    "RetryPolicy",
    "RouteUnavailableError",
    "SchedulerClosedError",
    "ServingError",
    "TRANSIENT_ERRORS",
    "WORKER_MODES",
    "WorkerCrashError",
    "WorkerSpec",
    "DEVICES",
    "HardwarePredictor",
    "MemoryCache",
    "ModelRouter",
    "Predictor",
    "QueryRequest",
    "QueryResponse",
    "ServingStats",
    "SoftwarePredictor",
    "is_transient",
    "open_predictor",
]
