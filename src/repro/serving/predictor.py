"""Device-shaped predictors and the ``open_predictor`` factory.

``open_predictor`` is the one call that turns *anything holding a
trained model* — an artifact directory written by
:func:`repro.artifacts.save_suite`, an in-memory
:class:`~repro.eval.suite.BabiSuite`, or a single
:class:`~repro.eval.suite.TaskSystem` — into a
:class:`~repro.serving.api.Predictor` answering typed
:class:`~repro.serving.api.QueryRequest` objects, hiding the
``InferenceEngine`` / ``BatchInferenceEngine`` / accelerator-co-sim
split behind one object::

    predictor = open_predictor("artifacts/", task_id=1,
                               mips_backend="threshold", rho=0.99)
    response = predictor.predict(QueryRequest(story, question))

``device="sw"`` serves through the vectorised batch engine with any
registered MIPS backend; ``device="hw"`` serves through the cycle-level
FPGA co-simulation (same request/response types, orders of magnitude
slower — it is a simulator).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.babi.dataset import EncodedBatch
from repro.babi.vocab import Vocab
from repro.eval.suite import BabiSuite, TaskSystem
from repro.hw.accelerator import MannAccelerator
from repro.hw.config import HwConfig
from repro.mann.batch import BatchInferenceEngine, infer_story_lengths
from repro.serving.api import QueryRequest, QueryResponse
from repro.serving.cache import MemoryCache
from repro.serving.worker import WorkerSpec

DEVICES = ("sw", "hw")


def _stack_requests(
    requests: Sequence[QueryRequest], memory_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad heterogeneous requests into (stories, questions, lengths).

    Stories are padded to the widest slot/word count of the batch
    (zeros are semantically inert everywhere in the model); lengths use
    the request's ``n_sentences`` when pinned, else the engines' usual
    last-non-pad inference.
    """
    if not requests:
        raise ValueError("need at least one request")
    slots = max(r.story.shape[0] for r in requests)
    if slots > memory_size:
        raise ValueError(
            f"request story has {slots} slots, model supports {memory_size}"
        )
    words = max(
        max(r.story.shape[1] for r in requests),
        max(r.question.shape[0] for r in requests),
    )
    batch = len(requests)
    stories = np.zeros((batch, slots, words), dtype=np.int64)
    questions = np.zeros((batch, words), dtype=np.int64)
    pinned = np.zeros(batch, dtype=np.int64)  # 0 = infer
    for i, request in enumerate(requests):
        s, q = request.story, request.question
        stories[i, : s.shape[0], : s.shape[1]] = s
        questions[i, : q.shape[0]] = q
        if request.n_sentences is not None:
            # Validate against the request's OWN story, not the padded
            # batch width — acceptance must not depend on co-batching.
            if not 1 <= request.n_sentences <= s.shape[0]:
                raise ValueError(
                    f"n_sentences={request.n_sentences} outside "
                    f"[1, {s.shape[0]}] for a {s.shape[0]}-slot story"
                )
            pinned[i] = request.n_sentences
    # Padding slots are all-zero, so inferring on the padded batch
    # equals inferring on each request's own story.
    lengths = np.where(pinned > 0, pinned, infer_story_lengths(stories))
    return stories, questions, lengths


class SoftwarePredictor:
    """Serves queries through the vectorised batch inference engine.

    Every flush is one ``search_batch`` call on the configured MIPS
    backend — the same kernel the evaluation suite runs — so per-request
    comparison counts and early-exit flags come back for free.
    """

    device = "sw"

    def __init__(
        self,
        engine: BatchInferenceEngine,
        vocab: Vocab | None = None,
        task_id: int | None = None,
        spec: WorkerSpec | None = None,
    ):
        if engine.mips is None:
            raise ValueError(
                "serving engine needs a MIPS backend; build via open_predictor"
            )
        self.engine = engine
        self.vocab = vocab
        self.task_id = task_id
        #: Picklable rebuild recipe when opened from an artifact
        #: directory; process-mode scheduling requires it.
        self.spec = spec
        #: The engine's story-encoding cache (None when caching is off).
        self.cache = engine.memory_cache

    def predict(self, request: QueryRequest) -> QueryResponse:
        return self.predict_batch([request])[0]

    def _responses(
        self, requests, labels, logits, comparisons, early_exits
    ) -> list[QueryResponse]:
        """Decode stacked result arrays into responses.

        One code path for both execution modes: the thread path feeds
        it the in-process ``search`` arrays, the process path the
        arrays shipped back by ``predict_encoded`` — so the two modes
        produce identical responses by construction.
        """
        return [
            QueryResponse(
                label=int(labels[i]),
                logit=float(logits[i]),
                comparisons=int(comparisons[i]),
                early_exit=bool(early_exits[i]),
                answer=(
                    self.vocab.word(int(labels[i]))
                    if self.vocab is not None and int(labels[i]) >= 0
                    else None
                ),
                request_id=request.request_id,
            )
            for i, request in enumerate(requests)
        ]

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]:
        stories, questions, lengths = _stack_requests(
            requests, self.engine.config.memory_size
        )
        results = self.engine.search(stories, questions, lengths)
        return self._responses(
            requests,
            results.labels,
            results.logits,
            results.comparisons,
            results.early_exits,
        )

    # -- process-worker hooks (see repro.serving.worker) ---------------
    def worker_specs(self) -> list[WorkerSpec]:
        """The specs a process pool needs to rebuild this predictor."""
        if self.spec is None:
            raise ValueError(
                "worker_mode='process' needs artifact-backed predictors "
                "(workers rebuild the model from the artifact directory); "
                "open via open_predictor(<artifact dir>, ...) or "
                "ModelRouter.open(<artifact dir>, ...)"
            )
        return [self.spec]

    def worker_payload(self, requests: Sequence[QueryRequest]):
        """Encode one sub-batch for ``predict_encoded``: its spec plus
        the stacked arrays — the only things that cross the pipe."""
        (spec,) = self.worker_specs()
        stories, questions, lengths = _stack_requests(
            requests, self.engine.config.memory_size
        )
        return spec, stories, questions, lengths

    def worker_decode(
        self, requests, labels, logits, comparisons, early_exits
    ) -> list[QueryResponse]:
        """Decode a worker's stacked arrays (parent-side)."""
        return self._responses(requests, labels, logits, comparisons, early_exits)

    # -- story-encoding cache hooks ------------------------------------
    def cache_counters(self) -> tuple[int, int, int] | None:
        """Cumulative cache ``(hits, misses, evictions)``, or None when
        caching is off — the scheduler mirrors this into its stats."""
        return self.cache.counters() if self.cache is not None else None

    def absorb_worker_cache(self, requests, delta) -> None:
        """Fold a worker process's per-call cache-counter delta into the
        parent-side cache statistics (the worker's table itself stays in
        its own process; only the accounting crosses the pipe)."""
        if self.cache is not None and delta is not None:
            self.cache.absorb_delta(delta)


class HardwarePredictor:
    """Serves queries through the cycle-level accelerator co-simulation.

    Each flush streams the requests through the five-module pipeline
    (:class:`~repro.hw.accelerator.MannAccelerator`); responses carry
    the OUTPUT module's scan statistics. The weights are considered
    resident on the device, so per-flush runs skip the one-off model
    transfer.
    """

    device = "hw"

    def __init__(
        self,
        accelerator: MannAccelerator,
        vocab: Vocab | None = None,
        task_id: int | None = None,
    ):
        self.accelerator = accelerator
        self.vocab = vocab
        self.task_id = task_id

    def predict(self, request: QueryRequest) -> QueryResponse:
        return self.predict_batch([request])[0]

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]:
        memory_size = self.accelerator.weights.config.memory_size
        stories, questions, lengths = _stack_requests(requests, memory_size)
        batch = EncodedBatch(
            stories=stories,
            questions=questions,
            answers=np.zeros(len(requests), dtype=np.int64),  # unknown at serve time
            story_lengths=lengths,
        )
        report = self.accelerator.run(
            batch, include_model_transfer=False, keep_examples=True
        )
        return [
            QueryResponse(
                label=run.prediction,
                logit=float(run.logit),
                comparisons=run.comparisons,
                early_exit=run.early_exit,
                answer=(
                    self.vocab.word(run.prediction)
                    if self.vocab is not None and run.prediction >= 0
                    else None
                ),
                request_id=request.request_id,
            )
            for request, run in zip(requests, report.examples)
        ]


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------
def _resolve_system(
    artifacts, task_id: int | None
) -> tuple[TaskSystem, Vocab | None]:
    """Accept a path / BabiSuite / TaskSystem and pick one task."""
    if isinstance(artifacts, TaskSystem):
        if task_id is not None and task_id != artifacts.task_id:
            raise ValueError(
                f"task_id={task_id} does not match the given system "
                f"(task {artifacts.task_id})"
            )
        return artifacts, artifacts.train.vocab if artifacts.train else None
    if isinstance(artifacts, (str, Path)):
        from repro.artifacts import load_suite

        artifacts = load_suite(artifacts)
    if not isinstance(artifacts, BabiSuite):
        raise TypeError(
            "artifacts must be an artifact directory path, a BabiSuite "
            f"or a TaskSystem, got {type(artifacts).__name__}"
        )
    if task_id is None:
        if len(artifacts.tasks) != 1:
            raise ValueError(
                f"suite holds tasks {artifacts.task_ids}; pass task_id="
            )
        task_id = artifacts.task_ids[0]
    if task_id not in artifacts.tasks:
        raise KeyError(
            f"task {task_id} not in artifacts (available: {artifacts.task_ids})"
        )
    return artifacts.tasks[task_id], artifacts.vocab


def open_predictor(
    artifacts,
    task_id: int | None = None,
    *,
    device: str = "sw",
    mips_backend: str = "exact",
    hw_config: HwConfig | None = None,
    shards: int | None = None,
    shard_axis: str = "batch",
    quantized: bool = False,
    cache_entries: int | None = None,
    cache_bytes: int | None = None,
    spec_source=None,
    **params,
):
    """Open a unified :class:`Predictor` over saved or in-memory models.

    ``artifacts`` is an artifact directory (``str``/``Path``, as written
    by :func:`repro.artifacts.save_suite`), a built
    :class:`~repro.eval.suite.BabiSuite`, or a single
    :class:`~repro.eval.suite.TaskSystem`. ``task_id`` selects the task
    (optional when the suite holds exactly one). ``mips_backend`` is any
    registered ``repro.mips`` name — including the shard-parallel
    composition ``"sharded:<inner>"``; passing ``shards=N`` is the
    shorthand that wraps the named backend in a
    :class:`~repro.mips.sharding.ShardedBackend` with ``N`` partitions
    along ``shard_axis``. ``quantized=True`` serves the fixed-point
    weights persisted in the artifacts (``save_suite(..., qformat=...)``)
    instead of the float model. ``**params`` are backend build
    parameters (``rho``, ``index_ordering``, ``seed``, ...). On
    ``device="hw"`` the backend runs inside the accelerator's OUTPUT
    module via ``hw_config`` (only ``rho``/``index_ordering`` tune it;
    sharding is a software MIPS-layer construct and is rejected).

    ``cache_entries`` enables the cross-request story-encoding cache
    (:class:`~repro.serving.cache.MemoryCache`): replayed stories skip
    the memory-write phase (Eqs. 1–2) bit-identically. It bounds the
    LRU in entries; ``cache_bytes`` optionally bounds resident payload
    bytes. Software device only.

    Predictors opened from an artifact directory additionally carry a
    :class:`~repro.serving.worker.WorkerSpec` so
    ``BatchScheduler(worker_mode="process")`` can rebuild them inside
    worker processes. ``spec_source`` supplies the directory explicitly
    when the caller already loaded the suite (as ``ModelRouter.open``
    does) but still wants process-servable predictors.
    """
    if device not in DEVICES:
        raise ValueError(f"unknown device {device!r}; expected one of {DEVICES}")
    if device != "sw" and cache_entries is not None:
        raise ValueError(
            "cache_entries= memoises the software engine's memory-write "
            "phase; device='hw' simulates every write cycle-by-cycle"
        )
    if spec_source is None and isinstance(artifacts, (str, Path)):
        spec_source = artifacts
    # Capture the rebuild recipe before the shards shorthand rewrites
    # mips_backend/params below — the worker replays the same call.
    spec_args = dict(
        mips_backend=str(mips_backend),
        shards=shards,
        shard_axis=shard_axis,
        quantized=bool(quantized),
        cache_entries=cache_entries,
        cache_bytes=cache_bytes,
        params=tuple(sorted(params.items())),
    )
    system, vocab = _resolve_system(artifacts, task_id)

    weights = system.weights
    if quantized:
        if system.quantized is None:
            raise ValueError(
                "artifacts hold no quantized weights; save them with "
                "save_suite(..., qformat=QFormat(m, n))"
            )
        weights = system.quantized.weights

    if device == "sw":
        if shards is not None:
            if not str(mips_backend).startswith("sharded:"):
                mips_backend = f"sharded:{mips_backend}"
            params.update(n_shards=shards, shard_axis=shard_axis)
        from repro.mann.batch import BatchInferenceEngine

        memory_cache = (
            MemoryCache(
                capacity_entries=cache_entries, capacity_bytes=cache_bytes
            )
            if cache_entries is not None
            else None
        )
        engine = BatchInferenceEngine(
            weights,
            mips_backend,
            threshold_model=system.threshold_model,
            memory_cache=memory_cache,
            **params,
        )
        spec = (
            WorkerSpec(
                artifacts=str(spec_source), task_id=system.task_id, **spec_args
            )
            if spec_source is not None
            else None
        )
        return SoftwarePredictor(
            engine, vocab=vocab, task_id=system.task_id, spec=spec
        )

    if shards is not None:
        raise ValueError(
            "shards= partitions the software MIPS backend layer; "
            "device='hw' runs the OUTPUT module's own scan"
        )
    unsupported = set(params) - {"rho", "index_ordering"}
    if unsupported:
        raise ValueError(
            f"device='hw' does not accept backend params {sorted(unsupported)}; "
            "only rho/index_ordering tune the OUTPUT module"
        )
    config = (hw_config or HwConfig()).with_embed_dim(
        weights.config.embed_dim
    )
    config = config.with_ith(
        config.ith_enabled,
        rho=params.get("rho"),
        index_ordering=params.get("index_ordering"),
    ).with_mips_backend(mips_backend)
    accelerator = MannAccelerator(
        weights, config, threshold_model=system.threshold_model
    )
    return HardwarePredictor(accelerator, vocab=vocab, task_id=system.task_id)
