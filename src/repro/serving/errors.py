"""Typed serving errors and the transient-vs-permanent taxonomy.

Every way a request can fail gets one exception type, and every type
gets a recovery verdict. The taxonomy is what the resilience layer
(:mod:`repro.serving.resilience`) keys on:

* **transient** — the failure is an artifact of *this attempt*, not of
  the request: a worker process died mid-flush, the process pool broke,
  an injected chaos fault fired. Predictions are pure functions of the
  request and the frozen weights, so replaying a transient failure is
  safe and bit-identical — the :class:`~repro.serving.resilience.RetryPolicy`
  retries these.
* **permanent** — the request itself (or the route serving it) is the
  problem: a malformed story, a corrupted payload, an unknown task, a
  spent deadline budget. Retrying reproduces the same failure and burns
  scheduler capacity; these resolve to the caller immediately.

Admission/SLO errors (:class:`OverloadError`,
:class:`DeadlineExceededError`) live here too so the whole failure
surface imports from one module; :mod:`repro.serving.api` re-exports
them for compatibility.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor


class ServingError(RuntimeError):
    """Base of every serving-layer failure this package raises."""


class OverloadError(ServingError):
    """The bounded pending queue is full and the admission policy sheds.

    Raised *at submission* by :meth:`BatchScheduler.submit` /
    ``submit_nowait`` when ``queue_cap`` is reached under
    ``overload_policy="shed"`` (or ``"shed-expired"`` with no expired
    entry to evict, or a non-blocking submit under ``"block"``). The
    request was never enqueued — nothing to await, nothing stranded.
    """


class DeadlineExceededError(TimeoutError):
    """A request's deadline passed before its flush executed.

    Under ``overload_policy="shed-expired"`` the scheduler drops queued
    requests whose ``deadline_s`` budget is already spent instead of
    wasting a flush slot on an answer nobody can use in time; their
    futures resolve with this exception (subclass of
    :class:`TimeoutError`, so generic timeout handling catches it).
    Every admitted request resolves — with a response or with this.
    Permanent: the budget does not come back, retrying cannot help.
    """


class SchedulerClosedError(ServingError):
    """The scheduler shut down before (or while) serving the request.

    Raised by ``submit``/``submit_nowait`` on a closed scheduler, and
    set on futures whose flush lost its worker pool to a concurrent
    ``close()`` — previously those leaked the executor's raw
    ``BrokenProcessPool``/cancellation. Permanent by construction:
    the pool is gone on purpose and is not coming back.
    """


class WorkerCrashError(ServingError):
    """A flush worker died (or was killed) mid-execution.

    The process-pool path maps ``BrokenProcessPool`` to this after the
    supervised rebuild gives up; the chaos harness raises it directly
    to simulate worker death in thread mode. Transient: predictions are
    pure, so replaying the sub-batch on a healthy worker yields the
    bit-identical answer.
    """


class PayloadCorruptionError(ServingError):
    """A sub-batch payload failed integrity validation.

    Raised by the chaos harness's ``corrupt-payload`` fault (and
    available to any transport-level checksum). Permanent: replaying a
    corrupt request reproduces the corruption — the caller must
    re-issue the request.
    """


class RouteUnavailableError(ServingError):
    """The route's circuit breaker is open and no fallback is configured.

    A route that keeps failing its flushes is isolated instead of
    burning scheduler capacity: after ``failure_threshold`` consecutive
    failures the :class:`~repro.serving.resilience.CircuitBreaker`
    opens and requests for that route fail fast with this error until
    a half-open probe succeeds. Permanent from the request's point of
    view — back off and retry *later*, not immediately.
    """


#: Exception types whose failures are safe to replay. ``BrokenExecutor``
#: covers ``BrokenProcessPool`` (a worker process died) and
#: ``BrokenThreadPool`` — the pool is the casualty, not the request.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    WorkerCrashError,
    BrokenExecutor,
)


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is safe to retry (see the module taxonomy).

    Anything not positively known to be attempt-scoped is treated as
    permanent — retrying an unknown failure can mask real bugs and, for
    malformed requests, never terminates differently.
    """
    return isinstance(error, TRANSIENT_ERRORS)
