"""Process-worker side of ``BatchScheduler(worker_mode="process")``.

The thread pool cannot speed up CPU-bound einsum scans (the GIL
serialises them — BENCH_serving.json recorded the pool *losing* to a
single worker), so the process mode runs each flush sub-batch in a
``ProcessPoolExecutor``. This module is everything that crosses the
process boundary:

* :class:`WorkerSpec` — a picklable recipe for one predictor: artifact
  directory + backend name + sharding + quantized flag + backend
  params. Specs travel once, at pool construction.
* :func:`initialize_worker` — the pool initializer. Each worker process
  builds its predictors locally from the specs, loading the artifacts
  npz **once, zero-copy** via ``load_suite(..., mmap=True)`` — every
  worker maps the same file, so the weights occupy one set of
  page-cache pages regardless of worker count, and no weight array is
  ever pickled over the pipe.
* :func:`predict_encoded` — the per-sub-batch job. The parent sends
  only the encoded arrays (stories, questions, lengths — a few KB);
  the worker answers with stacked label/logit/comparison/early-exit
  arrays. Decoding back into :class:`~repro.serving.api.QueryResponse`
  objects happens parent-side through the predictor's ``worker_decode``
  hook, with exactly the code path the thread mode uses — which is why
  the two modes are bit-identical.

Workers keep a process-local cache keyed by spec, so a worker that
receives a spec it has not seen (e.g. it was forked before a route was
added) simply builds it lazily on first use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.artifacts import load_suite

#: Process-local caches (one per worker process; harmless in the parent).
_SUITES: dict = {}
_PREDICTORS: dict = {}


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to rebuild one predictor.

    Only primitives cross the pipe: the artifact *directory path* (not
    the arrays), the MIPS backend name, the sharding knobs, the
    quantized flag and the backend build params as a sorted tuple of
    ``(name, value)`` pairs — hashable, so specs key the worker-side
    predictor cache directly.
    """

    artifacts: str
    task_id: int
    mips_backend: str = "exact"
    shards: int | None = None
    shard_axis: str = "batch"
    quantized: bool = False
    cache_entries: int | None = None
    cache_bytes: int | None = None
    params: tuple = field(default_factory=tuple)


def _suite_for(path: str):
    suite = _SUITES.get(path)
    if suite is None:
        suite = load_suite(path, mmap=True)
        _SUITES[path] = suite
    return suite


def worker_predictor(spec: WorkerSpec):
    """The (cached) worker-local predictor for ``spec``."""
    predictor = _PREDICTORS.get(spec)
    if predictor is None:
        from repro.serving.predictor import open_predictor

        predictor = open_predictor(
            _suite_for(spec.artifacts),
            spec.task_id,
            device="sw",
            mips_backend=spec.mips_backend,
            shards=spec.shards,
            shard_axis=spec.shard_axis,
            quantized=spec.quantized,
            cache_entries=spec.cache_entries,
            cache_bytes=spec.cache_bytes,
            **dict(spec.params),
        )
        _PREDICTORS[spec] = predictor
    return predictor


def initialize_worker(specs) -> None:
    """ProcessPoolExecutor initializer: build every route's predictor
    up front so fork/spawn cost is paid once, not on the first flush."""
    for spec in specs:
        worker_predictor(spec)


def predict_encoded(
    spec: WorkerSpec,
    stories: np.ndarray,
    questions: np.ndarray,
    lengths: np.ndarray,
):
    """Answer one encoded sub-batch; returns stacked result arrays.

    This is the only function the parent submits to the pool — arrays
    in, arrays out, no response objects or predictors on the pipe. The
    fifth element is this call's story-cache counter delta
    ``(hits, misses, evictions)`` when the spec enables caching (each
    worker keeps its own :class:`~repro.serving.cache.MemoryCache`;
    only the accounting travels back), else None.

    ``spec`` may arrive wrapped in a fault rider exposing
    ``apply_worker_side()`` (the chaos harness's
    :class:`~repro.serving.chaos.ChaosOp`): the rider injects its fault
    *inside this worker process* — so e.g. a kill really breaks the
    pool — and unwraps to the real :class:`WorkerSpec`. Duck-typed, so
    this module keeps zero chaos imports on the hot path.
    """
    resolve = getattr(spec, "apply_worker_side", None)
    if resolve is not None:
        spec = resolve()
    predictor = worker_predictor(spec)
    cache = predictor.cache
    before = cache.counters() if cache is not None else None
    result = predictor.engine.search(stories, questions, lengths)
    delta = None
    if cache is not None:
        after = cache.counters()
        delta = tuple(b - a for a, b in zip(before, after))
    return (
        np.asarray(result.labels),
        np.asarray(result.logits),
        np.asarray(result.comparisons),
        np.asarray(result.early_exits),
        delta,
    )
