"""Cross-request story-encoding cache: skip Eqs. 1-2 on replayed stories.

The memory-write phase of the MANN (Eqs. 1-2) depends only on the
story, never on the question — yet production QA traffic replays the
same story with many different questions (the zipf-skewed "millions of
users" shape the ROADMAP targets). :class:`MemoryCache` memoises the
written memory matrices per story so a replayed story skips straight to
the read hops and the output scan: the dominant per-request cost on a
hot story becomes one hash lookup.

What is cached, and why it is bit-exact
---------------------------------------
The unit of caching is one story *as it appears in a stacked batch*:
the padded ``(slots, words)`` int64 token matrix, trimmed to the
story's real sentence count (its resolved length). Every operation in
:meth:`~repro.mann.batch.BatchInferenceEngine.write_memory` — the
embedding gather, the bag-of-words sum over the words axis, the
temporal-vector add and the slot masking — is row-wise per
``(example, slot)``, so a story's memory rows are bit-identical no
matter which batch (or batch *size*, or slot-padding width) they were
computed in. The one shape that does leak into the floats is the
padded **words** width: numpy's pairwise summation over the words axis
associates differently at different widths, so the width is part of
the key (trimmed stories of shape ``(length, words)`` hash whole). In
practice every request stream encoded by one vocabulary shares a
single sentence width and this costs no hits.

Keys are a BLAKE2b content hash of the trimmed story bytes + shape.
Hash collisions are guarded, not assumed away: every entry keeps its
trimmed story and a hit verifies full-array equality before the cached
memories are reused (a mismatch counts in ``stats.collisions`` and is
served as a miss).

The cache is an LRU bounded in **entries** and optionally **bytes**
(stories + both memory matrices), safe under concurrent flush workers
(one lock around the table — ``worker_mode="thread"`` shares one cache
per route; ``worker_mode="process"`` rebuilds one per worker process
from its :class:`~repro.serving.worker.WorkerSpec` and merges hit
statistics parent-side via :meth:`absorb_delta`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`MemoryCache`.

    ``hits``/``misses`` count lookups, ``evictions`` entries dropped by
    the LRU bound, ``collisions`` lookups whose hash matched but whose
    stored story did not (served as misses), and ``dedupes`` rows that
    rode along with an identical story in the *same* flush (encoded
    once, fanned out — they touched neither the table nor the write
    phase). Process-mode serving adds worker-side deltas into the
    parent's stats, so these totals cover every process that served
    through the predictor.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    collisions: int = 0
    dedupes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def skip_rate(self) -> float:
        """Fraction of rows that skipped the write phase entirely
        (cross-request hits plus within-flush dedupes)."""
        total = self.hits + self.misses + self.dedupes
        return (self.hits + self.dedupes) / total if total else 0.0


@dataclass
class _Entry:
    story: np.ndarray  # trimmed (length, words) int64, collision guard
    mem_a: np.ndarray  # (length, embed) address memory rows
    mem_c: np.ndarray  # (length, embed) content memory rows

    @property
    def nbytes(self) -> int:
        return self.story.nbytes + self.mem_a.nbytes + self.mem_c.nbytes


class MemoryCache:
    """LRU of written memory matrices, keyed by story content hash.

    ``capacity_entries`` bounds the entry count, ``capacity_bytes``
    (optional) additionally bounds the resident payload size; the least
    recently used entries are evicted when either bound is exceeded.
    All methods are thread-safe.
    """

    def __init__(
        self,
        capacity_entries: int = 1024,
        capacity_bytes: int | None = None,
    ):
        if capacity_entries < 1:
            raise ValueError("capacity_entries must be >= 1")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1 (or None)")
        self.capacity_entries = int(capacity_entries)
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict[bytes, _Entry] = OrderedDict()
        self._nbytes = 0
        self._lock = threading.Lock()

    # -- keys ----------------------------------------------------------
    @staticmethod
    def key(story: np.ndarray) -> bytes:
        """Content hash of one trimmed ``(length, words)`` story.

        The shape is hashed alongside the bytes so ``(2, 6)`` and
        ``(3, 4)`` stories with identical flat content cannot alias.
        """
        story = np.ascontiguousarray(story, dtype=np.int64)
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.asarray(story.shape, dtype=np.int64).tobytes())
        digest.update(story.tobytes())
        return digest.digest()

    # -- lookup / insert ----------------------------------------------
    def get(
        self, key: bytes, story: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """The cached ``(mem_a, mem_c)`` rows for ``story``, or None.

        ``story`` is the trimmed token matrix the key was derived from;
        a hit only counts after full-array equality against the stored
        story (the hash-collision guard).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and not np.array_equal(entry.story, story):
                self.stats.collisions += 1
                entry = None
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.mem_a, entry.mem_c

    def put(
        self,
        key: bytes,
        story: np.ndarray,
        mem_a: np.ndarray,
        mem_c: np.ndarray,
    ) -> None:
        """Insert one story's memory rows (copies, detached from the
        flush's batch arrays), evicting LRU entries past the bounds."""
        entry = _Entry(
            story=np.ascontiguousarray(story, dtype=np.int64),
            mem_a=np.ascontiguousarray(mem_a),
            mem_c=np.ascontiguousarray(mem_c),
        )
        if self.capacity_bytes is not None and entry.nbytes > self.capacity_bytes:
            return  # larger than the whole budget: not cacheable
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._nbytes -= previous.nbytes
            self._entries[key] = entry
            self._nbytes += entry.nbytes
            while len(self._entries) > self.capacity_entries or (
                self.capacity_bytes is not None
                and self._nbytes > self.capacity_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._nbytes -= evicted.nbytes
                self.stats.evictions += 1

    def note_dedupe(self, n: int = 1) -> None:
        """Record ``n`` rows served by within-flush dedupe (an identical
        story earlier in the same batch), without a table lookup."""
        with self._lock:
            self.stats.dedupes += n

    # -- accounting ----------------------------------------------------
    @property
    def entries(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes

    def counters(self) -> tuple[int, int, int]:
        """Cumulative ``(hits, misses, evictions)`` — the triple
        :class:`~repro.serving.api.ServingStats` mirrors."""
        with self._lock:
            return self.stats.hits, self.stats.misses, self.stats.evictions

    def absorb_delta(self, delta: tuple[int, int, int]) -> None:
        """Fold a worker process's per-call counter delta into this
        (parent-side) cache's statistics."""
        hits, misses, evictions = delta
        with self._lock:
            self.stats.hits += int(hits)
            self.stats.misses += int(misses)
            self.stats.evictions += int(evictions)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def __len__(self) -> int:
        return self.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryCache(entries={self.entries}/{self.capacity_entries}, "
            f"nbytes={self.nbytes}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )
