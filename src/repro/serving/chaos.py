"""Deterministic fault injection for the serving stack.

``repro.hw.faults`` studies *hardware* fault tolerance (SEU bit-flip
sweeps through the accelerator's datapath); this module gives the
*serving* layer the same treatment. Every recovery path the resilience
layer ships — retry/backoff, supervised pool rebuilds, circuit
breaking — needs to be exercised without waiting for a real worker to
die, and reproducibly enough to assert bit-identical recovery. The
harness has three pieces:

* :class:`FaultPlan` — *which executions fault, and how*. A frozen
  value object: per-kind rates whose decisions are a pure function of
  ``(seed, call index)`` (independent of thread interleaving), plus an
  explicit ``schedule`` of ``(index, kind)`` pairs for tests that need
  a fault at exactly the third sub-batch. ``fork(key)`` derives an
  independent per-route plan from one seed.
* :class:`ChaosPredictor` — a transparent :class:`Predictor` wrapper
  that consults the plan once per execution and injects the drawn
  fault. Thread-mode faults fire in ``predict_batch``; process-mode
  faults ride the worker payload as a :class:`ChaosOp` wrapping the
  :class:`~repro.serving.worker.WorkerSpec`, and fire *inside the
  worker process* — ``kill-worker`` really calls ``os._exit``, so the
  supervised pool's ``BrokenProcessPool`` recovery path is tested
  against the real thing.
* :class:`InjectedFaultError` — the transient error the soft fault
  kinds raise (a :class:`~repro.serving.errors.WorkerCrashError`
  subclass, so the retry taxonomy replays it).

Fault kinds (:data:`FAULT_KINDS`):

``kill-worker``
    Process mode: the worker process exits hard (``os._exit``),
    breaking the pool. Thread mode: raises
    :class:`InjectedFaultError` (a thread cannot be killed safely —
    the observable effect, a transiently failed sub-batch, is the
    same).
``raise-in-predict``
    Raises :class:`InjectedFaultError` from the predict path —
    a transient model-side crash.
``delay-flush``
    Sleeps ``delay_s`` before predicting (via the injected clock in
    thread mode), simulating a straggler worker.
``corrupt-payload``
    Raises :class:`~repro.serving.errors.PayloadCorruptionError` —
    a *permanent* fault, exercising the no-retry path.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, replace
from typing import Sequence

from repro.serving.clock import MONOTONIC, Clock
from repro.serving.errors import PayloadCorruptionError, WorkerCrashError

FAULT_KINDS = (
    "kill-worker",
    "raise-in-predict",
    "delay-flush",
    "corrupt-payload",
)

#: Exit status a chaos-killed worker process dies with (distinctive in
#: core-dump-less CI logs).
KILL_EXIT_CODE = 87


class InjectedFaultError(WorkerCrashError):
    """A chaos-injected transient fault (retry-safe by taxonomy)."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic schedule of injected faults.

    Rates are per *execution* (one ``predict_batch`` call or one
    process sub-batch payload): execution ``i`` draws a uniform number
    from ``Random((seed, i))`` — a pure function of the plan, never of
    thread timing — and walks the cumulative rate intervals in
    :data:`FAULT_KINDS` order. ``schedule`` entries override the draw
    at their exact index (use them when a test needs fault *k* at
    call *i*, not merely "about r·n faults somewhere").
    """

    kill_worker_rate: float = 0.0
    raise_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_s: float = 0.001
    seed: int = 0
    schedule: tuple[tuple[int, str], ...] = ()

    def __post_init__(self):
        rates = (
            self.kill_worker_rate,
            self.raise_rate,
            self.delay_rate,
            self.corrupt_rate,
        )
        if any(r < 0 for r in rates) or sum(rates) > 1.0:
            raise ValueError(
                "fault rates must be >= 0 and sum to <= 1, got "
                f"{rates}"
            )
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        for index, kind in self.schedule:
            if index < 0:
                raise ValueError(f"schedule index {index} must be >= 0")
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{FAULT_KINDS}"
                )

    @property
    def total_rate(self) -> float:
        return (
            self.kill_worker_rate
            + self.raise_rate
            + self.delay_rate
            + self.corrupt_rate
        )

    def kind_at(self, index: int) -> str | None:
        """The fault injected at execution ``index`` (None = healthy).

        Pure: the same plan always faults the same indices, whatever
        the thread or process interleaving looks like.
        """
        for at, kind in self.schedule:
            if at == index:
                return kind
        if self.total_rate <= 0.0:
            return None
        # String seeding hashes with SHA-512 (stable across processes
        # and runs, unlike hash() which PYTHONHASHSEED perturbs).
        draw = random.Random(f"{self.seed}:{index}").random()
        edge = 0.0
        for kind, rate in zip(
            FAULT_KINDS,
            (
                self.kill_worker_rate,
                self.raise_rate,
                self.delay_rate,
                self.corrupt_rate,
            ),
        ):
            edge += rate
            if draw < edge:
                return kind
        return None

    def fork(self, key) -> "FaultPlan":
        """An independent plan for one route: same rates, derived seed.

        The derivation is deterministic in ``(seed, key)`` — forked
        plans are reproducible run to run but fault different indices
        per route. Explicit ``schedule`` entries are kept (every route
        sees them; tests that want a scheduled fault on one route only
        should build that route's plan directly).
        """
        derived = random.Random(f"{self.seed}/{key!r}").getrandbits(31)
        return replace(self, seed=derived)


@dataclass(frozen=True)
class ChaosOp:
    """One process sub-batch's fault rider: the real spec + the fault.

    Travels the pipe in the spec position of the worker payload;
    :func:`~repro.serving.worker.predict_encoded` calls
    :meth:`apply_worker_side` before looking up the predictor, which
    performs the fault (exit / raise / sleep) and unwraps the spec.
    """

    spec: object
    kind: str | None = None
    delay_s: float = 0.0

    def apply_worker_side(self):
        """Inject the fault inside the worker process; returns the
        wrapped :class:`~repro.serving.worker.WorkerSpec`."""
        import os
        import time

        if self.kind == "kill-worker":
            os._exit(KILL_EXIT_CODE)
        if self.kind == "raise-in-predict":
            raise InjectedFaultError(
                "chaos: injected predict failure in worker process"
            )
        if self.kind == "delay-flush" and self.delay_s > 0:
            time.sleep(self.delay_s)
        return self.spec


class ChaosPredictor:
    """Wraps a predictor; injects the plan's faults, forwards the rest.

    One fault decision per execution: thread mode consumes an index in
    ``predict_batch``, process mode in ``worker_payload`` (where the
    :class:`ChaosOp` is attached). A retried/replayed sub-batch draws a
    *fresh* index — recovery runs under the same fault pressure as the
    first attempt, which is what makes chaos soaks honest. Everything
    the plan does not fault is forwarded verbatim (``__getattr__``
    delegates the worker/cache/partition hooks), so a rate-0 plan is
    bit-identical to the bare predictor.

    ``injected`` counts faults by kind (thread-safe) so tests and the
    chaos bench can assert pressure was actually applied.
    """

    def __init__(
        self, inner, plan: FaultPlan, clock: Clock = MONOTONIC
    ):
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._lock = threading.Lock()
        self._calls = 0

    def _next_fault(self) -> str | None:
        with self._lock:
            index = self._calls
            self._calls += 1
            kind = self.plan.kind_at(index)
            if kind is not None:
                self.injected[kind] += 1
        return kind

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls

    # -- thread-mode injection -----------------------------------------
    def predict(self, request):
        return self.predict_batch([request])[0]

    def predict_batch(self, requests: Sequence):
        kind = self._next_fault()
        if kind in ("kill-worker", "raise-in-predict"):
            raise InjectedFaultError(f"chaos: injected {kind}")
        if kind == "corrupt-payload":
            raise PayloadCorruptionError(
                "chaos: injected payload corruption"
            )
        if kind == "delay-flush":
            self.clock.sleep(self.plan.delay_s)
        return self.inner.predict_batch(requests)

    # -- process-mode injection ----------------------------------------
    def worker_payload(self, requests: Sequence):
        kind = self._next_fault()
        if kind == "corrupt-payload":
            # Corruption is detected at (de)serialisation time — it
            # never reaches a worker, and it is permanent: no retry.
            raise PayloadCorruptionError(
                "chaos: injected payload corruption"
            )
        spec, *arrays = self.inner.worker_payload(requests)
        if kind is not None:
            spec = ChaosOp(spec=spec, kind=kind, delay_s=self.plan.delay_s)
        return (spec, *arrays)

    # -- transparent delegation ----------------------------------------
    def __getattr__(self, name: str):
        # Only reached for attributes not defined above: worker_specs,
        # worker_decode, partition_batch, cache hooks, engine, vocab...
        return getattr(self.inner, name)
