"""Request/response types and the ``Predictor`` protocol.

One typed surface for every way of answering a QA query — the
vectorised software engine (:class:`~repro.mann.batch.BatchInferenceEngine`)
with any registered MIPS backend, or the cycle-level accelerator
co-simulation (:class:`~repro.hw.accelerator.MannAccelerator`). Build
instances with :func:`repro.serving.open_predictor`; coalesce
individually submitted requests with
:class:`repro.serving.BatchScheduler`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

# The full failure taxonomy lives in repro.serving.errors; these two
# predate it and are re-exported here so existing imports keep working.
from repro.serving.errors import DeadlineExceededError, OverloadError

__all__ = [
    "DeadlineExceededError",
    "OverloadError",
    "Predictor",
    "QueryRequest",
    "QueryResponse",
    "ServingStats",
]


@dataclass(frozen=True)
class QueryRequest:
    """One QA query: an encoded story matrix and question vector.

    ``story`` is ``(slots, sentence_len)`` int64 word indices (pad=0),
    ``question`` a ``(sentence_len,)`` index vector — the same encoding
    :class:`~repro.babi.dataset.BabiDataset.encode_example` produces.
    ``n_sentences`` pins the number of real story sentences; ``None``
    infers it from the last non-pad sentence, like the engines do.
    ``request_id`` is an opaque caller tag echoed on the response.
    ``task`` names the model that should answer — the route key of a
    :class:`~repro.serving.ModelRouter` (a bAbI task id); single-model
    predictors ignore it, and a single-route router accepts ``None``.
    ``deadline_s`` is the request's SLO budget in seconds *relative to
    submission*: the scheduler's deadline thread flushes early when the
    oldest pending budget is about to be consumed, completion within
    the budget counts toward :attr:`ServingStats.goodput_rate`, and
    under ``overload_policy="shed-expired"`` a request whose budget ran
    out before its flush resolves with :class:`DeadlineExceededError`.
    ``None`` (the default) means no deadline — pure throughput serving.
    """

    story: np.ndarray
    question: np.ndarray
    n_sentences: int | None = None
    request_id: int | str | None = None
    task: int | str | None = None
    deadline_s: float | None = None

    def __post_init__(self):
        story = np.asarray(self.story, dtype=np.int64)
        question = np.asarray(self.question, dtype=np.int64)
        if story.ndim != 2:
            raise ValueError(f"story must be 2-D, got shape {story.shape}")
        if question.ndim != 1:
            raise ValueError(f"question must be 1-D, got shape {question.shape}")
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        object.__setattr__(self, "story", story)
        object.__setattr__(self, "question", question)


@dataclass(frozen=True)
class QueryResponse:
    """The answer to one :class:`QueryRequest`.

    ``label`` is the predicted vocabulary index, ``answer`` the decoded
    word when the predictor knows the vocabulary. ``comparisons`` and
    ``early_exit`` surface the output-search statistics (the paper's
    Fig. 3 axes) regardless of device; ``logit`` is the winning score.
    ``latency_s`` is filled by :class:`~repro.serving.BatchScheduler`
    with the submit-to-answer wall time.
    """

    label: int
    logit: float
    comparisons: int
    early_exit: bool
    answer: str | None = None
    request_id: int | str | None = None
    latency_s: float | None = None


@runtime_checkable
class Predictor(Protocol):
    """Anything that answers :class:`QueryRequest` objects.

    Implementations are device-shaped wrappers created by
    :func:`repro.serving.open_predictor`; ``predict_batch`` must accept
    requests with heterogeneous story slot counts (they are padded to a
    common shape internally).

    A predictor may additionally expose
    ``partition_batch(requests, n) -> list[list[int]]`` — index groups
    the :class:`~repro.serving.BatchScheduler` worker pool should
    dispatch as concurrent sub-batches (the router partitions by task
    this way); without the hook the scheduler splits contiguously.

    Predictors servable with ``worker_mode="process"`` expose three
    more hooks (see :mod:`repro.serving.worker`):
    ``worker_specs() -> list[WorkerSpec]`` (picklable rebuild recipes
    for the pool initializer), ``worker_payload(requests)`` (the spec +
    encoded arrays shipped to a worker for one sub-batch), and
    ``worker_decode(requests, labels, logits, comparisons,
    early_exits)`` (parent-side decoding of the worker's stacked result
    arrays into responses, sharing the thread path's decode so the two
    modes answer identically).
    """

    def predict(self, request: QueryRequest) -> QueryResponse: ...

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]: ...


class _Reservoir:
    """Bounded uniform sample with exact count / sum / max.

    Soak loads push millions of values through the stats; an unbounded
    list is a slow memory leak. Algorithm-R reservoir sampling keeps a
    fixed-size uniform sample for percentile estimates while the count,
    sum and maximum stay exact (so ``mean``/``max`` never degrade).
    The replacement RNG is seeded deterministically — statistics of a
    fixed request stream are reproducible run to run.
    """

    __slots__ = ("capacity", "count", "total", "maximum", "_sample", "_rng")

    def __init__(self, capacity: int, seed: int = 0x5EED):
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        self._sample: list[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._sample[j] = value

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def sample(self) -> list[float]:
        return list(self._sample)

    def percentile(self, q: float) -> float:
        """The q-th percentile — exact while ``count <= capacity``,
        estimated from the uniform sample beyond it."""
        if not self._sample:
            return 0.0
        return float(np.percentile(self._sample, q))


@dataclass
class ServingStats:
    """Counters a predictor or scheduler accumulates while serving.

    ``batch_sizes`` is one entry per flush (the micro-batching win to
    watch), ``latencies_s`` one per request, ``shards_per_flush`` how
    many concurrent sub-batches the worker pool dispatched per flush
    (always 1 on the single-worker inline path) — each a bounded
    reservoir sample (:data:`RESERVOIR_CAPACITY`) whose count, mean and
    max stay exact however long the router runs; percentiles
    (``p50_latency_s``/``p95_latency_s``/``p99_latency_s``) come from
    the sample.

    ``cache_hits``/``cache_misses``/``cache_evictions`` mirror the
    story-encoding :class:`~repro.serving.cache.MemoryCache` counters
    of the serving predictor (synced at every flush; all worker
    processes included), with ``cache_hit_rate`` derived.

    The SLO layer adds four exact counters: ``shed`` (submissions
    rejected with :class:`OverloadError` at the full queue), ``expired``
    (admitted requests dropped with :class:`DeadlineExceededError`
    because their budget ran out before the flush), and
    ``deadline_met``/``deadline_missed`` (deadline-carrying requests
    that completed within / past their budget). ``goodput_rate`` is the
    deadline-attainment fraction over every SLO-tracked outcome — shed
    and expired requests count *against* it, which is what makes it an
    honest open-loop metric. Per-flush execution wall time feeds the
    ``_service`` reservoir (``p95_service_s``), the base of the
    deadline thread's flush-cost prediction.

    The resilience layer adds six more exact counters: ``retries``
    (sub-batch replays — retry-policy and pool-rebuild alike),
    ``recovered`` (requests answered successfully after at least one
    replay), ``pool_rebuilds`` (supervised process-pool swaps after a
    worker death), ``breaker_opens`` (circuit-breaker transitions into
    the open state), ``degraded`` (requests served by a route's
    fallback while its breaker was open), and ``safety_net_wakeups``
    (async-frontend admission waits resolved by the lost-wakeup timer
    rather than a room callback — should stay ~0; growth means wakeups
    are being lost).
    """

    RESERVOIR_CAPACITY = 4096

    requests: int = 0
    flushes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    shed: int = 0
    expired: int = 0
    deadline_met: int = 0
    deadline_missed: int = 0
    retries: int = 0
    recovered: int = 0
    pool_rebuilds: int = 0
    breaker_opens: int = 0
    degraded: int = 0
    safety_net_wakeups: int = 0
    _batch_sizes: _Reservoir = field(
        default_factory=lambda: _Reservoir(ServingStats.RESERVOIR_CAPACITY),
        repr=False,
    )
    _latencies: _Reservoir = field(
        default_factory=lambda: _Reservoir(ServingStats.RESERVOIR_CAPACITY),
        repr=False,
    )
    _shards: _Reservoir = field(
        default_factory=lambda: _Reservoir(ServingStats.RESERVOIR_CAPACITY),
        repr=False,
    )
    _service: _Reservoir = field(
        default_factory=lambda: _Reservoir(ServingStats.RESERVOIR_CAPACITY),
        repr=False,
    )

    def record_flush(
        self, batch_size: int, n_shards: int = 1, service_s: float | None = None
    ) -> None:
        self.flushes += 1
        self.requests += batch_size
        self._batch_sizes.add(batch_size)
        self._shards.add(n_shards)
        if service_s is not None:
            self._service.add(service_s)

    def record_latencies(self, latencies_s) -> None:
        self._latencies.extend(latencies_s)

    def record_shed(self, n: int = 1) -> None:
        """Count submissions rejected at the full queue (OverloadError)."""
        self.shed += n

    def record_expired(self, n: int = 1) -> None:
        """Count admitted requests dropped past-deadline (shed-expired)."""
        self.expired += n

    def record_deadline_outcomes(self, met: int, missed: int) -> None:
        """Count completed deadline-carrying requests by attainment."""
        self.deadline_met += met
        self.deadline_missed += missed

    def record_retry(self, n: int = 1) -> None:
        """Count sub-batch replays (retry-policy or pool-rebuild)."""
        self.retries += n

    def record_recovered(self, n: int = 1) -> None:
        """Count requests answered after at least one replay."""
        self.recovered += n

    def record_pool_rebuild(self, n: int = 1) -> None:
        """Count supervised process-pool swaps after a worker death."""
        self.pool_rebuilds += n

    def record_breaker_open(self, n: int = 1) -> None:
        """Count circuit-breaker transitions into the open state."""
        self.breaker_opens += n

    def record_degraded(self, n: int = 1) -> None:
        """Count requests a route's degraded fallback served."""
        self.degraded += n

    def record_safety_net(self, n: int = 1) -> None:
        """Count admission waits the lost-wakeup safety net resolved."""
        self.safety_net_wakeups += n

    def set_cache_counters(
        self, hits: int, misses: int, evictions: int
    ) -> None:
        """Overwrite the cache mirror with a cumulative snapshot (the
        scheduler syncs the predictor's cache after each flush)."""
        self.cache_hits = int(hits)
        self.cache_misses = int(misses)
        self.cache_evictions = int(evictions)

    # -- sampled series (bounded views; exact below capacity) ----------
    @property
    def batch_sizes(self) -> list[float]:
        return self._batch_sizes.sample

    @property
    def latencies_s(self) -> list[float]:
        return self._latencies.sample

    @property
    def shards_per_flush(self) -> list[float]:
        return self._shards.sample

    @property
    def latency_count(self) -> int:
        """Exact number of latencies recorded (>= len(latencies_s))."""
        return self._latencies.count

    # -- derived -------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self._batch_sizes.mean

    @property
    def mean_latency_s(self) -> float:
        return self._latencies.mean

    @property
    def max_latency_s(self) -> float:
        return self._latencies.maximum if self._latencies.count else 0.0

    @property
    def p50_latency_s(self) -> float:
        return self._latencies.percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self._latencies.percentile(95.0)

    @property
    def p99_latency_s(self) -> float:
        return self._latencies.percentile(99.0)

    @property
    def mean_shards_per_flush(self) -> float:
        return self._shards.mean

    # -- SLO / deadline accounting -------------------------------------
    @property
    def service_s(self) -> list[float]:
        """Per-flush execution wall times (bounded sample)."""
        return self._service.sample

    @property
    def mean_service_s(self) -> float:
        return self._service.mean

    @property
    def p95_service_s(self) -> float:
        return self._service.percentile(95.0)

    @property
    def offered(self) -> int:
        """Every submission seen: executed + shed + expired."""
        return self.requests + self.shed + self.expired

    @property
    def deadline_outcomes(self) -> int:
        """SLO-tracked outcomes: deadline completions + shed + expired."""
        return self.deadline_met + self.deadline_missed + self.shed + self.expired

    @property
    def goodput_rate(self) -> float:
        """Deadline-attainment fraction: in-budget completions over every
        SLO-tracked outcome (shed/expired count against; 0.0 when no
        request carried a deadline and nothing was shed)."""
        outcomes = self.deadline_outcomes
        return self.deadline_met / outcomes if outcomes else 0.0

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0
