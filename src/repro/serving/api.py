"""Request/response types and the ``Predictor`` protocol.

One typed surface for every way of answering a QA query — the
vectorised software engine (:class:`~repro.mann.batch.BatchInferenceEngine`)
with any registered MIPS backend, or the cycle-level accelerator
co-simulation (:class:`~repro.hw.accelerator.MannAccelerator`). Build
instances with :func:`repro.serving.open_predictor`; coalesce
individually submitted requests with
:class:`repro.serving.BatchScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np


@dataclass(frozen=True)
class QueryRequest:
    """One QA query: an encoded story matrix and question vector.

    ``story`` is ``(slots, sentence_len)`` int64 word indices (pad=0),
    ``question`` a ``(sentence_len,)`` index vector — the same encoding
    :class:`~repro.babi.dataset.BabiDataset.encode_example` produces.
    ``n_sentences`` pins the number of real story sentences; ``None``
    infers it from the last non-pad sentence, like the engines do.
    ``request_id`` is an opaque caller tag echoed on the response.
    ``task`` names the model that should answer — the route key of a
    :class:`~repro.serving.ModelRouter` (a bAbI task id); single-model
    predictors ignore it, and a single-route router accepts ``None``.
    """

    story: np.ndarray
    question: np.ndarray
    n_sentences: int | None = None
    request_id: int | str | None = None
    task: int | str | None = None

    def __post_init__(self):
        story = np.asarray(self.story, dtype=np.int64)
        question = np.asarray(self.question, dtype=np.int64)
        if story.ndim != 2:
            raise ValueError(f"story must be 2-D, got shape {story.shape}")
        if question.ndim != 1:
            raise ValueError(f"question must be 1-D, got shape {question.shape}")
        object.__setattr__(self, "story", story)
        object.__setattr__(self, "question", question)


@dataclass(frozen=True)
class QueryResponse:
    """The answer to one :class:`QueryRequest`.

    ``label`` is the predicted vocabulary index, ``answer`` the decoded
    word when the predictor knows the vocabulary. ``comparisons`` and
    ``early_exit`` surface the output-search statistics (the paper's
    Fig. 3 axes) regardless of device; ``logit`` is the winning score.
    ``latency_s`` is filled by :class:`~repro.serving.BatchScheduler`
    with the submit-to-answer wall time.
    """

    label: int
    logit: float
    comparisons: int
    early_exit: bool
    answer: str | None = None
    request_id: int | str | None = None
    latency_s: float | None = None


@runtime_checkable
class Predictor(Protocol):
    """Anything that answers :class:`QueryRequest` objects.

    Implementations are device-shaped wrappers created by
    :func:`repro.serving.open_predictor`; ``predict_batch`` must accept
    requests with heterogeneous story slot counts (they are padded to a
    common shape internally).

    A predictor may additionally expose
    ``partition_batch(requests, n) -> list[list[int]]`` — index groups
    the :class:`~repro.serving.BatchScheduler` worker pool should
    dispatch as concurrent sub-batches (the router partitions by task
    this way); without the hook the scheduler splits contiguously.

    Predictors servable with ``worker_mode="process"`` expose three
    more hooks (see :mod:`repro.serving.worker`):
    ``worker_specs() -> list[WorkerSpec]`` (picklable rebuild recipes
    for the pool initializer), ``worker_payload(requests)`` (the spec +
    encoded arrays shipped to a worker for one sub-batch), and
    ``worker_decode(requests, labels, logits, comparisons,
    early_exits)`` (parent-side decoding of the worker's stacked result
    arrays into responses, sharing the thread path's decode so the two
    modes answer identically).
    """

    def predict(self, request: QueryRequest) -> QueryResponse: ...

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]: ...


@dataclass
class ServingStats:
    """Counters a predictor or scheduler accumulates while serving.

    ``batch_sizes`` records one entry per flush (the micro-batching
    win to watch), ``latencies_s`` one entry per request, and
    ``shards_per_flush`` how many concurrent sub-batches the worker
    pool dispatched for each flush (always 1 on the single-worker
    inline path).
    """

    requests: int = 0
    flushes: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    latencies_s: list[float] = field(default_factory=list)
    shards_per_flush: list[int] = field(default_factory=list)

    def record_flush(self, batch_size: int, n_shards: int = 1) -> None:
        self.flushes += 1
        self.requests += batch_size
        self.batch_sizes.append(batch_size)
        self.shards_per_flush.append(n_shards)

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.latencies_s)) if self.latencies_s else 0.0

    @property
    def max_latency_s(self) -> float:
        return float(np.max(self.latencies_s)) if self.latencies_s else 0.0

    @property
    def mean_shards_per_flush(self) -> float:
        return (
            float(np.mean(self.shards_per_flush))
            if self.shards_per_flush
            else 0.0
        )
