"""Request/response types and the ``Predictor`` protocol.

One typed surface for every way of answering a QA query — the
vectorised software engine (:class:`~repro.mann.batch.BatchInferenceEngine`)
with any registered MIPS backend, or the cycle-level accelerator
co-simulation (:class:`~repro.hw.accelerator.MannAccelerator`). Build
instances with :func:`repro.serving.open_predictor`; coalesce
individually submitted requests with
:class:`repro.serving.BatchScheduler`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np


@dataclass(frozen=True)
class QueryRequest:
    """One QA query: an encoded story matrix and question vector.

    ``story`` is ``(slots, sentence_len)`` int64 word indices (pad=0),
    ``question`` a ``(sentence_len,)`` index vector — the same encoding
    :class:`~repro.babi.dataset.BabiDataset.encode_example` produces.
    ``n_sentences`` pins the number of real story sentences; ``None``
    infers it from the last non-pad sentence, like the engines do.
    ``request_id`` is an opaque caller tag echoed on the response.
    ``task`` names the model that should answer — the route key of a
    :class:`~repro.serving.ModelRouter` (a bAbI task id); single-model
    predictors ignore it, and a single-route router accepts ``None``.
    """

    story: np.ndarray
    question: np.ndarray
    n_sentences: int | None = None
    request_id: int | str | None = None
    task: int | str | None = None

    def __post_init__(self):
        story = np.asarray(self.story, dtype=np.int64)
        question = np.asarray(self.question, dtype=np.int64)
        if story.ndim != 2:
            raise ValueError(f"story must be 2-D, got shape {story.shape}")
        if question.ndim != 1:
            raise ValueError(f"question must be 1-D, got shape {question.shape}")
        object.__setattr__(self, "story", story)
        object.__setattr__(self, "question", question)


@dataclass(frozen=True)
class QueryResponse:
    """The answer to one :class:`QueryRequest`.

    ``label`` is the predicted vocabulary index, ``answer`` the decoded
    word when the predictor knows the vocabulary. ``comparisons`` and
    ``early_exit`` surface the output-search statistics (the paper's
    Fig. 3 axes) regardless of device; ``logit`` is the winning score.
    ``latency_s`` is filled by :class:`~repro.serving.BatchScheduler`
    with the submit-to-answer wall time.
    """

    label: int
    logit: float
    comparisons: int
    early_exit: bool
    answer: str | None = None
    request_id: int | str | None = None
    latency_s: float | None = None


@runtime_checkable
class Predictor(Protocol):
    """Anything that answers :class:`QueryRequest` objects.

    Implementations are device-shaped wrappers created by
    :func:`repro.serving.open_predictor`; ``predict_batch`` must accept
    requests with heterogeneous story slot counts (they are padded to a
    common shape internally).

    A predictor may additionally expose
    ``partition_batch(requests, n) -> list[list[int]]`` — index groups
    the :class:`~repro.serving.BatchScheduler` worker pool should
    dispatch as concurrent sub-batches (the router partitions by task
    this way); without the hook the scheduler splits contiguously.

    Predictors servable with ``worker_mode="process"`` expose three
    more hooks (see :mod:`repro.serving.worker`):
    ``worker_specs() -> list[WorkerSpec]`` (picklable rebuild recipes
    for the pool initializer), ``worker_payload(requests)`` (the spec +
    encoded arrays shipped to a worker for one sub-batch), and
    ``worker_decode(requests, labels, logits, comparisons,
    early_exits)`` (parent-side decoding of the worker's stacked result
    arrays into responses, sharing the thread path's decode so the two
    modes answer identically).
    """

    def predict(self, request: QueryRequest) -> QueryResponse: ...

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]: ...


class _Reservoir:
    """Bounded uniform sample with exact count / sum / max.

    Soak loads push millions of values through the stats; an unbounded
    list is a slow memory leak. Algorithm-R reservoir sampling keeps a
    fixed-size uniform sample for percentile estimates while the count,
    sum and maximum stay exact (so ``mean``/``max`` never degrade).
    The replacement RNG is seeded deterministically — statistics of a
    fixed request stream are reproducible run to run.
    """

    __slots__ = ("capacity", "count", "total", "maximum", "_sample", "_rng")

    def __init__(self, capacity: int, seed: int = 0x5EED):
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        self._sample: list[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._sample[j] = value

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def sample(self) -> list[float]:
        return list(self._sample)

    def percentile(self, q: float) -> float:
        """The q-th percentile — exact while ``count <= capacity``,
        estimated from the uniform sample beyond it."""
        if not self._sample:
            return 0.0
        return float(np.percentile(self._sample, q))


@dataclass
class ServingStats:
    """Counters a predictor or scheduler accumulates while serving.

    ``batch_sizes`` is one entry per flush (the micro-batching win to
    watch), ``latencies_s`` one per request, ``shards_per_flush`` how
    many concurrent sub-batches the worker pool dispatched per flush
    (always 1 on the single-worker inline path) — each a bounded
    reservoir sample (:data:`RESERVOIR_CAPACITY`) whose count, mean and
    max stay exact however long the router runs; percentiles
    (``p50_latency_s``/``p95_latency_s``/``p99_latency_s``) come from
    the sample.

    ``cache_hits``/``cache_misses``/``cache_evictions`` mirror the
    story-encoding :class:`~repro.serving.cache.MemoryCache` counters
    of the serving predictor (synced at every flush; all worker
    processes included), with ``cache_hit_rate`` derived.
    """

    RESERVOIR_CAPACITY = 4096

    requests: int = 0
    flushes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    _batch_sizes: _Reservoir = field(
        default_factory=lambda: _Reservoir(ServingStats.RESERVOIR_CAPACITY),
        repr=False,
    )
    _latencies: _Reservoir = field(
        default_factory=lambda: _Reservoir(ServingStats.RESERVOIR_CAPACITY),
        repr=False,
    )
    _shards: _Reservoir = field(
        default_factory=lambda: _Reservoir(ServingStats.RESERVOIR_CAPACITY),
        repr=False,
    )

    def record_flush(self, batch_size: int, n_shards: int = 1) -> None:
        self.flushes += 1
        self.requests += batch_size
        self._batch_sizes.add(batch_size)
        self._shards.add(n_shards)

    def record_latencies(self, latencies_s) -> None:
        self._latencies.extend(latencies_s)

    def set_cache_counters(
        self, hits: int, misses: int, evictions: int
    ) -> None:
        """Overwrite the cache mirror with a cumulative snapshot (the
        scheduler syncs the predictor's cache after each flush)."""
        self.cache_hits = int(hits)
        self.cache_misses = int(misses)
        self.cache_evictions = int(evictions)

    # -- sampled series (bounded views; exact below capacity) ----------
    @property
    def batch_sizes(self) -> list[float]:
        return self._batch_sizes.sample

    @property
    def latencies_s(self) -> list[float]:
        return self._latencies.sample

    @property
    def shards_per_flush(self) -> list[float]:
        return self._shards.sample

    @property
    def latency_count(self) -> int:
        """Exact number of latencies recorded (>= len(latencies_s))."""
        return self._latencies.count

    # -- derived -------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self._batch_sizes.mean

    @property
    def mean_latency_s(self) -> float:
        return self._latencies.mean

    @property
    def max_latency_s(self) -> float:
        return self._latencies.maximum if self._latencies.count else 0.0

    @property
    def p50_latency_s(self) -> float:
        return self._latencies.percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self._latencies.percentile(95.0)

    @property
    def p99_latency_s(self) -> float:
        return self._latencies.percentile(99.0)

    @property
    def mean_shards_per_flush(self) -> float:
        return self._shards.mean

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0
