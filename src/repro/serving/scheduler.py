"""Micro-batching scheduler: many callers, one vectorised flush.

PR 1/2 made whole-batch inference ~20x cheaper per example than the
per-example path — but a serving frontend receives requests one at a
time. :class:`BatchScheduler` is the piece in between: ``submit()``
enqueues a single :class:`~repro.serving.api.QueryRequest` and returns
a :class:`concurrent.futures.Future`; queued requests are coalesced
into one ``predict_batch`` call when either

* the queue reaches ``max_batch`` (flushed inline by the submitting
  caller), or
* the oldest queued request has waited ``max_wait_s`` (flushed by the
  background worker thread), or
* the caller forces it (``flush()`` / ``close()`` / context-manager
  exit).

Per-request latency (submit to answer) and per-flush batch sizes are
recorded in :class:`~repro.serving.api.ServingStats` — the numbers
``benchmarks/test_bench_serving.py`` turns into the throughput table.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from concurrent.futures import Future

from repro.serving.api import Predictor, QueryRequest, QueryResponse, ServingStats


@dataclass
class _Pending:
    request: QueryRequest
    future: Future
    submitted_at: float


class BatchScheduler:
    """Coalesces individually submitted requests into vectorised batches.

    ``predictor`` is anything satisfying the
    :class:`~repro.serving.api.Predictor` protocol. With
    ``start_worker=False`` no thread is spawned and flushes happen only
    on max-batch, ``flush()`` or ``close()`` — fully deterministic, the
    mode the unit tests use.
    """

    def __init__(
        self,
        predictor: Predictor,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        start_worker: bool = True,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.predictor = predictor
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.stats = ServingStats()
        self._pending: list[_Pending] = []
        self._cond = threading.Condition()
        self._exec_lock = threading.Lock()
        self._closed = False
        self._worker: threading.Thread | None = None
        if start_worker:
            self._worker = threading.Thread(
                target=self._worker_loop, name="BatchScheduler", daemon=True
            )
            self._worker.start()

    # -- client side ---------------------------------------------------
    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Enqueue one request; the Future resolves at the next flush."""
        future: Future = Future()
        batch: list[_Pending] = []
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._pending.append(_Pending(request, future, time.perf_counter()))
            if len(self._pending) >= self.max_batch:
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
            elif len(self._pending) == 1:
                # Wake the worker only to arm a deadline for a newly
                # non-empty queue; notifying on every submit would
                # GIL-thrash against busy submitters.
                self._cond.notify_all()
        if batch:  # full batch: the submitting caller pays the flush
            self._execute(batch)
        return future

    def flush(self) -> None:
        """Drain every queued request now, in the calling thread."""
        while True:
            with self._cond:
                batch = self._pending[: self.max_batch]
                del self._pending[: len(batch)]
            if not batch:
                return
            self._execute(batch)

    def close(self) -> None:
        """Flush outstanding requests and stop the worker. Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        self.flush()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)

    # -- flush machinery -----------------------------------------------
    def _worker_loop(self) -> None:
        """Flush queues whose oldest request has aged past max_wait_s."""
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return  # close() drains what is left
                deadline = self._pending[0].submitted_at + self.max_wait_s
                now = time.perf_counter()
                while (
                    self._pending
                    and not self._closed
                    and len(self._pending) < self.max_batch
                    and now < deadline
                ):
                    self._cond.wait(timeout=deadline - now)
                    now = time.perf_counter()
                    if self._pending:
                        deadline = self._pending[0].submitted_at + self.max_wait_s
                batch = self._pending[: self.max_batch]
                del self._pending[: len(batch)]
            self._execute(batch)

    def _execute(self, batch: list[_Pending]) -> None:
        # Transition every future to RUNNING first: a future the caller
        # already cancelled drops out here, and the rest can no longer
        # be cancelled, so set_result/set_exception below cannot raise
        # InvalidStateError (which would kill the worker thread and
        # strand the remaining futures of the batch).
        batch = [p for p in batch if p.future.set_running_or_notify_cancel()]
        if not batch:
            return
        with self._exec_lock:  # one predictor call at a time
            try:
                responses = self.predictor.predict_batch(
                    [p.request for p in batch]
                )
            except Exception as error:  # propagate to every waiter
                for pending in batch:
                    pending.future.set_exception(error)
                return
            done = time.perf_counter()
            self.stats.record_flush(len(batch))
            for pending, response in zip(batch, responses):
                latency = done - pending.submitted_at
                self.stats.latencies_s.append(latency)
                pending.future.set_result(replace(response, latency_s=latency))
