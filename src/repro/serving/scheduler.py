"""Micro-batching scheduler: many callers, one pool of flush workers.

PR 1/2 made whole-batch inference ~20x cheaper per example than the
per-example path — but a serving frontend receives requests one at a
time. :class:`BatchScheduler` is the piece in between: ``submit()``
enqueues a single :class:`~repro.serving.api.QueryRequest` and returns
a :class:`concurrent.futures.Future`; queued requests are coalesced
into one flush when either

* the queue reaches ``max_batch`` (flushed by the submitting caller,
  or by the deadline thread with ``inline_flush=False``),
* the oldest queued request has waited ``max_wait_s``,
* a queued request's **deadline slack** is about to be consumed — the
  deadline thread predicts the flush's wall time with
  :class:`FlushCostModel` (live :class:`~repro.serving.api.ServingStats`
  service percentiles, discounted by the story-cache hit rate) and
  flushes just early enough to land inside the tightest
  ``QueryRequest.deadline_s`` budget, or
* the caller forces it (``flush()`` / ``close()`` / context-manager
  exit).

**Admission control.** ``queue_cap`` bounds the pending queue;
``overload_policy`` picks what happens at the brim:

* ``"block"`` (default) — ``submit()`` waits for room (backpressure);
  ``submit_nowait()`` raises :class:`~repro.serving.api.OverloadError`
  instead, which is how the asyncio frontend awaits room without
  blocking the event loop. In manual mode (no deadline thread) the
  blocked submitter drains a batch itself rather than deadlocking.
* ``"shed"`` — reject new submissions with ``OverloadError``; queued
  work is never touched, so admitted latency stays bounded.
* ``"shed-expired"`` — like ``"shed"``, but expired queue entries
  (deadline budget already spent) are evicted first — their futures
  resolve with :class:`~repro.serving.api.DeadlineExceededError` — and
  an expired request is also dropped at flush time instead of wasting
  batch capacity on an answer nobody can use.

Every admitted future resolves — with a response, the flush's
exception, or ``DeadlineExceededError``; a shed submission raises
before enqueueing. Shed/expired/deadline-attainment counts land in
``stats`` (``goodput_rate``).

**Fault tolerance.** Predictions are pure functions of the request
and the frozen weights, which makes replay safe and bit-identical —
the scheduler exploits that twice. A ``retry_policy``
(:class:`~repro.serving.resilience.RetryPolicy`) replays sub-batches
whose failure is *transient* per the
:mod:`repro.serving.errors` taxonomy, with deterministic exponential
backoff. In process mode the pool is additionally **supervised**
(``supervise_pool``): when a worker dies mid-flush
(``BrokenProcessPool``), the scheduler rebuilds the executor from the
:class:`~repro.serving.worker.WorkerSpec` recipe it retained at
construction and transparently replays the affected sub-batches on
the fresh pool — bounded by ``max_pool_rebuilds``, and independent of
the retry policy. Failures that survive recovery resolve futures with
*typed* errors (:class:`~repro.serving.errors.SchedulerClosedError`
when a concurrent ``close()`` retired the pool,
:class:`~repro.serving.errors.WorkerCrashError` when the rebuild
budget is spent), never a raw executor internal. Retries, recoveries
and rebuilds are counted in ``stats``.

**Ordering guarantee.** Dequeue from the pending queue is strictly
FIFO — every flush takes a contiguous run of requests in submission
order, and responses within one sub-batch resolve in that order. On
the single-worker inline path flushes additionally *complete* in
dequeue order (a ticket assigned at dequeue time serialises execution
FIFO — previously two racing flushes could acquire the execution lock
out of order and complete newer requests before older ones). With
``n_workers > 1`` sub-batches execute concurrently by design, so
completion order across sub-batches is unordered; per-route FIFO then
holds per sub-batch, not across a flush.

With ``n_workers == 1`` (the default) a flush is one inline
``predict_batch`` call. With ``n_workers > 1`` each flush is split
into up to ``n_workers`` sub-batches — contiguous slices, or whatever
the predictor's optional ``partition_batch`` hook returns (the router
partitions by task) — dispatched concurrently and reassembled in
submission order. ``worker_mode`` picks the pool:

* ``"thread"`` (default) — a ``ThreadPoolExecutor`` running
  ``predict_batch`` in-process. Cheap, but CPU-bound einsum scans
  serialise on the GIL, so it only helps when the predictor releases
  the GIL (large BLAS calls) or blocks on I/O.
* ``"process"`` — a ``ProcessPoolExecutor`` whose workers rebuild the
  predictor locally from its picklable
  :class:`~repro.serving.worker.WorkerSpec` (artifact directory +
  backend + sharding + quantized flag), memory-mapping the artifacts
  npz so all workers share one set of weight pages. Only encoded
  sub-batch arrays cross the pipe (via the predictor's
  ``worker_payload`` hook); stacked result arrays come back and are
  decoded parent-side by ``worker_decode`` — the same decode the
  thread path uses, so responses are bit-identical between modes.
  Requires an artifact-backed predictor; the pool exists even at
  ``n_workers == 1`` (execution is still out-of-process).

All timestamps (submission, deadlines, latencies, per-flush service
time) come from one :class:`~repro.serving.clock.Clock`, so the
numbers line up and tests can swap in a
:class:`~repro.serving.clock.ManualClock`. Per-request latency,
per-flush batch sizes, sub-batch counts and service times are recorded
in :class:`~repro.serving.api.ServingStats` — the numbers
``benchmarks/test_bench_sharding.py`` and
``benchmarks/test_bench_frontend.py`` turn into scaling/goodput
curves.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, replace

from repro.serving.api import (
    DeadlineExceededError,
    OverloadError,
    Predictor,
    QueryRequest,
    QueryResponse,
    ServingStats,
)
from repro.serving.clock import MONOTONIC, Clock
from repro.serving.errors import (
    SchedulerClosedError,
    ServingError,
    WorkerCrashError,
)
from repro.serving.resilience import RetryPolicy
from repro.serving.worker import initialize_worker, predict_encoded

WORKER_MODES = ("thread", "process")
OVERLOAD_POLICIES = ("block", "shed", "shed-expired")


@dataclass
class _Pending:
    request: QueryRequest
    future: Future
    submitted_at: float
    deadline_at: float | None = None


@dataclass(frozen=True)
class FlushCostModel:
    """Predicts the next flush's wall time from live serving statistics.

    The deadline thread flushes a deadline-carrying queue at
    ``earliest_deadline - estimate - margin`` instead of the fixed
    ``max_wait_s``, so the estimate is what buys extra batching time.
    Base estimate: the p95 of observed per-flush service times (a
    conservative percentile — landing late breaks the SLO, landing
    early only shrinks the batch). The story-encoding cache's hit rate
    then discounts it: a cache hit skips the memory-write phase
    (Eqs. 1–2), which dominates a miss-only flush (the latency
    bimodality PR 7 measured), so a hit-heavy request mix predicts a
    cheaper flush and can keep batching longer before its deadline
    forces the flush. ``write_share`` is the assumed fraction of a
    miss-only flush spent writing memory; ``safety_factor`` inflates
    the whole estimate against scheduling jitter. Until ``min_samples``
    flushes have been observed the model returns ``cold_estimate_s``.
    """

    write_share: float = 0.6
    safety_factor: float = 1.25
    cold_estimate_s: float = 0.002
    min_samples: int = 3

    def estimate_s(self, stats: ServingStats) -> float:
        if stats.flushes < self.min_samples:
            return self.cold_estimate_s
        p95 = stats.p95_service_s
        if p95 <= 0.0:
            return self.cold_estimate_s
        discount = 1.0 - self.write_share * stats.cache_hit_rate
        return p95 * discount * self.safety_factor


class BatchScheduler:
    """Coalesces individually submitted requests into vectorised batches.

    ``predictor`` is anything satisfying the
    :class:`~repro.serving.api.Predictor` protocol. With
    ``start_worker=False`` no deadline thread is spawned and flushes
    happen only on max-batch, ``flush()`` or ``close()`` — fully
    deterministic, the mode the unit tests use (the flush *pool* is
    still used when ``n_workers > 1``; ``_execute`` blocks until its
    sub-batches finish, so determinism is preserved).

    ``inline_flush=False`` moves the max-batch flush off the submitting
    caller onto the deadline thread — the asyncio frontend uses it so a
    full queue never executes a flush on the event-loop thread
    (requires ``start_worker=True`` for progress without manual
    ``flush()`` calls).
    """

    def __init__(
        self,
        predictor: Predictor,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        start_worker: bool = True,
        n_workers: int = 1,
        worker_mode: str = "thread",
        queue_cap: int | None = None,
        overload_policy: str = "block",
        inline_flush: bool = True,
        cost_model: FlushCostModel | None = None,
        deadline_margin_s: float = 0.0005,
        clock: Clock = MONOTONIC,
        retry_policy: RetryPolicy | None = None,
        supervise_pool: bool = True,
        max_pool_rebuilds: int = 8,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if worker_mode not in WORKER_MODES:
            raise ValueError(
                f"worker_mode must be one of {WORKER_MODES}, got {worker_mode!r}"
            )
        if overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload_policy must be one of {OVERLOAD_POLICIES}, "
                f"got {overload_policy!r}"
            )
        if queue_cap is not None and queue_cap < 1:
            raise ValueError("queue_cap must be >= 1 (or None for unbounded)")
        self.predictor = predictor
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.n_workers = int(n_workers)
        self.worker_mode = worker_mode
        self.queue_cap = int(queue_cap) if queue_cap is not None else None
        self.overload_policy = overload_policy
        self.inline_flush = bool(inline_flush)
        self.cost_model = cost_model or FlushCostModel()
        self.deadline_margin_s = float(deadline_margin_s)
        self.clock = clock
        self.retry_policy = retry_policy
        self.supervise_pool = bool(supervise_pool)
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.stats = ServingStats()
        self._pending: list[_Pending] = []
        self._cond = threading.Condition()
        self._stats_lock = threading.Lock()
        self._closed = False
        #: One-shot callbacks fired (under _cond) whenever a dequeue
        #: frees queue room — the asyncio frontend's wakeup channel.
        #: Callbacks must be cheap and must NOT call back into the
        #: scheduler synchronously (they run with _cond held).
        self._room_callbacks: list = []
        # FIFO tickets: assigned at dequeue time (under _cond, where
        # submission order is defined), retired when the flush is done.
        # The inline single-worker path executes in ticket order, which
        # pins completion order = dequeue order = submission order.
        self._ticket_cond = threading.Condition()
        self._next_ticket = 0
        self._now_serving = 0
        self._retired: set[int] = set()
        # _pool is guarded by _pool_cond: flushes take a usage token
        # (_acquire_pool/_release_pool) and close() retires the pool
        # only once every in-flight flush has released — see close().
        self._pool_cond = threading.Condition()
        self._pool_users = 0
        # Rebuild recipe + budget for the supervised process pool: the
        # WorkerSpecs captured at construction are all a replacement
        # pool needs, and _pool_rebuilds counts lifetime swaps against
        # max_pool_rebuilds (guarded by _pool_cond like _pool itself).
        self._pool_specs = None
        self._pool_rebuilds = 0
        if worker_mode == "process":
            # Fail at construction, not at first flush: process mode
            # needs a predictor that can describe itself as WorkerSpecs.
            specs_hook = getattr(predictor, "worker_specs", None)
            if specs_hook is None:
                raise ValueError(
                    "worker_mode='process' needs a predictor with "
                    "worker_specs/worker_payload/worker_decode hooks "
                    "(open it from an artifact directory)"
                )
            # Even one process worker runs out-of-process, so the pool
            # exists for every n_workers in this mode.
            self._pool_specs = specs_hook()
            self._pool = self._make_process_pool()
        else:
            self._pool = (
                ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="BatchSchedulerWorker",
                )
                if self.n_workers > 1
                else None
            )
        self._worker: threading.Thread | None = None
        if start_worker:
            self._worker = threading.Thread(
                target=self._worker_loop, name="BatchScheduler", daemon=True
            )
            self._worker.start()

    # -- client side ---------------------------------------------------
    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Enqueue one request; the Future resolves at the next flush.

        At a full bounded queue the call blocks for room under
        ``overload_policy="block"`` and raises
        :class:`~repro.serving.api.OverloadError` under the shed
        policies (after evicting expired entries, for "shed-expired").
        """
        return self._submit(request, may_block=True)

    def submit_nowait(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Like :meth:`submit`, but never blocks for queue room: a full
        queue raises :class:`~repro.serving.api.OverloadError` under
        every policy (the asyncio frontend's admission primitive —
        combined with :meth:`add_room_callback` it awaits room without
        holding any thread)."""
        return self._submit(request, may_block=False)

    def _submit(self, request: QueryRequest, may_block: bool) -> Future:
        future: Future = Future()
        while True:
            batch: list[_Pending] = []
            ticket = None
            drain: list[_Pending] = []
            drain_ticket = None
            with self._cond:
                if self._closed:
                    raise SchedulerClosedError("scheduler is closed")
                if not self._admit_locked(may_block):
                    # Full queue, "block" policy, manual mode: there is
                    # no deadline thread to drain, so the caller makes
                    # its own room (backpressure = the caller pays).
                    drain, drain_ticket = self._take_locked(self.max_batch)
                else:
                    now = self.clock.now()
                    self._pending.append(
                        _Pending(
                            request,
                            future,
                            now,
                            self.clock.deadline_at(request.deadline_s, now),
                        )
                    )
                    if len(self._pending) >= self.max_batch:
                        if self.inline_flush:
                            batch, ticket = self._take_locked(self.max_batch)
                        else:
                            self._cond.notify_all()  # the deadline thread flushes
                    elif len(self._pending) == 1 or request.deadline_s is not None:
                        # Wake the deadline thread to (re)arm its timer:
                        # on a newly non-empty queue, or when this
                        # request's deadline may be the new binding
                        # constraint. Notifying on every submit would
                        # GIL-thrash against busy submitters.
                        self._cond.notify_all()
            if drain:
                self._execute(drain, drain_ticket)
                continue  # retry admission after making room
            if batch:  # full batch: the submitting caller pays the flush
                self._execute(batch, ticket)
            return future

    def _admit_locked(self, may_block: bool) -> bool:
        """Wait for / make queue room (caller holds ``_cond``).

        Returns True when the request may enqueue now, False when the
        caller should drain a batch itself (manual-mode backpressure).
        Raises :class:`OverloadError` under the shed policies or for a
        non-blocking submit,
        :class:`~repro.serving.errors.SchedulerClosedError` if closed
        while waiting.
        """
        if self.queue_cap is None:
            return True
        while len(self._pending) >= self.queue_cap:
            if self.overload_policy == "shed-expired" and self._drop_expired_locked():
                continue  # eviction may have made room
            if self.overload_policy != "block":
                with self._stats_lock:
                    self.stats.record_shed()
                raise OverloadError(
                    f"pending queue at capacity ({self.queue_cap}) under "
                    f"overload_policy={self.overload_policy!r}"
                )
            if not may_block:
                raise OverloadError(
                    f"pending queue at capacity ({self.queue_cap}); "
                    "submit_nowait does not block for room"
                )
            if self._worker is None:
                return False  # manual mode: caller drains inline
            self._cond.wait(timeout=0.1)
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
        return True

    def _drop_expired_locked(self) -> int:
        """Evict queued requests whose deadline already passed (caller
        holds ``_cond``); their futures resolve with
        :class:`DeadlineExceededError`. Returns the eviction count."""
        now = self.clock.now()
        expired = [
            p
            for p in self._pending
            if p.deadline_at is not None and now >= p.deadline_at
        ]
        if not expired:
            return 0
        dead = set(map(id, expired))
        self._pending = [p for p in self._pending if id(p) not in dead]
        dropped = self._resolve_expired(expired)
        if self._pending_has_room_locked():
            self._notify_room_locked()
        return dropped

    def _resolve_expired(self, expired: list[_Pending]) -> int:
        """Resolve already-dequeued expired requests; returns how many
        actually resolved (a concurrently cancelled future is skipped)."""
        dropped = 0
        for pending in expired:
            if pending.future.set_running_or_notify_cancel():
                pending.future.set_exception(
                    DeadlineExceededError(
                        f"deadline budget of {pending.request.deadline_s}s "
                        "spent before the flush executed"
                    )
                )
                dropped += 1
        if dropped:
            with self._stats_lock:
                self.stats.record_expired(dropped)
        return dropped

    def add_room_callback(self, callback) -> None:
        """Register a one-shot wakeup fired when a dequeue frees queue
        room (or the scheduler closes). The callback runs under the
        scheduler's internal lock: it must be cheap, exception-free and
        must not call back into the scheduler — the asyncio frontend
        passes ``loop.call_soon_threadsafe`` wrappers, nothing else."""
        fire = False
        with self._cond:
            if self._closed or self._pending_has_room_locked():
                fire = True  # already room (or never coming): wake now
            else:
                self._room_callbacks.append(callback)
        if fire:
            callback()

    def _pending_has_room_locked(self) -> bool:
        return self.queue_cap is None or len(self._pending) < self.queue_cap

    def _notify_room_locked(self) -> None:
        """Wake admission waiters after a dequeue (caller holds _cond)."""
        if self.queue_cap is None:
            return
        self._cond.notify_all()
        callbacks, self._room_callbacks = self._room_callbacks, []
        for callback in callbacks:
            callback()

    def flush(self) -> None:
        """Drain every queued request now, in the calling thread."""
        while True:
            with self._cond:
                batch, ticket = self._take_locked(self.max_batch)
            if not batch:
                return
            self._execute(batch, ticket)

    def close(self) -> None:
        """Flush outstanding requests and stop the workers. Idempotent.

        A max-batch flush from a racing ``submit()`` may still be in
        flight here; the pool is retired only after every such flush
        has released its usage token, so ``_execute`` never observes
        the pool disappearing mid-flush (the old code nulled the pool
        immediately, stranding already-RUNNING futures with an
        AttributeError in the flushing thread).
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            # Wake async admission waiters too: room is never coming,
            # their retried submit must observe the closed scheduler.
            callbacks, self._room_callbacks = self._room_callbacks, []
        for callback in callbacks:
            callback()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        self.flush()
        with self._pool_cond:
            while self._pool_users:
                self._pool_cond.wait()
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)

    # -- flush machinery -----------------------------------------------
    def _take_locked(self, limit: int) -> tuple[list[_Pending], int | None]:
        """FIFO-dequeue up to ``limit`` requests (caller holds _cond).

        This is the *only* place requests leave the queue, and it takes
        a contiguous head slice — the FIFO-dequeue guarantee. A ticket
        is assigned per non-empty take; inline execution honours ticket
        order (see :meth:`_await_turn`)."""
        batch = self._pending[: limit]
        if not batch:
            return [], None
        del self._pending[: len(batch)]
        ticket = self._next_ticket
        self._next_ticket += 1
        self._notify_room_locked()
        return batch, ticket

    def _await_turn(self, ticket: int) -> None:
        """Block until every earlier ticket has retired — the inline
        path's FIFO-completion fence (pooled flushes skip it: sub-batch
        concurrency is their point)."""
        with self._ticket_cond:
            while self._now_serving < ticket:
                self._ticket_cond.wait()

    def _retire_ticket(self, ticket: int | None) -> None:
        if ticket is None:
            return
        with self._ticket_cond:
            self._retired.add(ticket)
            while self._now_serving in self._retired:
                self._retired.remove(self._now_serving)
                self._now_serving += 1
            self._ticket_cond.notify_all()

    def _worker_loop(self) -> None:
        """Flush queues whose oldest request aged past max_wait_s — or
        whose tightest deadline slack the predicted flush cost is about
        to consume (the SLO-aware early flush)."""
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return  # close() drains what is left
                now = self.clock.now()
                due = self._due_at_locked()
                while (
                    self._pending
                    and not self._closed
                    and len(self._pending) < self.max_batch
                    and now < due
                ):
                    self._cond.wait(timeout=due - now)
                    now = self.clock.now()
                    if self._pending:
                        due = self._due_at_locked()
                batch, ticket = self._take_locked(self.max_batch)
            self._execute(batch, ticket)

    def _due_at_locked(self) -> float:
        """The instant the queue must flush (caller holds ``_cond``):
        the oldest request's ``max_wait_s`` budget, tightened by any
        deadline — flush at ``deadline - predicted flush cost - margin``
        so the answer lands inside the budget. A hit-heavy mix (high
        cache hit rate) predicts a cheaper flush, so deadline-carrying
        queues batch longer exactly when the cache makes that safe."""
        due = self._pending[0].submitted_at + self.max_wait_s
        earliest = None
        for pending in self._pending:
            if pending.deadline_at is not None and (
                earliest is None or pending.deadline_at < earliest
            ):
                earliest = pending.deadline_at
        if earliest is not None:
            with self._stats_lock:
                estimate = self.cost_model.estimate_s(self.stats)
            due = min(due, earliest - estimate - self.deadline_margin_s)
        return due

    def _partition(self, batch: list[_Pending]) -> list[list[_Pending]]:
        """Split a flush into sub-batches for the worker pool.

        Uses the predictor's task-aware ``partition_batch`` hook when
        present (so mixed-task flushes are not split mid-task),
        otherwise balanced contiguous chunks.
        """
        n = min(self.n_workers, len(batch))
        hook = getattr(self.predictor, "partition_batch", None)
        if hook is not None:
            groups = hook([p.request for p in batch], n)
            chunks = [[batch[i] for i in group] for group in groups if group]
            if chunks and sorted(i for g in groups for i in g) == list(
                range(len(batch))
            ):
                return chunks
        size, extra = divmod(len(batch), n)
        chunks, start = [], 0
        for k in range(n):
            stop = start + size + (1 if k < extra else 0)
            chunks.append(batch[start:stop])
            start = stop
        return [c for c in chunks if c]

    def _make_process_pool(self) -> ProcessPoolExecutor:
        """A fresh worker pool from the retained WorkerSpec recipe —
        used at construction and by every supervised rebuild."""
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=initialize_worker,
            initargs=(self._pool_specs,),
        )

    def _rebuild_pool(self, broken) -> ProcessPoolExecutor | None:
        """Swap a broken process pool for a fresh one (supervision).

        Returns the pool to replay the affected sub-batches on, or
        ``None`` when replay is impossible: the scheduler is closed,
        supervision is off, or the rebuild budget is spent. Idempotent
        under concurrent flushes — whoever loses the race just gets the
        replacement another flush already installed, without burning a
        second budget slot.
        """
        with self._pool_cond:
            current = self._pool
            if current is not None and current is not broken:
                return current  # another flush already swapped it in
            if (
                current is None
                or self._closed
                or not self.supervise_pool
                or self._pool_rebuilds >= self.max_pool_rebuilds
            ):
                return None
            self._pool_rebuilds += 1
            self._pool = self._make_process_pool()
            fresh = self._pool
        # Reap the dead pool outside the lock; its workers are gone, so
        # there is nothing to wait for.
        broken.shutdown(wait=False)
        with self._stats_lock:
            self.stats.record_pool_rebuild()
        return fresh

    @property
    def pool_rebuilds(self) -> int:
        """Lifetime count of supervised pool swaps."""
        with self._pool_cond:
            return self._pool_rebuilds

    @staticmethod
    def _is_pool_failure(error: BaseException) -> bool:
        """Whether a failure condemns the *pool* rather than the batch:
        ``BrokenExecutor`` (a worker process died) or the executor's
        raw RuntimeError for submitting after another flush already
        retired/swapped the pool this flush still references."""
        if isinstance(error, BrokenExecutor):
            return True
        return (
            isinstance(error, RuntimeError)
            and not isinstance(error, ServingError)
            and "shutdown" in str(error)
        )

    def note_safety_net_wakeup(self) -> None:
        """Count one lost-wakeup safety-net firing (async frontend)."""
        with self._stats_lock:
            self.stats.record_safety_net()

    def note_breaker_open(self) -> None:
        """Count one circuit-breaker open transition (router hook)."""
        with self._stats_lock:
            self.stats.record_breaker_open()

    def note_degraded(self, n: int = 1) -> None:
        """Count requests a route's degraded fallback served (router)."""
        with self._stats_lock:
            self.stats.record_degraded(n)

    def _acquire_pool(self):
        """Take a usage token on the pool, or None when it is gone.

        Holding a token blocks ``close()`` from shutting the pool down,
        so a captured pool reference stays submittable for the whole
        flush — this (plus the inline fallback in ``_execute``) is the
        fix for the close/flush race.
        """
        with self._pool_cond:
            if self._pool is None:
                return None
            self._pool_users += 1
            return self._pool

    def _release_pool(self) -> None:
        with self._pool_cond:
            self._pool_users -= 1
            if not self._pool_users:
                self._pool_cond.notify_all()

    def _execute(self, batch: list[_Pending], ticket: int | None = None) -> None:
        try:
            if self.overload_policy == "shed-expired":
                # An expired request cannot meet its deadline whatever
                # we do; spending batch capacity on it only endangers
                # the live ones. Resolve it typed, serve the rest.
                now = self.clock.now()
                expired = [
                    p
                    for p in batch
                    if p.deadline_at is not None and now >= p.deadline_at
                ]
                if expired:
                    self._resolve_expired(expired)
                    dead = set(map(id, expired))
                    batch = [p for p in batch if id(p) not in dead]
            # Transition every future to RUNNING first: a future the
            # caller already cancelled drops out here, and the rest can
            # no longer be cancelled, so set_result/set_exception below
            # cannot raise InvalidStateError (which would kill the
            # flushing thread and strand the remaining futures).
            batch = [p for p in batch if p.future.set_running_or_notify_cancel()]
            if not batch:
                return
            pool = self._acquire_pool()
            started = self.clock.now()
            if pool is None:
                # Single-worker mode, or close() already retired the
                # pool out from under a racing max-batch flush: answer
                # inline so the RUNNING futures resolve instead of
                # stranding. Ticket order makes completion FIFO here.
                if ticket is not None:
                    self._await_turn(ticket)
                self._run_chunk(batch)
                with self._stats_lock:
                    self.stats.record_flush(
                        len(batch),
                        n_shards=1,
                        service_s=self.clock.now() - started,
                    )
                self._sync_cache_stats()
                return
            try:
                try:
                    chunks = self._partition(batch)
                except Exception as error:
                    # The partition hook is predictor code too: a
                    # raising hook must resolve (not strand) the
                    # already-RUNNING futures, and must not kill the
                    # deadline thread.
                    self._fail_chunk(batch, error)
                    return
                if self.worker_mode == "process":
                    self._execute_process(pool, chunks)
                else:
                    self._execute_threads(pool, chunks)
                with self._stats_lock:
                    self.stats.record_flush(
                        len(batch),
                        n_shards=len(chunks),
                        service_s=self.clock.now() - started,
                    )
                self._sync_cache_stats()
            finally:
                self._release_pool()
        finally:
            self._retire_ticket(ticket)

    def _sync_cache_stats(self) -> None:
        """Mirror the predictor's cumulative story-cache counters into
        ``stats`` (no-op for predictors without the hook / a cache)."""
        counters_hook = getattr(self.predictor, "cache_counters", None)
        if counters_hook is None:
            return
        counters = counters_hook()
        if counters is None:
            return
        with self._stats_lock:
            self.stats.set_cache_counters(*counters)

    def _execute_threads(self, pool, chunks: list[list[_Pending]]) -> None:
        submitted = []
        failure = None
        for chunk in chunks[1:]:
            if failure is None:
                try:
                    submitted.append(pool.submit(self._run_chunk, chunk))
                    continue
                except Exception as error:  # e.g. a broken executor
                    failure = error
            self._fail_chunk(chunk, failure)
        # The flushing thread works one sub-batch itself instead of
        # idling — with W workers a flush occupies W threads, not W+1.
        self._run_chunk(chunks[0])
        for future in submitted:
            future.result()  # _run_chunk never raises; propagate crashes

    def _execute_process(self, pool, chunks: list[list[_Pending]]) -> None:
        """Ship each sub-batch's encoded arrays to a worker process.

        Every chunk is submitted before any result is awaited so the
        pool works them concurrently. Failures are classified, not
        propagated raw: a failure that condemns the *pool* (a worker
        died → ``BrokenProcessPool``) triggers a supervised rebuild
        from the retained WorkerSpecs and the affected sub-batches are
        replayed on the fresh pool — predictions are pure, so the
        replay is bit-identical. A *transient* failure the worker
        raised is replayed per ``retry_policy`` with one backoff sleep
        per round. Everything else resolves that chunk's futures typed:
        :class:`~repro.serving.errors.SchedulerClosedError` when a
        concurrent ``close()`` took the pool away for good,
        :class:`~repro.serving.errors.WorkerCrashError` (cause chained)
        when the rebuild budget is spent, the original error otherwise
        — all without stranding the other chunks.
        """
        retry = self.retry_policy
        pending_chunks = [(chunk, 1) for chunk in chunks]
        while pending_chunks:
            round_pool = pool
            jobs: list[tuple[list[_Pending], int, Future | None, object]] = []
            for chunk, attempt in pending_chunks:
                job = error = None
                try:
                    payload = self.predictor.worker_payload(
                        [p.request for p in chunk]
                    )
                    job = round_pool.submit(predict_encoded, *payload)
                except Exception as exc:
                    error = exc
                jobs.append((chunk, attempt, job, error))
            pending_chunks = []
            backoff_s = 0.0
            for chunk, attempt, job, error in jobs:
                if error is None:
                    try:
                        labels, logits, comparisons, early_exits, cache_delta = (
                            job.result()
                        )
                        responses = self.predictor.worker_decode(
                            [p.request for p in chunk],
                            labels,
                            logits,
                            comparisons,
                            early_exits,
                        )
                    except Exception as exc:
                        error = exc
                    else:
                        if cache_delta is not None:
                            absorb = getattr(
                                self.predictor, "absorb_worker_cache", None
                            )
                            if absorb is not None:
                                absorb([p.request for p in chunk], cache_delta)
                        self._resolve_chunk(chunk, responses)
                        if attempt > 1:
                            with self._stats_lock:
                                self.stats.record_recovered(len(chunk))
                        continue
                if self._is_pool_failure(error):
                    # Pool-level: rebuild-and-replay needs no retry
                    # policy — it is bounded by max_pool_rebuilds, and
                    # the rebuild is shared by every chunk this round.
                    replacement = self._rebuild_pool(round_pool)
                    if replacement is not None:
                        pool = replacement
                        pending_chunks.append((chunk, attempt + 1))
                        with self._stats_lock:
                            self.stats.record_retry()
                        continue
                    if self._closed:
                        closed = SchedulerClosedError(
                            "scheduler closed while a process flush was "
                            "in flight; the worker pool is gone on purpose"
                        )
                        closed.__cause__ = error
                        self._fail_chunk(chunk, closed)
                        continue
                    crash = WorkerCrashError(
                        "worker pool broke and could not be rebuilt "
                        f"(supervise_pool={self.supervise_pool}, rebuilds "
                        f"used {self._pool_rebuilds}/{self.max_pool_rebuilds})"
                    )
                    crash.__cause__ = error
                    self._fail_chunk(chunk, crash)
                    continue
                if retry is not None and retry.should_retry(error, attempt):
                    backoff_s = max(backoff_s, retry.backoff_s(attempt))
                    pending_chunks.append((chunk, attempt + 1))
                    with self._stats_lock:
                        self.stats.record_retry()
                    continue
                self._fail_chunk(chunk, error)
            if pending_chunks and backoff_s > 0.0:
                self.clock.sleep(backoff_s)

    def _resolve_chunk(
        self, chunk: list[_Pending], responses: list[QueryResponse]
    ) -> None:
        """Resolve one answered sub-batch: latency + deadline-attainment
        accounting, then the futures, in submission order."""
        done = self.clock.now()
        latencies = [done - pending.submitted_at for pending in chunk]
        met = missed = 0
        for pending in chunk:
            if pending.deadline_at is not None:
                if done <= pending.deadline_at:
                    met += 1
                else:
                    missed += 1
        with self._stats_lock:
            self.stats.record_latencies(latencies)
            self.stats.record_deadline_outcomes(met, missed)
        for pending, response, latency in zip(chunk, responses, latencies):
            pending.future.set_result(replace(response, latency_s=latency))

    def _run_chunk(self, chunk: list[_Pending]) -> None:
        """Answer one sub-batch, resolving its futures in order.

        The thread/inline twin of the process path's recovery:
        transient predictor failures are replayed per ``retry_policy``
        (predictions are pure, so the replay is bit-identical); the
        final failure resolves the sub-batch's futures instead of
        propagating.
        """
        retry = self.retry_policy
        requests = [p.request for p in chunk]
        attempt = 1
        while True:
            try:
                responses = self.predictor.predict_batch(requests)
            except Exception as error:
                if retry is not None and retry.should_retry(error, attempt):
                    with self._stats_lock:
                        self.stats.record_retry()
                    self.clock.sleep(retry.backoff_s(attempt))
                    attempt += 1
                    continue
                self._fail_chunk(chunk, error)
                return
            if attempt > 1:
                with self._stats_lock:
                    self.stats.record_recovered(len(chunk))
            self._resolve_chunk(chunk, responses)
            return

    def _fail_chunk(self, chunk: list[_Pending], error: BaseException) -> None:
        """Resolve one failed sub-batch: tell the predictor (the
        router's ``record_failure`` hook feeds per-route circuit
        breakers), then set the error on every future. The single
        failure sink for every flush path — futures are never stranded
        and never see a raw executor internal."""
        hook = getattr(self.predictor, "record_failure", None)
        if hook is not None:
            try:
                hook([p.request for p in chunk], error)
            except Exception:
                pass  # the hook must not strand futures or kill flushes
        for pending in chunk:
            pending.future.set_exception(error)
