"""Micro-batching scheduler: many callers, one pool of flush workers.

PR 1/2 made whole-batch inference ~20x cheaper per example than the
per-example path — but a serving frontend receives requests one at a
time. :class:`BatchScheduler` is the piece in between: ``submit()``
enqueues a single :class:`~repro.serving.api.QueryRequest` and returns
a :class:`concurrent.futures.Future`; queued requests are coalesced
into one flush when either

* the queue reaches ``max_batch`` (flushed by the submitting caller),
* the oldest queued request has waited ``max_wait_s`` (flushed by the
  background deadline thread), or
* the caller forces it (``flush()`` / ``close()`` / context-manager
  exit).

With ``n_workers == 1`` (the default) a flush is one inline
``predict_batch`` call, serialized exactly like the original
single-worker scheduler. With ``n_workers > 1`` each flush is split
into up to ``n_workers`` sub-batches — contiguous slices, or whatever
the predictor's optional ``partition_batch`` hook returns (the router
partitions by task) — dispatched concurrently and reassembled in
submission order. ``worker_mode`` picks the pool:

* ``"thread"`` (default) — a ``ThreadPoolExecutor`` running
  ``predict_batch`` in-process. Cheap, but CPU-bound einsum scans
  serialise on the GIL, so it only helps when the predictor releases
  the GIL (large BLAS calls) or blocks on I/O.
* ``"process"`` — a ``ProcessPoolExecutor`` whose workers rebuild the
  predictor locally from its picklable
  :class:`~repro.serving.worker.WorkerSpec` (artifact directory +
  backend + sharding + quantized flag), memory-mapping the artifacts
  npz so all workers share one set of weight pages. Only encoded
  sub-batch arrays cross the pipe (via the predictor's
  ``worker_payload`` hook); stacked result arrays come back and are
  decoded parent-side by ``worker_decode`` — the same decode the
  thread path uses, so responses are bit-identical between modes.
  Requires an artifact-backed predictor; the pool exists even at
  ``n_workers == 1`` (execution is still out-of-process).

Future semantics are unchanged either way: a future cancelled before
its flush is skipped, every other future resolves with its own
response (or the sub-batch's exception). The predictor must be
thread-safe to benefit from ``worker_mode="thread"``; the numpy
engines are (frozen weights, no shared mutable state).

Per-request latency, per-flush batch sizes and per-flush sub-batch
counts are recorded in :class:`~repro.serving.api.ServingStats` — the
numbers ``benchmarks/test_bench_sharding.py`` turns into the scaling
curves.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.serving.api import Predictor, QueryRequest, QueryResponse, ServingStats
from repro.serving.worker import initialize_worker, predict_encoded

WORKER_MODES = ("thread", "process")


@dataclass
class _Pending:
    request: QueryRequest
    future: Future
    submitted_at: float


class BatchScheduler:
    """Coalesces individually submitted requests into vectorised batches.

    ``predictor`` is anything satisfying the
    :class:`~repro.serving.api.Predictor` protocol. With
    ``start_worker=False`` no deadline thread is spawned and flushes
    happen only on max-batch, ``flush()`` or ``close()`` — fully
    deterministic, the mode the unit tests use (the flush *pool* is
    still used when ``n_workers > 1``; ``_execute`` blocks until its
    sub-batches finish, so determinism is preserved).
    """

    def __init__(
        self,
        predictor: Predictor,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        start_worker: bool = True,
        n_workers: int = 1,
        worker_mode: str = "thread",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if worker_mode not in WORKER_MODES:
            raise ValueError(
                f"worker_mode must be one of {WORKER_MODES}, got {worker_mode!r}"
            )
        self.predictor = predictor
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.n_workers = int(n_workers)
        self.worker_mode = worker_mode
        self.stats = ServingStats()
        self._pending: list[_Pending] = []
        self._cond = threading.Condition()
        self._exec_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._closed = False
        # _pool is guarded by _pool_cond: flushes take a usage token
        # (_acquire_pool/_release_pool) and close() retires the pool
        # only once every in-flight flush has released — see close().
        self._pool_cond = threading.Condition()
        self._pool_users = 0
        if worker_mode == "process":
            # Fail at construction, not at first flush: process mode
            # needs a predictor that can describe itself as WorkerSpecs.
            specs_hook = getattr(predictor, "worker_specs", None)
            if specs_hook is None:
                raise ValueError(
                    "worker_mode='process' needs a predictor with "
                    "worker_specs/worker_payload/worker_decode hooks "
                    "(open it from an artifact directory)"
                )
            # Even one process worker runs out-of-process, so the pool
            # exists for every n_workers in this mode.
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=initialize_worker,
                initargs=(specs_hook(),),
            )
        else:
            self._pool = (
                ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="BatchSchedulerWorker",
                )
                if self.n_workers > 1
                else None
            )
        self._worker: threading.Thread | None = None
        if start_worker:
            self._worker = threading.Thread(
                target=self._worker_loop, name="BatchScheduler", daemon=True
            )
            self._worker.start()

    # -- client side ---------------------------------------------------
    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Enqueue one request; the Future resolves at the next flush."""
        future: Future = Future()
        batch: list[_Pending] = []
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._pending.append(_Pending(request, future, time.perf_counter()))
            if len(self._pending) >= self.max_batch:
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
            elif len(self._pending) == 1:
                # Wake the deadline thread only to arm a deadline for a
                # newly non-empty queue; notifying on every submit would
                # GIL-thrash against busy submitters.
                self._cond.notify_all()
        if batch:  # full batch: the submitting caller pays the flush
            self._execute(batch)
        return future

    def flush(self) -> None:
        """Drain every queued request now, in the calling thread."""
        while True:
            with self._cond:
                batch = self._pending[: self.max_batch]
                del self._pending[: len(batch)]
            if not batch:
                return
            self._execute(batch)

    def close(self) -> None:
        """Flush outstanding requests and stop the workers. Idempotent.

        A max-batch flush from a racing ``submit()`` may still be in
        flight here; the pool is retired only after every such flush
        has released its usage token, so ``_execute`` never observes
        the pool disappearing mid-flush (the old code nulled the pool
        immediately, stranding already-RUNNING futures with an
        AttributeError in the flushing thread).
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        self.flush()
        with self._pool_cond:
            while self._pool_users:
                self._pool_cond.wait()
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)

    # -- flush machinery -----------------------------------------------
    def _worker_loop(self) -> None:
        """Flush queues whose oldest request has aged past max_wait_s."""
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return  # close() drains what is left
                deadline = self._pending[0].submitted_at + self.max_wait_s
                now = time.perf_counter()
                while (
                    self._pending
                    and not self._closed
                    and len(self._pending) < self.max_batch
                    and now < deadline
                ):
                    self._cond.wait(timeout=deadline - now)
                    now = time.perf_counter()
                    if self._pending:
                        deadline = self._pending[0].submitted_at + self.max_wait_s
                batch = self._pending[: self.max_batch]
                del self._pending[: len(batch)]
            self._execute(batch)

    def _partition(self, batch: list[_Pending]) -> list[list[_Pending]]:
        """Split a flush into sub-batches for the worker pool.

        Uses the predictor's task-aware ``partition_batch`` hook when
        present (so mixed-task flushes are not split mid-task),
        otherwise balanced contiguous chunks.
        """
        n = min(self.n_workers, len(batch))
        hook = getattr(self.predictor, "partition_batch", None)
        if hook is not None:
            groups = hook([p.request for p in batch], n)
            chunks = [[batch[i] for i in group] for group in groups if group]
            if chunks and sorted(i for g in groups for i in g) == list(
                range(len(batch))
            ):
                return chunks
        size, extra = divmod(len(batch), n)
        chunks, start = [], 0
        for k in range(n):
            stop = start + size + (1 if k < extra else 0)
            chunks.append(batch[start:stop])
            start = stop
        return [c for c in chunks if c]

    def _acquire_pool(self):
        """Take a usage token on the pool, or None when it is gone.

        Holding a token blocks ``close()`` from shutting the pool down,
        so a captured pool reference stays submittable for the whole
        flush — this (plus the inline fallback in ``_execute``) is the
        fix for the close/flush race.
        """
        with self._pool_cond:
            if self._pool is None:
                return None
            self._pool_users += 1
            return self._pool

    def _release_pool(self) -> None:
        with self._pool_cond:
            self._pool_users -= 1
            if not self._pool_users:
                self._pool_cond.notify_all()

    def _execute(self, batch: list[_Pending]) -> None:
        # Transition every future to RUNNING first: a future the caller
        # already cancelled drops out here, and the rest can no longer
        # be cancelled, so set_result/set_exception below cannot raise
        # InvalidStateError (which would kill the flushing thread and
        # strand the remaining futures of the batch).
        batch = [p for p in batch if p.future.set_running_or_notify_cancel()]
        if not batch:
            return
        pool = self._acquire_pool()
        if pool is None:
            # Single-worker mode, or close() already retired the pool
            # out from under a racing max-batch flush: answer inline so
            # the RUNNING futures resolve instead of stranding.
            with self._exec_lock:  # one predictor call at a time
                self._run_chunk(batch)
            with self._stats_lock:
                self.stats.record_flush(len(batch), n_shards=1)
            self._sync_cache_stats()
            return
        try:
            try:
                chunks = self._partition(batch)
            except Exception as error:
                # The partition hook is predictor code too: a raising
                # hook must resolve (not strand) the already-RUNNING
                # futures, and must not kill the deadline thread.
                for pending in batch:
                    pending.future.set_exception(error)
                return
            if self.worker_mode == "process":
                self._execute_process(pool, chunks)
            else:
                self._execute_threads(pool, chunks)
            with self._stats_lock:
                self.stats.record_flush(len(batch), n_shards=len(chunks))
            self._sync_cache_stats()
        finally:
            self._release_pool()

    def _sync_cache_stats(self) -> None:
        """Mirror the predictor's cumulative story-cache counters into
        ``stats`` (no-op for predictors without the hook / a cache)."""
        counters_hook = getattr(self.predictor, "cache_counters", None)
        if counters_hook is None:
            return
        counters = counters_hook()
        if counters is None:
            return
        with self._stats_lock:
            self.stats.set_cache_counters(*counters)

    def _execute_threads(self, pool, chunks: list[list[_Pending]]) -> None:
        submitted = []
        failure = None
        for chunk in chunks[1:]:
            if failure is None:
                try:
                    submitted.append(pool.submit(self._run_chunk, chunk))
                    continue
                except Exception as error:  # e.g. a broken executor
                    failure = error
            for pending in chunk:
                pending.future.set_exception(failure)
        # The flushing thread works one sub-batch itself instead of
        # idling — with W workers a flush occupies W threads, not W+1.
        self._run_chunk(chunks[0])
        for future in submitted:
            future.result()  # _run_chunk never raises; propagate crashes

    def _execute_process(self, pool, chunks: list[list[_Pending]]) -> None:
        """Ship each sub-batch's encoded arrays to a worker process.

        Every chunk is submitted before any result is awaited so the
        pool works them concurrently; each stage resolves its own
        chunk's futures on failure (a bad payload, a broken pool, a
        worker exception) without stranding the other chunks.
        """
        jobs: list[tuple[list[_Pending], Future | None]] = []
        for chunk in chunks:
            try:
                payload = self.predictor.worker_payload(
                    [p.request for p in chunk]
                )
                jobs.append((chunk, pool.submit(predict_encoded, *payload)))
            except Exception as error:
                for pending in chunk:
                    pending.future.set_exception(error)
                jobs.append((chunk, None))
        for chunk, job in jobs:
            if job is None:
                continue
            try:
                labels, logits, comparisons, early_exits, cache_delta = (
                    job.result()
                )
                responses = self.predictor.worker_decode(
                    [p.request for p in chunk],
                    labels,
                    logits,
                    comparisons,
                    early_exits,
                )
            except Exception as error:
                for pending in chunk:
                    pending.future.set_exception(error)
                continue
            if cache_delta is not None:
                absorb = getattr(self.predictor, "absorb_worker_cache", None)
                if absorb is not None:
                    absorb([p.request for p in chunk], cache_delta)
            done = time.perf_counter()
            latencies = [done - pending.submitted_at for pending in chunk]
            with self._stats_lock:
                self.stats.record_latencies(latencies)
            for pending, response, latency in zip(chunk, responses, latencies):
                pending.future.set_result(replace(response, latency_s=latency))

    def _run_chunk(self, chunk: list[_Pending]) -> None:
        """Answer one sub-batch, resolving its futures in order."""
        try:
            responses = self.predictor.predict_batch(
                [p.request for p in chunk]
            )
        except Exception as error:  # propagate to this sub-batch's waiters
            for pending in chunk:
                pending.future.set_exception(error)
            return
        done = time.perf_counter()
        latencies = [done - pending.submitted_at for pending in chunk]
        with self._stats_lock:
            self.stats.record_latencies(latencies)
        for pending, response, latency in zip(chunk, responses, latencies):
            pending.future.set_result(replace(response, latency_s=latency))
