"""Multi-task routing: many named predictors behind one scheduler.

A deployment serves all twenty bAbI tasks, not one. ``ModelRouter``
holds one :class:`~repro.serving.api.Predictor` per route (a bAbI task
id / artifact task directory), routes each request's
``QueryRequest.task`` to its model, and funnels every route through a
single shared :class:`~repro.serving.BatchScheduler` — so micro-batching
and the worker pool amortise across tasks instead of per-task::

    with ModelRouter.open("artifacts/", n_workers=4, shards=4) as router:
        future = router.submit(QueryRequest(story, question, task=6))
        print(future.result().answer)

Flushes containing several tasks are partitioned task-first (the
router implements the scheduler's ``partition_batch`` hook), so each
worker executes one single-task vectorised ``predict_batch``. Per-route
traffic is accounted in ``router.route_stats[task]``; scheduler-level
flush statistics stay in ``router.stats``.

**Per-route circuit breaking** (``breaker_threshold=N``): a route that
fails ``N`` consecutive flushes is isolated — its
:class:`~repro.serving.resilience.CircuitBreaker` opens, and requests
for it fail fast with
:class:`~repro.serving.errors.RouteUnavailableError` (checked at
submission, before a doomed request can occupy queue room) instead of
burning shared scheduler capacity on a model that cannot answer. After
``breaker_reset_s`` the breaker half-opens and probe flushes test the
route; one success closes it. A route with a configured *fallback*
predictor (``fallbacks=`` / ``ModelRouter.open(breaker_fallback=True)``)
keeps answering while open — degraded (unsharded, cache-bypassing)
but live — with ``degraded`` counted in the stats. Healthy routes are
untouched either way: breaker state is strictly per route.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from repro.serving.api import (
    DeadlineExceededError,
    OverloadError,
    Predictor,
    QueryRequest,
    QueryResponse,
    ServingStats,
)
from repro.serving.clock import MONOTONIC
from repro.serving.errors import RouteUnavailableError, SchedulerClosedError
from repro.serving.resilience import CircuitBreaker
from repro.serving.scheduler import BatchScheduler

#: Failures that say nothing about the *route*'s health: admission and
#: lifecycle outcomes must not trip a circuit breaker.
_BREAKER_EXEMPT = (
    RouteUnavailableError,
    SchedulerClosedError,
    OverloadError,
    DeadlineExceededError,
)


class _RoutingPredictor:
    """Predictor facade dispatching mixed-task batches to their routes."""

    def __init__(self, routes, route_stats, resolve):
        self._routes = routes
        self._route_stats = route_stats
        self._resolve = resolve
        self._stats_lock = threading.Lock()
        self._breakers: dict = {}
        self._fallbacks: dict = {}
        self._scheduler = None
        # Process-mode sub-batches served by a fallback, keyed by the
        # identity of their first request object (stable between the
        # worker_payload and worker_decode calls of one chunk).
        self._degraded_keys: set[int] = set()
        self._degraded_lock = threading.Lock()

    def attach_breakers(self, breakers, fallbacks) -> None:
        """Wire the router's per-route breakers/fallbacks in. Must run
        before the scheduler is built so fallback WorkerSpecs make it
        into the process-pool initializer; the router points
        ``_scheduler`` at the shared scheduler afterwards (degraded
        counts mirror into its stats)."""
        self._breakers = breakers
        self._fallbacks = fallbacks

    def _pick(self, task):
        """The predictor serving ``task`` right now: ``(predictor,
        primary)``. Consults the breaker (consuming a half-open probe
        slot when applicable); an open breaker diverts to the route's
        fallback or raises
        :class:`~repro.serving.errors.RouteUnavailableError`."""
        breaker = self._breakers.get(task)
        if breaker is None or breaker.allow():
            return self._routes[task], True
        fallback = self._fallbacks.get(task)
        if fallback is not None:
            return fallback, False
        raise RouteUnavailableError(
            f"route {task!r} circuit breaker is {breaker.state} and no "
            "fallback is configured; retry after the reset timeout"
        )

    def _note_degraded(self, task, n: int) -> None:
        with self._stats_lock:
            self._route_stats[task].record_degraded(n)
        if self._scheduler is not None:
            self._scheduler.note_degraded(n)

    def record_failure(self, requests: Sequence[QueryRequest], error) -> None:
        """Scheduler failure hook: feed each failed sub-batch's route
        breaker. Pooled sub-batches are task-pure so the blame is
        exact; an inline mixed batch blames every route present (the
        flush failed for all of them). Admission/lifecycle errors are
        exempt — they say nothing about route health."""
        if isinstance(error, _BREAKER_EXEMPT):
            return
        with self._degraded_lock:
            self._degraded_keys.discard(id(requests[0]))
        for task in {self._resolve(request) for request in requests}:
            breaker = self._breakers.get(task)
            if breaker is not None:
                breaker.record_failure()

    def _grouped(self, requests: Sequence[QueryRequest]):
        """Indices grouped by resolved task, in submission order."""
        groups: dict = {}
        for i, request in enumerate(requests):
            groups.setdefault(self._resolve(request), []).append(i)
        return groups

    def predict(self, request: QueryRequest) -> QueryResponse:
        return self.predict_batch([request])[0]

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]:
        responses: list[QueryResponse | None] = [None] * len(requests)
        for task, indices in self._grouped(requests).items():
            predictor, primary = self._pick(task)
            answered = predictor.predict_batch(
                [requests[i] for i in indices]
            )
            breaker = self._breakers.get(task)
            if primary:
                if breaker is not None:
                    breaker.record_success()
            else:
                self._note_degraded(task, len(indices))
            with self._stats_lock:
                self._route_stats[task].record_flush(len(indices))
                self._sync_route_cache(task)
            for i, response in zip(indices, answered):
                responses[i] = response
        return responses

    def _sync_route_cache(self, task) -> None:
        """Mirror one route's story-cache counters into its per-route
        stats (caller holds ``_stats_lock``; no-op without a cache)."""
        hook = getattr(self._routes[task], "cache_counters", None)
        counters = hook() if hook is not None else None
        if counters is not None:
            self._route_stats[task].set_cache_counters(*counters)

    def cache_counters(self) -> tuple[int, int, int] | None:
        """Cumulative ``(hits, misses, evictions)`` over every route's
        story cache, or None when no route caches — the scheduler's
        ``ServingStats`` mirror aggregates all routes."""
        totals = None
        for predictor in self._routes.values():
            hook = getattr(predictor, "cache_counters", None)
            counters = hook() if hook is not None else None
            if counters is None:
                continue
            if totals is None:
                totals = [0, 0, 0]
            for k in range(3):
                totals[k] += counters[k]
        return tuple(totals) if totals is not None else None

    def absorb_worker_cache(self, requests, delta) -> None:
        """Fold a worker's cache-counter delta into the sub-batch's
        (single) route — process-mode parent-side accounting."""
        task = self._single_route(requests)
        absorb = getattr(self._routes[task], "absorb_worker_cache", None)
        if absorb is not None:
            absorb(requests, delta)

    # -- process-worker hooks (see repro.serving.worker) ---------------
    def worker_specs(self):
        """Every route's rebuild spec, for the process pool initializer.

        Configured fallback predictors' specs ride along so workers are
        pre-built for degraded serving too (a worker that missed one
        still builds it lazily on first use).
        """
        specs = []
        for task in sorted(self._routes, key=repr):
            predictor = self._routes[task]
            hook = getattr(predictor, "worker_specs", None)
            if hook is None:
                raise ValueError(
                    f"route {task!r} ({type(predictor).__name__}) cannot "
                    "serve in worker_mode='process' — it has no worker "
                    "hooks"
                )
            specs.extend(hook())
            fallback = self._fallbacks.get(task)
            fallback_hook = getattr(fallback, "worker_specs", None)
            if fallback_hook is not None:
                specs.extend(fallback_hook())
        return specs

    def _single_route(self, requests: Sequence[QueryRequest]):
        tasks = {self._resolve(request) for request in requests}
        if len(tasks) != 1:
            # partition_batch makes task-pure chunks; a mixed chunk
            # means a custom partition bypassed it.
            raise ValueError(
                f"process sub-batch spans tasks {sorted(tasks, key=repr)}; "
                "sub-batches must be single-task"
            )
        return tasks.pop()

    def worker_payload(self, requests: Sequence[QueryRequest]):
        task = self._single_route(requests)
        predictor, primary = self._pick(task)
        key = id(requests[0])
        with self._degraded_lock:
            # A replayed chunk re-picks: track the *latest* decision.
            if primary:
                self._degraded_keys.discard(key)
            else:
                self._degraded_keys.add(key)
        return predictor.worker_payload(requests)

    def worker_decode(self, requests, labels, logits, comparisons, early_exits):
        task = self._single_route(requests)
        with self._degraded_lock:
            degraded = id(requests[0]) in self._degraded_keys
            self._degraded_keys.discard(id(requests[0]))
        if degraded:
            responses = self._fallbacks[task].worker_decode(
                requests, labels, logits, comparisons, early_exits
            )
            self._note_degraded(task, len(requests))
        else:
            responses = self._routes[task].worker_decode(
                requests, labels, logits, comparisons, early_exits
            )
            breaker = self._breakers.get(task)
            if breaker is not None:
                breaker.record_success()
        with self._stats_lock:
            self._route_stats[task].record_flush(len(requests))
            self._sync_route_cache(task)
        return responses

    def partition_batch(
        self, requests: Sequence[QueryRequest], n: int
    ) -> list[list[int]]:
        """Task-first partition for the scheduler's worker pool.

        Each sub-batch is single-task (one vectorised engine call);
        large task groups are split further so roughly ``n`` chunks
        cover the flush.
        """
        groups = list(self._grouped(requests).values())
        total = len(requests)
        chunks: list[list[int]] = []
        spare = max(0, n - len(groups))
        for group in groups:
            extra = min(spare, max(0, round(len(group) * n / total) - 1))
            spare -= extra
            pieces = 1 + extra
            size, rem = divmod(len(group), pieces)
            start = 0
            for k in range(pieces):
                stop = start + size + (1 if k < rem else 0)
                if stop > start:
                    chunks.append(group[start:stop])
                start = stop
        return chunks


class ModelRouter:
    """Many named predictors, one scheduler, per-route statistics.

    ``predictors`` maps route keys (bAbI task ids) to built
    :class:`Predictor` objects; :meth:`open` builds the whole map from
    an artifact directory or suite in one call. ``submit`` validates
    ``request.task`` eagerly (an unknown task raises in the caller, it
    never poisons a flush); a router with exactly one route accepts
    requests with ``task=None``.
    """

    def __init__(
        self,
        predictors: Mapping[int | str, Predictor],
        *,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        n_workers: int = 1,
        worker_mode: str = "thread",
        start_worker: bool = True,
        breaker_threshold: int | None = None,
        breaker_reset_s: float = 0.5,
        breaker_probes: int = 1,
        fallbacks: Mapping[int | str, Predictor] | None = None,
        **scheduler_kwargs,
    ):
        if not predictors:
            raise ValueError("need at least one route")
        self._routes = dict(predictors)
        self._fallbacks = dict(fallbacks) if fallbacks else {}
        unknown = set(self._fallbacks) - set(self._routes)
        if unknown:
            raise KeyError(
                f"fallbacks for unknown routes {sorted(unknown, key=repr)}"
            )
        self.route_stats: dict = {
            task: ServingStats() for task in self._routes
        }
        self._dispatch = _RoutingPredictor(
            self._routes, self.route_stats, self.resolve_task
        )
        # Breakers share the scheduler's clock (ManualClock tests drive
        # reset timeouts by hand); on_open fires through the router so
        # both the per-route and the scheduler stats count it.
        clock = scheduler_kwargs.get("clock", MONOTONIC)
        self.breakers: dict = {}
        if breaker_threshold is not None:
            self.breakers = {
                task: CircuitBreaker(
                    failure_threshold=breaker_threshold,
                    reset_timeout_s=breaker_reset_s,
                    half_open_probes=breaker_probes,
                    clock=clock,
                    on_open=(lambda task=task: self._note_breaker_open(task)),
                )
                for task in self._routes
            }
        # Attach before the scheduler exists: process mode snapshots
        # worker_specs() (fallbacks included) at pool construction.
        self._dispatch.attach_breakers(self.breakers, self._fallbacks)
        # scheduler_kwargs forwards the admission-control / SLO /
        # resilience knobs (queue_cap, overload_policy, inline_flush,
        # cost_model, clock, deadline_margin_s, retry_policy,
        # supervise_pool, max_pool_rebuilds) without re-declaring them.
        self.scheduler = BatchScheduler(
            self._dispatch,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            start_worker=start_worker,
            n_workers=n_workers,
            worker_mode=worker_mode,
            **scheduler_kwargs,
        )
        self._dispatch._scheduler = self.scheduler

    def _note_breaker_open(self, task) -> None:
        """CircuitBreaker ``on_open`` hook: count the transition in the
        route's stats and the shared scheduler's."""
        with self._dispatch._stats_lock:
            self.route_stats[task].record_breaker_open()
        self.scheduler.note_breaker_open()

    # -- construction ----------------------------------------------------
    @classmethod
    def open(
        cls,
        artifacts,
        tasks: Sequence[int] | None = None,
        *,
        device: str = "sw",
        mips_backend: str = "exact",
        shards: int | None = None,
        shard_axis: str = "batch",
        quantized: bool = False,
        cache_entries: int | None = None,
        cache_bytes: int | None = None,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        n_workers: int = 1,
        worker_mode: str = "thread",
        start_worker: bool = True,
        queue_cap: int | None = None,
        overload_policy: str = "block",
        inline_flush: bool = True,
        retry_policy=None,
        supervise_pool: bool = True,
        max_pool_rebuilds: int = 8,
        breaker_threshold: int | None = None,
        breaker_reset_s: float = 0.5,
        breaker_probes: int = 1,
        breaker_fallback: bool = False,
        chaos_plan=None,
        **params,
    ) -> "ModelRouter":
        """One route per task of a saved artifact directory or suite.

        ``artifacts`` is anything :func:`~repro.serving.open_predictor`
        accepts (the suite is loaded once and shared across routes);
        ``tasks`` restricts the routes (default: every task present).
        The remaining keywords go to ``open_predictor`` per route —
        including the shard-parallel MIPS knobs ``shards``/
        ``shard_axis``, ``quantized`` serving, and the story-encoding
        cache bounds ``cache_entries``/``cache_bytes`` (one
        :class:`~repro.serving.cache.MemoryCache` **per route** — keys
        never collide across vocabularies/models).
        ``worker_mode="process"`` requires ``artifacts`` to be a
        directory path: the worker processes rebuild each route from it
        (mmap-shared weights; see :mod:`repro.serving.worker`).
        ``queue_cap``/``overload_policy``/``inline_flush`` are the
        shared scheduler's admission-control knobs (see
        :class:`~repro.serving.BatchScheduler`).

        Resilience knobs: ``retry_policy``/``supervise_pool``/
        ``max_pool_rebuilds`` forward to the shared scheduler;
        ``breaker_threshold``/``breaker_reset_s``/``breaker_probes``
        arm one :class:`~repro.serving.resilience.CircuitBreaker` per
        route. ``breaker_fallback=True`` additionally opens a degraded
        twin of every route — same model and backend, but unsharded
        and cache-bypassing — that keeps answering while the route's
        breaker is open. ``chaos_plan``
        (a :class:`~repro.serving.chaos.FaultPlan`) wraps every primary
        route in a :class:`~repro.serving.chaos.ChaosPredictor` with a
        per-route forked seed — the deterministic fault-injection mode
        the chaos soaks use; fallbacks stay fault-free.
        """
        from pathlib import Path

        from repro.eval.suite import BabiSuite, TaskSystem
        from repro.serving.predictor import open_predictor

        spec_source = None
        if isinstance(artifacts, (str, Path)):
            from repro.artifacts import load_suite

            spec_source = artifacts
            artifacts = load_suite(artifacts)
        if isinstance(artifacts, TaskSystem):
            artifacts_tasks = [artifacts.task_id]
        elif isinstance(artifacts, BabiSuite):
            artifacts_tasks = artifacts.task_ids
        else:
            raise TypeError(
                "artifacts must be an artifact directory path, a BabiSuite "
                f"or a TaskSystem, got {type(artifacts).__name__}"
            )
        tasks = list(tasks) if tasks is not None else list(artifacts_tasks)
        missing = set(tasks) - set(artifacts_tasks)
        if missing:
            raise KeyError(
                f"tasks {sorted(missing)} not in artifacts "
                f"(available: {list(artifacts_tasks)})"
            )
        predictors = {
            task: open_predictor(
                artifacts,
                task,
                device=device,
                mips_backend=mips_backend,
                shards=shards,
                shard_axis=shard_axis,
                quantized=quantized,
                cache_entries=cache_entries,
                cache_bytes=cache_bytes,
                spec_source=spec_source,
                **params,
            )
            for task in tasks
        }
        if chaos_plan is not None:
            from repro.serving.chaos import ChaosPredictor

            predictors = {
                task: ChaosPredictor(predictor, chaos_plan.fork(task))
                for task, predictor in predictors.items()
            }
        fallbacks = None
        if breaker_fallback:
            fallbacks = {
                task: open_predictor(
                    artifacts,
                    task,
                    device=device,
                    mips_backend=mips_backend,
                    shards=None,
                    shard_axis="batch",
                    quantized=quantized,
                    cache_entries=None,
                    cache_bytes=None,
                    spec_source=spec_source,
                    **params,
                )
                for task in tasks
            }
        return cls(
            predictors,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            n_workers=n_workers,
            worker_mode=worker_mode,
            start_worker=start_worker,
            queue_cap=queue_cap,
            overload_policy=overload_policy,
            inline_flush=inline_flush,
            retry_policy=retry_policy,
            supervise_pool=supervise_pool,
            max_pool_rebuilds=max_pool_rebuilds,
            breaker_threshold=breaker_threshold,
            breaker_reset_s=breaker_reset_s,
            breaker_probes=breaker_probes,
            fallbacks=fallbacks,
        )

    # -- routing ----------------------------------------------------------
    @property
    def tasks(self) -> list:
        return sorted(self._routes)

    @property
    def stats(self) -> ServingStats:
        """Scheduler-level flush statistics (all routes combined)."""
        return self.scheduler.stats

    def resolve_task(self, request: QueryRequest):
        """The route key answering ``request`` (strict, raises early)."""
        task = request.task
        if task is None:
            if len(self._routes) == 1:
                return next(iter(self._routes))
            raise ValueError(
                f"request has no task; routes: {self.tasks} — set "
                "QueryRequest.task"
            )
        if task not in self._routes:
            raise KeyError(
                f"unknown task {task!r}; routes: {self.tasks}"
            )
        return task

    def predictor(self, task) -> Predictor:
        """The underlying predictor of one route."""
        if task not in self._routes:
            raise KeyError(f"unknown task {task!r}; routes: {self.tasks}")
        return self._routes[task]

    def _check_route_available(self, task) -> None:
        """Admission fast-fail: a request for an open-breaker route with
        no fallback is doomed — raise
        :class:`~repro.serving.errors.RouteUnavailableError` *now*
        instead of letting it occupy queue room and poison a flush.
        Read-only (:meth:`CircuitBreaker.would_allow`): half-open probe
        slots are consumed at flush time, not here."""
        breaker = self.breakers.get(task)
        if (
            breaker is not None
            and task not in self._fallbacks
            and not breaker.would_allow()
        ):
            raise RouteUnavailableError(
                f"route {task!r} circuit breaker is {breaker.state}; "
                "retry after the reset timeout"
            )

    def submit(self, request: QueryRequest):
        """Enqueue one request on the shared scheduler (validated now,
        including the route's breaker state)."""
        self._check_route_available(self.resolve_task(request))
        return self.scheduler.submit(request)

    def submit_nowait(self, request: QueryRequest):
        """Like :meth:`submit`, but a full bounded queue raises
        :class:`~repro.serving.api.OverloadError` instead of blocking
        (the :class:`~repro.serving.frontend.AsyncFrontend` admission
        path)."""
        self._check_route_available(self.resolve_task(request))
        return self.scheduler.submit_nowait(request)

    def add_room_callback(self, callback) -> None:
        """Forward a queue-room wakeup registration to the scheduler."""
        self.scheduler.add_room_callback(callback)

    def predict(self, request: QueryRequest) -> QueryResponse:
        """Answer one request directly (no scheduling), with accounting."""
        return self._dispatch.predict(request)

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]:
        """Answer a mixed-task batch directly (no scheduling)."""
        return self._dispatch.predict_batch(requests)

    # -- lifecycle ----------------------------------------------------------
    def flush(self) -> None:
        self.scheduler.flush()

    def close(self) -> None:
        self.scheduler.close()

    def __enter__(self) -> "ModelRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
