"""Multi-task routing: many named predictors behind one scheduler.

A deployment serves all twenty bAbI tasks, not one. ``ModelRouter``
holds one :class:`~repro.serving.api.Predictor` per route (a bAbI task
id / artifact task directory), routes each request's
``QueryRequest.task`` to its model, and funnels every route through a
single shared :class:`~repro.serving.BatchScheduler` — so micro-batching
and the worker pool amortise across tasks instead of per-task::

    with ModelRouter.open("artifacts/", n_workers=4, shards=4) as router:
        future = router.submit(QueryRequest(story, question, task=6))
        print(future.result().answer)

Flushes containing several tasks are partitioned task-first (the
router implements the scheduler's ``partition_batch`` hook), so each
worker executes one single-task vectorised ``predict_batch``. Per-route
traffic is accounted in ``router.route_stats[task]``; scheduler-level
flush statistics stay in ``router.stats``.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from repro.serving.api import (
    Predictor,
    QueryRequest,
    QueryResponse,
    ServingStats,
)
from repro.serving.scheduler import BatchScheduler


class _RoutingPredictor:
    """Predictor facade dispatching mixed-task batches to their routes."""

    def __init__(self, routes, route_stats, resolve):
        self._routes = routes
        self._route_stats = route_stats
        self._resolve = resolve
        self._stats_lock = threading.Lock()

    def _grouped(self, requests: Sequence[QueryRequest]):
        """Indices grouped by resolved task, in submission order."""
        groups: dict = {}
        for i, request in enumerate(requests):
            groups.setdefault(self._resolve(request), []).append(i)
        return groups

    def predict(self, request: QueryRequest) -> QueryResponse:
        return self.predict_batch([request])[0]

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]:
        responses: list[QueryResponse | None] = [None] * len(requests)
        for task, indices in self._grouped(requests).items():
            answered = self._routes[task].predict_batch(
                [requests[i] for i in indices]
            )
            with self._stats_lock:
                self._route_stats[task].record_flush(len(indices))
                self._sync_route_cache(task)
            for i, response in zip(indices, answered):
                responses[i] = response
        return responses

    def _sync_route_cache(self, task) -> None:
        """Mirror one route's story-cache counters into its per-route
        stats (caller holds ``_stats_lock``; no-op without a cache)."""
        hook = getattr(self._routes[task], "cache_counters", None)
        counters = hook() if hook is not None else None
        if counters is not None:
            self._route_stats[task].set_cache_counters(*counters)

    def cache_counters(self) -> tuple[int, int, int] | None:
        """Cumulative ``(hits, misses, evictions)`` over every route's
        story cache, or None when no route caches — the scheduler's
        ``ServingStats`` mirror aggregates all routes."""
        totals = None
        for predictor in self._routes.values():
            hook = getattr(predictor, "cache_counters", None)
            counters = hook() if hook is not None else None
            if counters is None:
                continue
            if totals is None:
                totals = [0, 0, 0]
            for k in range(3):
                totals[k] += counters[k]
        return tuple(totals) if totals is not None else None

    def absorb_worker_cache(self, requests, delta) -> None:
        """Fold a worker's cache-counter delta into the sub-batch's
        (single) route — process-mode parent-side accounting."""
        task = self._single_route(requests)
        absorb = getattr(self._routes[task], "absorb_worker_cache", None)
        if absorb is not None:
            absorb(requests, delta)

    # -- process-worker hooks (see repro.serving.worker) ---------------
    def worker_specs(self):
        """Every route's rebuild spec, for the process pool initializer."""
        specs = []
        for task in sorted(self._routes, key=repr):
            predictor = self._routes[task]
            hook = getattr(predictor, "worker_specs", None)
            if hook is None:
                raise ValueError(
                    f"route {task!r} ({type(predictor).__name__}) cannot "
                    "serve in worker_mode='process' — it has no worker "
                    "hooks"
                )
            specs.extend(hook())
        return specs

    def _single_route(self, requests: Sequence[QueryRequest]):
        tasks = {self._resolve(request) for request in requests}
        if len(tasks) != 1:
            # partition_batch makes task-pure chunks; a mixed chunk
            # means a custom partition bypassed it.
            raise ValueError(
                f"process sub-batch spans tasks {sorted(tasks, key=repr)}; "
                "sub-batches must be single-task"
            )
        return tasks.pop()

    def worker_payload(self, requests: Sequence[QueryRequest]):
        return self._routes[self._single_route(requests)].worker_payload(
            requests
        )

    def worker_decode(self, requests, labels, logits, comparisons, early_exits):
        task = self._single_route(requests)
        responses = self._routes[task].worker_decode(
            requests, labels, logits, comparisons, early_exits
        )
        with self._stats_lock:
            self._route_stats[task].record_flush(len(requests))
            self._sync_route_cache(task)
        return responses

    def partition_batch(
        self, requests: Sequence[QueryRequest], n: int
    ) -> list[list[int]]:
        """Task-first partition for the scheduler's worker pool.

        Each sub-batch is single-task (one vectorised engine call);
        large task groups are split further so roughly ``n`` chunks
        cover the flush.
        """
        groups = list(self._grouped(requests).values())
        total = len(requests)
        chunks: list[list[int]] = []
        spare = max(0, n - len(groups))
        for group in groups:
            extra = min(spare, max(0, round(len(group) * n / total) - 1))
            spare -= extra
            pieces = 1 + extra
            size, rem = divmod(len(group), pieces)
            start = 0
            for k in range(pieces):
                stop = start + size + (1 if k < rem else 0)
                if stop > start:
                    chunks.append(group[start:stop])
                start = stop
        return chunks


class ModelRouter:
    """Many named predictors, one scheduler, per-route statistics.

    ``predictors`` maps route keys (bAbI task ids) to built
    :class:`Predictor` objects; :meth:`open` builds the whole map from
    an artifact directory or suite in one call. ``submit`` validates
    ``request.task`` eagerly (an unknown task raises in the caller, it
    never poisons a flush); a router with exactly one route accepts
    requests with ``task=None``.
    """

    def __init__(
        self,
        predictors: Mapping[int | str, Predictor],
        *,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        n_workers: int = 1,
        worker_mode: str = "thread",
        start_worker: bool = True,
        **scheduler_kwargs,
    ):
        if not predictors:
            raise ValueError("need at least one route")
        self._routes = dict(predictors)
        self.route_stats: dict = {
            task: ServingStats() for task in self._routes
        }
        self._dispatch = _RoutingPredictor(
            self._routes, self.route_stats, self.resolve_task
        )
        # scheduler_kwargs forwards the admission-control / SLO knobs
        # (queue_cap, overload_policy, inline_flush, cost_model, clock,
        # deadline_margin_s) without re-declaring them here.
        self.scheduler = BatchScheduler(
            self._dispatch,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            start_worker=start_worker,
            n_workers=n_workers,
            worker_mode=worker_mode,
            **scheduler_kwargs,
        )

    # -- construction ----------------------------------------------------
    @classmethod
    def open(
        cls,
        artifacts,
        tasks: Sequence[int] | None = None,
        *,
        device: str = "sw",
        mips_backend: str = "exact",
        shards: int | None = None,
        shard_axis: str = "batch",
        quantized: bool = False,
        cache_entries: int | None = None,
        cache_bytes: int | None = None,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        n_workers: int = 1,
        worker_mode: str = "thread",
        start_worker: bool = True,
        queue_cap: int | None = None,
        overload_policy: str = "block",
        inline_flush: bool = True,
        **params,
    ) -> "ModelRouter":
        """One route per task of a saved artifact directory or suite.

        ``artifacts`` is anything :func:`~repro.serving.open_predictor`
        accepts (the suite is loaded once and shared across routes);
        ``tasks`` restricts the routes (default: every task present).
        The remaining keywords go to ``open_predictor`` per route —
        including the shard-parallel MIPS knobs ``shards``/
        ``shard_axis``, ``quantized`` serving, and the story-encoding
        cache bounds ``cache_entries``/``cache_bytes`` (one
        :class:`~repro.serving.cache.MemoryCache` **per route** — keys
        never collide across vocabularies/models).
        ``worker_mode="process"`` requires ``artifacts`` to be a
        directory path: the worker processes rebuild each route from it
        (mmap-shared weights; see :mod:`repro.serving.worker`).
        ``queue_cap``/``overload_policy``/``inline_flush`` are the
        shared scheduler's admission-control knobs (see
        :class:`~repro.serving.BatchScheduler`).
        """
        from pathlib import Path

        from repro.eval.suite import BabiSuite, TaskSystem
        from repro.serving.predictor import open_predictor

        spec_source = None
        if isinstance(artifacts, (str, Path)):
            from repro.artifacts import load_suite

            spec_source = artifacts
            artifacts = load_suite(artifacts)
        if isinstance(artifacts, TaskSystem):
            artifacts_tasks = [artifacts.task_id]
        elif isinstance(artifacts, BabiSuite):
            artifacts_tasks = artifacts.task_ids
        else:
            raise TypeError(
                "artifacts must be an artifact directory path, a BabiSuite "
                f"or a TaskSystem, got {type(artifacts).__name__}"
            )
        tasks = list(tasks) if tasks is not None else list(artifacts_tasks)
        missing = set(tasks) - set(artifacts_tasks)
        if missing:
            raise KeyError(
                f"tasks {sorted(missing)} not in artifacts "
                f"(available: {list(artifacts_tasks)})"
            )
        predictors = {
            task: open_predictor(
                artifacts,
                task,
                device=device,
                mips_backend=mips_backend,
                shards=shards,
                shard_axis=shard_axis,
                quantized=quantized,
                cache_entries=cache_entries,
                cache_bytes=cache_bytes,
                spec_source=spec_source,
                **params,
            )
            for task in tasks
        }
        return cls(
            predictors,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            n_workers=n_workers,
            worker_mode=worker_mode,
            start_worker=start_worker,
            queue_cap=queue_cap,
            overload_policy=overload_policy,
            inline_flush=inline_flush,
        )

    # -- routing ----------------------------------------------------------
    @property
    def tasks(self) -> list:
        return sorted(self._routes)

    @property
    def stats(self) -> ServingStats:
        """Scheduler-level flush statistics (all routes combined)."""
        return self.scheduler.stats

    def resolve_task(self, request: QueryRequest):
        """The route key answering ``request`` (strict, raises early)."""
        task = request.task
        if task is None:
            if len(self._routes) == 1:
                return next(iter(self._routes))
            raise ValueError(
                f"request has no task; routes: {self.tasks} — set "
                "QueryRequest.task"
            )
        if task not in self._routes:
            raise KeyError(
                f"unknown task {task!r}; routes: {self.tasks}"
            )
        return task

    def predictor(self, task) -> Predictor:
        """The underlying predictor of one route."""
        if task not in self._routes:
            raise KeyError(f"unknown task {task!r}; routes: {self.tasks}")
        return self._routes[task]

    def submit(self, request: QueryRequest):
        """Enqueue one request on the shared scheduler (validated now)."""
        self.resolve_task(request)
        return self.scheduler.submit(request)

    def submit_nowait(self, request: QueryRequest):
        """Like :meth:`submit`, but a full bounded queue raises
        :class:`~repro.serving.api.OverloadError` instead of blocking
        (the :class:`~repro.serving.frontend.AsyncFrontend` admission
        path)."""
        self.resolve_task(request)
        return self.scheduler.submit_nowait(request)

    def add_room_callback(self, callback) -> None:
        """Forward a queue-room wakeup registration to the scheduler."""
        self.scheduler.add_room_callback(callback)

    def predict(self, request: QueryRequest) -> QueryResponse:
        """Answer one request directly (no scheduling), with accounting."""
        return self._dispatch.predict(request)

    def predict_batch(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryResponse]:
        """Answer a mixed-task batch directly (no scheduling)."""
        return self._dispatch.predict_batch(requests)

    # -- lifecycle ----------------------------------------------------------
    def flush(self) -> None:
        self.scheduler.flush()

    def close(self) -> None:
        self.scheduler.close()

    def __enter__(self) -> "ModelRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
