"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper reports; this module
keeps that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Format a float with fixed decimals, tolerating None."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_ratio(value: float, digits: int = 2) -> str:
    """Format a normalised ratio like the paper's "126.72x"."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}x"


class TextTable:
    """A minimal left-aligned ASCII table.

    >>> t = TextTable(["config", "time"])
    >>> t.add_row(["GPU", "226.90"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(row)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        widths = self._widths()
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
