"""Shared utilities: seeded RNG helpers and text-table formatting."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.tables import TextTable, format_float, format_ratio

__all__ = [
    "RngMixin",
    "new_rng",
    "spawn_rngs",
    "TextTable",
    "format_float",
    "format_ratio",
]
