"""Deterministic random-number-generator helpers.

Everything in the reproduction that draws random numbers goes through
``numpy.random.Generator`` objects created here, so that experiments are
reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np


def new_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a fresh, independent ``numpy`` generator for ``seed``."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Return ``count`` statistically independent generators.

    Uses ``SeedSequence.spawn`` so the streams do not overlap even for
    adjacent seeds; used to give each bAbI task its own stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngMixin:
    """Mixin giving a class a lazily created ``self.rng`` generator."""

    _rng: np.random.Generator | None = None
    seed: int | None = 0

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self.seed)
        return self._rng

    def reseed(self, seed: int | None) -> None:
        """Reset the generator to a fresh stream for ``seed``."""
        self.seed = seed
        self._rng = new_rng(seed)
