"""Command-line interface: ``python -m repro <experiment> [options]``.

Subcommands regenerate the paper's tables and figures from the terminal
without writing any code:

    python -m repro table1 --tasks 1 2 3 --n-test 40
    python -m repro fig3
    python -m repro fig4
    python -m repro ablation
    python -m repro mips --mips-backend threshold   # MIPS backend eval
    python -m repro resources
    python -m repro tasks           # list the 20 bAbI task generators
"""

from __future__ import annotations

import argparse
import sys

from repro.babi.tasks import TASK_NAMES, all_task_ids
from repro.eval.experiments import (
    run_fig3,
    run_fig4,
    run_interface_ablation,
    run_table1,
)
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.hw import HwConfig, estimate_resources
from repro.mann.config import MannConfig
from repro.mips import available_backends
from repro.utils.tables import TextTable


def _add_suite_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tasks",
        type=int,
        nargs="+",
        default=list(all_task_ids()),
        help="bAbI task ids (default: all 20)",
    )
    parser.add_argument("--n-train", type=int, default=150)
    parser.add_argument("--n-test", type=int, default=50)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--seed", type=int, default=7)


def _build_suite(args: argparse.Namespace) -> BabiSuite:
    print(
        f"building suite: {len(args.tasks)} tasks, "
        f"{args.n_train} train / {args.n_test} test examples each ...",
        file=sys.stderr,
    )
    return BabiSuite.build(
        SuiteConfig(
            task_ids=tuple(args.tasks),
            n_train=args.n_train,
            n_test=args.n_test,
            epochs=args.epochs,
            seed=args.seed,
        )
    )


def _cmd_table1(args: argparse.Namespace) -> None:
    result = run_table1(_build_suite(args))
    print(result.to_table().render())
    print("\nITH inference-time reduction:")
    for mhz in result.frequencies:
        print(f"  {mhz:5.0f} MHz: {100 * result.ith_time_reduction(mhz):5.1f}%")


def _cmd_fig3(args: argparse.Namespace) -> None:
    print(run_fig3(_build_suite(args)).to_table().render())


def _cmd_fig4(args: argparse.Namespace) -> None:
    print(run_fig4(_build_suite(args)).to_table().render())


def _cmd_ablation(args: argparse.Namespace) -> None:
    print(run_interface_ablation(_build_suite(args)).to_table().render())


def _cmd_mips(args: argparse.Namespace) -> None:
    """Evaluate registered MIPS backends on the suite's test queries."""
    from repro.eval.backends import evaluate_mips_backends

    suite = _build_suite(args)
    names = (
        list(available_backends())
        if args.mips_backend == "all"
        else [args.mips_backend]
    )
    table = TextTable(
        [
            "backend",
            "agreement w/ exact",
            "label accuracy",
            "mean comparisons",
            "early-exit rate",
        ],
        title="MIPS backends on identical trained-model queries",
    )
    for row in evaluate_mips_backends(suite, names, rho=args.rho, seed=args.seed):
        table.add_row(
            [
                row.backend,
                f"{row.agreement_with_exact:.3f}",
                f"{row.label_accuracy:.3f}",
                f"{row.mean_comparisons:.1f}",
                f"{row.early_exit_rate:.3f}",
            ]
        )
    print(table.render())


def _cmd_resources(args: argparse.Namespace) -> None:
    config = HwConfig().with_embed_dim(args.embed_dim)
    model = MannConfig(
        vocab_size=args.vocab,
        embed_dim=args.embed_dim,
        memory_size=args.memory,
    )
    estimate = estimate_resources(config, model)
    table = TextTable(
        ["resource", "used", "utilisation"],
        title="Estimated VCU107 utilisation (Fig. 1 design)",
    )
    capacities = {
        "LUT": estimate.luts,
        "FF": estimate.ffs,
        "DSP": estimate.dsps,
        "BRAM": f"{estimate.bram_kb:.0f} kB",
    }
    for name, fraction in estimate.utilisation().items():
        table.add_row([name, str(capacities[name]), f"{fraction * 100:.2f}%"])
    print(table.render())
    print("fits on the device" if estimate.fits() else "DOES NOT FIT")


def _cmd_sweep(args: argparse.Namespace) -> None:
    from repro.hw.sweep import (
        WorkloadShape,
        frequency_sweep,
        interface_latency_sweep,
        lane_width_sweep,
        sweep_table,
    )

    workload = WorkloadShape(output_visited=args.vocab)
    model = MannConfig(
        vocab_size=args.vocab, embed_dim=args.embed_dim, memory_size=20
    )
    if args.kind == "frequency":
        print(sweep_table(frequency_sweep(workload, model), "Clock sweep").render())
    elif args.kind == "width":
        print(
            sweep_table(
                lane_width_sweep(workload, vocab_size=args.vocab),
                "Model-width sweep",
            ).render()
        )
    else:
        points = interface_latency_sweep(workload, model)
        table = TextTable(
            ["txn latency (us)", "wall (s)", "power (W)"],
            title="Interface-latency sweep @ 100 MHz",
        )
        for latency_us, point in points:
            table.add_row(
                [
                    f"{latency_us:.2f}",
                    f"{point.wall_seconds:.4f}",
                    f"{point.average_power_w:.2f}",
                ]
            )
        print(table.render())


def _cmd_tasks(_args: argparse.Namespace) -> None:
    table = TextTable(["id", "task"], title="Implemented bAbI task generators")
    for task_id in all_task_ids():
        table.add_row([str(task_id), TASK_NAMES[task_id]])
    print(table.render())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Park et al., DATE 2019 (MANN FPGA accelerator)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler, needs_suite in (
        ("table1", _cmd_table1, True),
        ("fig3", _cmd_fig3, True),
        ("fig4", _cmd_fig4, True),
        ("ablation", _cmd_ablation, True),
    ):
        sub = subparsers.add_parser(name, help=f"reproduce {name}")
        _add_suite_arguments(sub)
        sub.set_defaults(handler=handler)

    mips = subparsers.add_parser(
        "mips", help="evaluate pluggable MIPS backends on the suite"
    )
    _add_suite_arguments(mips)
    mips.add_argument(
        "--mips-backend",
        choices=(*available_backends(), "all"),
        default="all",
        help="registered output-search backend to evaluate (default: all)",
    )
    mips.add_argument(
        "--rho",
        type=float,
        default=1.0,
        help="thresholding constant for the 'threshold' backend",
    )
    mips.set_defaults(handler=_cmd_mips)

    resources = subparsers.add_parser(
        "resources", help="estimate FPGA resource utilisation"
    )
    resources.add_argument("--vocab", type=int, default=170)
    resources.add_argument("--embed-dim", type=int, default=20)
    resources.add_argument("--memory", type=int, default=20)
    resources.set_defaults(handler=_cmd_resources)

    tasks = subparsers.add_parser("tasks", help="list bAbI task generators")
    tasks.set_defaults(handler=_cmd_tasks)

    sweep = subparsers.add_parser(
        "sweep", help="analytic design-space sweeps (clock / model width)"
    )
    sweep.add_argument("--vocab", type=int, default=170)
    sweep.add_argument("--embed-dim", type=int, default=20)
    sweep.add_argument(
        "--kind", choices=("frequency", "width", "interface"), default="frequency"
    )
    sweep.set_defaults(handler=_cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.handler(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
