"""Command-line interface: ``python -m repro <command> [options]``.

Experiment subcommands regenerate the paper's tables and figures;
serving subcommands train once, persist the models and answer queries
from the saved artifacts:

    python -m repro table1 --tasks 1 2 3 --n-test 40
    python -m repro fig3
    python -m repro fig4
    python -m repro ablation
    python -m repro mips --mips-backend threshold   # MIPS backend eval
    python -m repro sweep --kind frequency          # design-space sweeps
    python -m repro resources
    python -m repro tasks           # list the 20 bAbI task generators

    python -m repro train --save artifacts/         # train + persist
    python -m repro train --save artifacts/ --quantize 3 8   # + fixed point
    python -m repro query --artifacts artifacts/ --task 1 [--quantized]
    python -m repro serve-bench --artifacts artifacts/ --tasks 1 6 \
        --workers 4 --shards 4

Every suite-based experiment accepts ``--artifacts DIR`` to reuse a
directory written by ``train --save`` instead of retraining.

``serve-bench`` drives the sharded multi-task serving runtime: one
``ModelRouter`` holding a predictor per task behind a single scheduler,
whose flushes a pool of ``--workers`` workers executes as concurrent
sub-batches, each predictor scanning through a ``sharded:<backend>``
MIPS engine partitioned ``--shards`` ways along ``--shard-axis``. With
``--worker-mode process`` the flush pool is a ``ProcessPoolExecutor``
whose workers rebuild each route from ``--artifacts`` with mmap-shared
weights — the mode that actually scales CPU-bound scans across cores.
It reports one-at-a-time vs single-worker vs worker-pool throughput
and per-route traffic.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.babi.tasks import TASK_NAMES, all_task_ids
from repro.eval.experiments import (
    run_fig3,
    run_fig4,
    run_interface_ablation,
    run_table1,
)
from repro.eval.suite import BabiSuite, SuiteConfig
from repro.hw import HwConfig, estimate_resources
from repro.mann.config import MannConfig
from repro.mips import available_backends
from repro.utils.tables import TextTable

#: Single source of truth for the CLI's suite-building defaults: the
#: :class:`SuiteConfig` dataclass itself.
_SUITE_DEFAULTS = SuiteConfig()

_EPILOG = (
    "subcommands: "
    "table1, fig3, fig4, ablation, mips, sweep, resources, tasks, "
    "train, query, serve-bench. "
    "Suite-based commands accept --artifacts DIR (from `train --save DIR`) "
    "to skip retraining. "
    "Serving: `train --quantize M N` persists fixed-point weights that "
    "`query --quantized` serves; `serve-bench --workers W --shards S "
    "--tasks ...` routes a mixed-task request stream through one "
    "scheduler with a W-worker flush pool over S-way sharded MIPS "
    "backends (--shard-axis batch|vocab). --worker-mode process swaps "
    "the GIL-bound thread pool for worker processes rebuilt from "
    "--artifacts with mmap-shared weights (zero-copy; encoded arrays "
    "on the pipe). `--cache-entries N --zipf S` adds a per-route "
    "story-encoding cache and a zipf-skewed replay mix to measure "
    "hit-rate vs throughput."
)


def _add_suite_arguments(
    parser: argparse.ArgumentParser, artifacts: bool = True
) -> None:
    parser.add_argument(
        "--tasks",
        type=int,
        nargs="+",
        default=None,
        help="bAbI task ids (default: all 20, or every task in --artifacts)",
    )
    parser.add_argument("--n-train", type=int, default=_SUITE_DEFAULTS.n_train)
    parser.add_argument("--n-test", type=int, default=_SUITE_DEFAULTS.n_test)
    parser.add_argument("--epochs", type=int, default=_SUITE_DEFAULTS.epochs)
    parser.add_argument("--seed", type=int, default=_SUITE_DEFAULTS.seed)
    if artifacts:  # `train` always trains, so it takes no --artifacts
        parser.add_argument(
            "--artifacts",
            default=None,
            metavar="DIR",
            help="load a suite saved with `repro train --save DIR` instead of "
            "training (ignores --n-train/--n-test/--epochs/--seed)",
        )


def _build_suite(args: argparse.Namespace) -> BabiSuite:
    tasks = tuple(args.tasks) if args.tasks else tuple(all_task_ids())
    print(
        f"building suite: {len(tasks)} tasks, "
        f"{args.n_train} train / {args.n_test} test examples each ...",
        file=sys.stderr,
    )
    return BabiSuite.build(
        SuiteConfig(
            task_ids=tasks,
            n_train=args.n_train,
            n_test=args.n_test,
            epochs=args.epochs,
            seed=args.seed,
        )
    )


def _obtain_suite(args: argparse.Namespace) -> BabiSuite:
    """Load the suite from ``--artifacts`` or train it from scratch."""
    if args.artifacts is None:
        return _build_suite(args)
    from repro.artifacts import load_suite

    print(f"loading suite artifacts from {args.artifacts} ...", file=sys.stderr)
    suite = load_suite(args.artifacts)
    if args.tasks:
        missing = set(args.tasks) - set(suite.tasks)
        if missing:
            raise SystemExit(
                f"tasks {sorted(missing)} not in {args.artifacts} "
                f"(available: {suite.task_ids})"
            )
        suite.tasks = {task_id: suite.tasks[task_id] for task_id in args.tasks}
        # Keep the suite self-describing: config must list exactly the
        # tasks the subset holds (a later suite.save relies on it).
        suite.config = dataclasses.replace(
            suite.config, task_ids=tuple(args.tasks)
        )
    return suite


def _cmd_table1(args: argparse.Namespace) -> None:
    result = run_table1(_obtain_suite(args))
    print(result.to_table().render())
    print("\nITH inference-time reduction:")
    for mhz in result.frequencies:
        print(f"  {mhz:5.0f} MHz: {100 * result.ith_time_reduction(mhz):5.1f}%")


def _cmd_fig3(args: argparse.Namespace) -> None:
    print(run_fig3(_obtain_suite(args)).to_table().render())


def _cmd_fig4(args: argparse.Namespace) -> None:
    print(run_fig4(_obtain_suite(args)).to_table().render())


def _cmd_ablation(args: argparse.Namespace) -> None:
    print(run_interface_ablation(_obtain_suite(args)).to_table().render())


def _cmd_mips(args: argparse.Namespace) -> None:
    """Evaluate registered MIPS backends on the suite's test queries."""
    from repro.eval.backends import evaluate_mips_backends

    suite = _obtain_suite(args)
    names = (
        list(available_backends())
        if args.mips_backend == "all"
        else [args.mips_backend]
    )
    table = TextTable(
        [
            "backend",
            "agreement w/ exact",
            "label accuracy",
            "mean comparisons",
            "early-exit rate",
        ],
        title="MIPS backends on identical trained-model queries",
    )
    for row in evaluate_mips_backends(suite, names, rho=args.rho, seed=args.seed):
        table.add_row(
            [
                row.backend,
                f"{row.agreement_with_exact:.3f}",
                f"{row.label_accuracy:.3f}",
                f"{row.mean_comparisons:.1f}",
                f"{row.early_exit_rate:.3f}",
            ]
        )
    print(table.render())


# ---------------------------------------------------------------------------
# serving verbs
# ---------------------------------------------------------------------------
def _cmd_train(args: argparse.Namespace) -> None:
    """Train the suite and persist it as a serving artifact directory."""
    from repro.artifacts import save_suite

    qformat = None
    if args.quantize is not None:
        from repro.mann.quantize import QFormat

        qformat = QFormat(args.quantize[0], args.quantize[1])
    suite = _build_suite(args)
    save_suite(suite, args.save, qformat=qformat)
    title = f"Trained suite saved to {args.save}"
    if qformat is not None:
        title += f" (with {qformat} fixed-point snapshot)"
    table = TextTable(["task", "test accuracy", "epochs"], title=title)
    for task_id in suite.task_ids:
        system = suite.tasks[task_id]
        table.add_row(
            [
                str(task_id),
                f"{system.test_accuracy:.3f}",
                str(system.train_result.epochs_run),
            ]
        )
    print(table.render())
    print(f"mean test accuracy: {suite.mean_test_accuracy():.3f}")
    print(f"reload with: python -m repro table1 --artifacts {args.save}")


def _cmd_query(args: argparse.Namespace) -> None:
    """Answer test-set queries through the unified Predictor facade."""
    from repro.serving import QueryRequest, open_predictor

    suite = BabiSuite.load(args.artifacts)
    if args.task not in suite.tasks:
        raise SystemExit(
            f"task {args.task} not in {args.artifacts} "
            f"(available: {suite.task_ids})"
        )
    try:
        predictor = open_predictor(
            suite,
            args.task,
            device=args.device,
            mips_backend=args.mips_backend,
            quantized=args.quantized,
            cache_entries=args.cache_entries or None,
            **({"rho": args.rho} if args.mips_backend == "threshold" else {}),
        )
    except ValueError as error:  # e.g. --quantized without a snapshot
        raise SystemExit(str(error))
    system = suite.tasks[args.task]
    batch = system.test_batch
    indices = args.indices if args.indices else list(range(min(5, len(batch))))
    table = TextTable(
        ["example", "prediction", "truth", "ok", "comparisons", "early exit"],
        title=f"task {args.task} queries on device={args.device} "
        f"({args.mips_backend} backend"
        + (", quantized weights)" if args.quantized else ")"),
    )
    correct = 0
    requests = []
    for i in indices:
        if not 0 <= i < len(batch):
            raise SystemExit(f"example index {i} outside [0, {len(batch)})")
        requests.append(
            QueryRequest(
                batch.stories[i],
                batch.questions[i],
                n_sentences=int(batch.story_lengths[i]),
                request_id=i,
                deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
            )
        )

    scheduler = None
    if args.deadline_ms or args.retry_max:
        # Deadline-stamped (or retry-armed) queries ride the async SLO
        # front end: same predictor, plus micro-batching, per-request
        # deadline attainment and retry accounting (printed after the
        # table).
        import asyncio

        from repro.serving import AsyncFrontend, BatchScheduler, RetryPolicy

        scheduler = BatchScheduler(
            predictor,
            max_batch=max(1, len(requests)),
            max_wait_s=0.002,
            retry_policy=(
                RetryPolicy(max_attempts=args.retry_max)
                if args.retry_max
                else None
            ),
        )

        def serve(wave):
            async def run():
                async with AsyncFrontend(
                    scheduler, close_backend=False
                ) as frontend:
                    return await frontend.query_many(wave)

            return asyncio.run(run())

    else:

        def serve(wave):
            return [predictor.predict(r) for r in wave]

    # The predictor (and its story cache, with --cache-entries) is
    # built once and reused across repeats — repeats 2..N replay the
    # same stories, so every memory write after the first pass is a
    # cache hit.
    for repeat in range(args.repeat):
        start = time.perf_counter()
        responses = serve(requests)
        seconds = time.perf_counter() - start
        if repeat == 0:  # the table shows each example once
            for i, response in zip(indices, responses):
                truth = suite.vocab.word(int(batch.answers[i]))
                correct += int(response.label == int(batch.answers[i]))
                table.add_row(
                    [
                        str(i),
                        response.answer or str(response.label),
                        truth,
                        "yes" if response.label == int(batch.answers[i]) else "NO",
                        str(response.comparisons),
                        "yes" if response.early_exit else "no",
                    ]
                )
            print(table.render())
            print(f"{correct}/{len(indices)} correct")
        if args.repeat > 1:
            print(f"repeat {repeat + 1}/{args.repeat}: {seconds * 1e3:.2f} ms")
    if scheduler is not None:
        scheduler.close()
        stats = scheduler.stats
        if args.deadline_ms:
            print(
                f"deadline {args.deadline_ms:.1f} ms: {stats.deadline_met} met / "
                f"{stats.deadline_missed} missed "
                f"(goodput {stats.goodput_rate:.1%})"
            )
        if args.retry_max:
            print(
                f"retries (max {args.retry_max} attempts): "
                f"{stats.retries} replays, {stats.recovered} requests "
                "recovered"
            )
    cache = getattr(predictor, "cache", None)
    if cache is not None:
        stats = cache.stats
        print(
            f"story cache: {stats.hits} hits / {stats.misses} misses "
            f"(hit rate {stats.hit_rate:.1%}, {cache.entries} entries resident)"
        )


def _mixed_task_requests(suite: BabiSuite, n: int) -> list:
    """A round-robin request stream across every task of the suite."""
    from repro.serving import QueryRequest

    tasks = suite.task_ids
    requests = []
    for i in range(n):
        task = tasks[i % len(tasks)]
        batch = suite.tasks[task].test_batch
        j = (i // len(tasks)) % len(batch)
        requests.append(
            QueryRequest(
                batch.stories[j],
                batch.questions[j],
                n_sentences=int(batch.story_lengths[j]),
                request_id=i,
                task=task,
            )
        )
    return requests


def _zipf_requests(suite: BabiSuite, n: int, s: float, seed: int = 0) -> list:
    """A zipf(s)-skewed request stream: story popularity follows a
    power law over the suite's whole test pool (the realistic
    "millions of users replay hot stories" shape), while each request
    pairs the story with an independently drawn question from the same
    task — same story, different question, the case the story cache
    exists for. ``s=0`` degenerates to a uniform mix.
    """
    import numpy as np

    from repro.serving import QueryRequest

    pool = [
        (task, j)
        for task in suite.task_ids
        for j in range(len(suite.tasks[task].test_batch))
    ]
    rng = np.random.default_rng(seed)
    rng.shuffle(pool)  # decorrelate popularity rank from task order
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = ranks**-s
    weights /= weights.sum()
    choices = rng.choice(len(pool), size=n, p=weights)
    requests = []
    for i, choice in enumerate(choices):
        task, j = pool[choice]
        batch = suite.tasks[task].test_batch
        q = int(rng.integers(len(batch)))
        requests.append(
            QueryRequest(
                batch.stories[j],
                batch.questions[q],
                n_sentences=int(batch.story_lengths[j]),
                request_id=i,
                task=task,
            )
        )
    return requests


def _timed_async_run(args: argparse.Namespace, suite, requests):
    """One `serve-bench --async` pass: AsyncFrontend over the same
    router configuration, open-loop paced when --qps is given, with
    per-request deadlines and admission control. Returns
    ``(seconds, router, n_served)`` — shed/expired requests resolve as
    typed exceptions and are excluded from the served count (their
    tallies land in ``router.stats``)."""
    import asyncio

    from repro.serving import (
        AsyncFrontend,
        DeadlineExceededError,
        ModelRouter,
        OverloadError,
        RetryPolicy,
    )

    source = suite if args.worker_mode == "thread" else args.artifacts
    router = ModelRouter.open(
        source,
        tasks=list(suite.tasks),
        mips_backend=args.mips_backend,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        cache_entries=args.cache_entries or None,
        n_workers=args.workers,
        shards=args.shards if args.shards > 1 else None,
        shard_axis=args.shard_axis,
        worker_mode=args.worker_mode,
        queue_cap=args.queue_cap,
        overload_policy=args.overload_policy,
        inline_flush=False,
        # The async pass stays chaos-free; retries still apply so the
        # row is comparable to the sync scheduler rows under --retry-max.
        retry_policy=(
            RetryPolicy(max_attempts=args.retry_max)
            if args.retry_max
            else None
        ),
    )
    deadline_s = args.deadline_ms / 1e3 if args.deadline_ms else None

    async def drive():
        async with AsyncFrontend(router) as frontend:
            if args.qps:
                # Open loop: arrivals follow the offered rate, not the
                # service rate — the regime where shedding matters.
                loop = asyncio.get_running_loop()
                epoch = loop.time()
                waves = []
                for i, request in enumerate(requests):
                    delay = epoch + i / args.qps - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    waves.append(
                        asyncio.ensure_future(
                            frontend.query(request, deadline_s=deadline_s)
                        )
                    )
                return await asyncio.gather(*waves, return_exceptions=True)
            return await frontend.query_many(
                requests, deadline_s=deadline_s, return_exceptions=True
            )

    start = time.perf_counter()
    results = asyncio.run(drive())
    seconds = time.perf_counter() - start
    n_served = sum(not isinstance(r, BaseException) for r in results)
    stranded = [
        r
        for r in results
        if isinstance(r, BaseException)
        and not isinstance(r, (OverloadError, DeadlineExceededError))
    ]
    if stranded:  # typed errors are expected; anything else is a bug
        raise stranded[0]
    return seconds, router, n_served


def _cmd_serve_bench(args: argparse.Namespace) -> None:
    """Sharded multi-task serving throughput: router + worker pool.

    Three submission modes over the same mixed-task request stream:
    one-at-a-time ``predict`` calls, the single-worker scheduler (the
    PR 3 serving path), and the worker pool with shard-parallel MIPS
    backends (``--workers``/``--shards``).
    """
    from repro.serving import ModelRouter

    if (
        args.shard_axis == "vocab"
        and args.shards > 1
        and args.mips_backend not in ("exact", "threshold")
    ):
        raise SystemExit(
            f"--shard-axis vocab requires an exhaustive scan (exact) or "
            f"the vocab-shardable threshold scan; got --mips-backend "
            f"{args.mips_backend}"
        )
    if args.worker_mode == "process" and args.artifacts is None:
        raise SystemExit(
            "--worker-mode process requires --artifacts DIR: worker "
            "processes rebuild each route from the saved artifact "
            "directory (train one with `train --save DIR`)"
        )
    suite = _obtain_suite(args)
    if args.zipf is not None:
        requests = _zipf_requests(suite, args.requests, args.zipf)
    else:
        requests = _mixed_task_requests(suite, args.requests)
    open_kwargs = dict(
        mips_backend=args.mips_backend,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        cache_entries=args.cache_entries or None,
    )

    direct = ModelRouter.open(suite, start_worker=False, **open_kwargs)
    start = time.perf_counter()
    for request in requests:
        direct.predict(request)
    one_at_a_time = time.perf_counter() - start
    direct.close()

    # Resilience knobs apply to the scheduler rows only — the direct
    # baseline above stays fault-free by construction.
    resilience_kwargs = {}
    if args.retry_max:
        from repro.serving import RetryPolicy

        resilience_kwargs["retry_policy"] = RetryPolicy(
            max_attempts=args.retry_max
        )
    if args.breaker_threshold is not None:
        resilience_kwargs["breaker_threshold"] = args.breaker_threshold
    if args.chaos_kill_rate:
        from repro.serving import FaultPlan

        resilience_kwargs["chaos_plan"] = FaultPlan(
            kill_worker_rate=args.chaos_kill_rate
        )

    def timed_run(n_workers: int, shards: int, worker_mode: str = "thread"):
        # Process workers rebuild their routes from the artifact
        # directory, so the path (not the loaded suite) is the source.
        from repro.serving import ServingError

        source = suite if worker_mode == "thread" else args.artifacts
        router = ModelRouter.open(
            source,
            tasks=list(suite.tasks),
            n_workers=n_workers,
            shards=shards if shards > 1 else None,
            shard_axis=args.shard_axis,
            worker_mode=worker_mode,
            **open_kwargs,
            **resilience_kwargs,
        )
        failed = 0
        start = time.perf_counter()
        with router:
            futures = []
            for request in requests:
                try:
                    futures.append(router.submit(request))
                except ServingError:  # e.g. an open route breaker
                    failed += 1
            for future in futures:
                try:
                    future.result()
                except ServingError:
                    # Chaos can out-pressure the retry budget; a typed
                    # failure is an accounted outcome, not a bench bug.
                    failed += 1
        return time.perf_counter() - start, router, failed

    single_seconds, single, single_failed = timed_run(1, 1)
    pooled_seconds, pooled, pooled_failed = timed_run(
        args.workers, args.shards, args.worker_mode
    )

    mix = f"zipf(s={args.zipf})" if args.zipf is not None else "round-robin"
    table = TextTable(
        [
            "submission",
            "requests/s",
            "mean batch",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "shed",
            "expired",
            "retried",
            "recovered",
            "goodput",
        ],
        title=(
            f"Serving throughput — {len(suite.task_ids)} task routes, "
            f"{args.requests} requests ({mix}), {args.mips_backend} backend"
            + (
                f", cache {args.cache_entries} entries"
                if args.cache_entries
                else ""
            )
            + (
                f", chaos kill rate {args.chaos_kill_rate}"
                if args.chaos_kill_rate
                else ""
            )
        ),
    )
    table.add_row(
        [
            "one-at-a-time",
            f"{args.requests / one_at_a_time:.0f}",
            "1.0",
            "-",
            "-",
            "-",
            "-",
            "-",
            "-",
            "-",
            "-",
        ]
    )

    def _scheduler_row(label: str, seconds: float, router, served=None) -> None:
        stats = router.stats
        served = args.requests if served is None else served
        goodput = (
            f"{stats.goodput_rate:.1%}" if stats.deadline_outcomes else "-"
        )
        table.add_row(
            [
                label,
                f"{served / seconds:.0f}",
                f"{stats.mean_batch_size:.1f}",
                f"{stats.p50_latency_s * 1e3:.2f}",
                f"{stats.p95_latency_s * 1e3:.2f}",
                f"{stats.p99_latency_s * 1e3:.2f}",
                str(stats.shed),
                str(stats.expired),
                str(stats.retries),
                str(stats.recovered),
                goodput,
            ]
        )

    _scheduler_row(
        f"scheduler (1 worker, max_batch={args.max_batch})",
        single_seconds,
        single,
    )
    _scheduler_row(
        f"worker pool ({args.workers} {args.worker_mode} workers, "
        f"{args.shards} shards)",
        pooled_seconds,
        pooled,
    )
    if args.async_frontend:
        async_seconds, async_router, n_served = _timed_async_run(args, suite, requests)
        policy = args.overload_policy
        _scheduler_row(
            f"async frontend ({args.workers} {args.worker_mode} workers, "
            f"cap={args.queue_cap or '∞'}, {policy})",
            async_seconds,
            async_router,
            served=max(1, n_served),
        )
    print(table.render())
    if args.async_frontend:
        stats = async_router.stats
        print(
            f"async frontend: {n_served}/{args.requests} served, "
            f"{stats.shed} shed, {stats.expired} expired"
            + (
                f", goodput {stats.goodput_rate:.1%} "
                f"(deadline {args.deadline_ms:.1f} ms)"
                if args.deadline_ms
                else ""
            )
        )
    if args.chaos_kill_rate or args.retry_max or args.breaker_threshold:
        for label, router, failed in (
            ("1 worker", single, single_failed),
            ("pool", pooled, pooled_failed),
        ):
            stats = router.stats
            print(
                f"resilience [{label}]: {failed} failed, "
                f"{stats.retries} retried, {stats.recovered} recovered, "
                f"{stats.pool_rebuilds} pool rebuilds, "
                f"{stats.breaker_opens} breaker opens"
            )
    print(f"micro-batching speedup: {one_at_a_time / single_seconds:.1f}x")
    print(
        f"worker-pool speedup vs single worker: "
        f"{single_seconds / pooled_seconds:.2f}x "
        f"(mean sub-batches/flush {pooled.stats.mean_shards_per_flush:.1f})"
    )
    if args.cache_entries:
        for label, router in (("1 worker", single), ("pool", pooled)):
            stats = router.stats
            print(
                f"story cache [{label}]: hit rate "
                f"{stats.cache_hit_rate:.1%} ({stats.cache_hits} hits / "
                f"{stats.cache_misses} misses, "
                f"{stats.cache_evictions} evictions)"
            )
    per_route = ", ".join(
        f"task {task}: {stats.requests}"
        for task, stats in sorted(pooled.route_stats.items())
    )
    print(f"per-route requests: {per_route}")


def _cmd_resources(args: argparse.Namespace) -> None:
    config = HwConfig().with_embed_dim(args.embed_dim)
    model = MannConfig(
        vocab_size=args.vocab,
        embed_dim=args.embed_dim,
        memory_size=args.memory,
    )
    estimate = estimate_resources(config, model)
    table = TextTable(
        ["resource", "used", "utilisation"],
        title="Estimated VCU107 utilisation (Fig. 1 design)",
    )
    capacities = {
        "LUT": estimate.luts,
        "FF": estimate.ffs,
        "DSP": estimate.dsps,
        "BRAM": f"{estimate.bram_kb:.0f} kB",
    }
    for name, fraction in estimate.utilisation().items():
        table.add_row([name, str(capacities[name]), f"{fraction * 100:.2f}%"])
    print(table.render())
    print("fits on the device" if estimate.fits() else "DOES NOT FIT")


def _cmd_sweep(args: argparse.Namespace) -> None:
    from repro.hw.sweep import (
        WorkloadShape,
        frequency_sweep,
        interface_latency_sweep,
        lane_width_sweep,
        sweep_table,
    )

    workload = WorkloadShape(output_visited=args.vocab)
    model = MannConfig(
        vocab_size=args.vocab, embed_dim=args.embed_dim, memory_size=20
    )
    if args.kind == "frequency":
        print(sweep_table(frequency_sweep(workload, model), "Clock sweep").render())
    elif args.kind == "width":
        print(
            sweep_table(
                lane_width_sweep(workload, vocab_size=args.vocab),
                "Model-width sweep",
            ).render()
        )
    else:
        points = interface_latency_sweep(workload, model)
        table = TextTable(
            ["txn latency (us)", "wall (s)", "power (W)"],
            title="Interface-latency sweep @ 100 MHz",
        )
        for latency_us, point in points:
            table.add_row(
                [
                    f"{latency_us:.2f}",
                    f"{point.wall_seconds:.4f}",
                    f"{point.average_power_w:.2f}",
                ]
            )
        print(table.render())


def _cmd_tasks(_args: argparse.Namespace) -> None:
    table = TextTable(["id", "task"], title="Implemented bAbI task generators")
    for task_id in all_task_ids():
        table.add_row([str(task_id), TASK_NAMES[task_id]])
    print(table.render())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Park et al., DATE 2019 (MANN FPGA accelerator)",
        epilog=_EPILOG,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler in (
        ("table1", _cmd_table1),
        ("fig3", _cmd_fig3),
        ("fig4", _cmd_fig4),
        ("ablation", _cmd_ablation),
    ):
        sub = subparsers.add_parser(name, help=f"reproduce {name}")
        _add_suite_arguments(sub)
        sub.set_defaults(handler=handler)

    mips = subparsers.add_parser(
        "mips", help="evaluate pluggable MIPS backends on the suite"
    )
    _add_suite_arguments(mips)
    mips.add_argument(
        "--mips-backend",
        choices=(*available_backends(), "all"),
        default="all",
        help="registered output-search backend to evaluate (default: all)",
    )
    mips.add_argument(
        "--rho",
        type=float,
        default=1.0,
        help="thresholding constant for the 'threshold' backend",
    )
    mips.set_defaults(handler=_cmd_mips)

    train = subparsers.add_parser(
        "train", help="train the suite and save serving artifacts"
    )
    _add_suite_arguments(train, artifacts=False)
    train.add_argument(
        "--save",
        required=True,
        metavar="DIR",
        help="artifact directory to write (readable by load_suite / "
        "open_predictor / every --artifacts flag)",
    )
    train.add_argument(
        "--quantize",
        type=int,
        nargs=2,
        default=None,
        metavar=("INT_BITS", "FRAC_BITS"),
        help="also persist a Qm.n fixed-point weight snapshot, servable "
        "with `query --quantized` / open_predictor(quantized=True)",
    )
    train.set_defaults(handler=_cmd_train)

    query = subparsers.add_parser(
        "query", help="answer queries from saved artifacts via open_predictor"
    )
    query.add_argument("--artifacts", required=True, metavar="DIR")
    query.add_argument("--task", type=int, required=True, help="bAbI task id")
    query.add_argument(
        "--indices",
        type=int,
        nargs="+",
        default=None,
        help="test-set example indices to query (default: first 5)",
    )
    query.add_argument(
        "--device",
        choices=("sw", "hw"),
        default="sw",
        help="vectorised engine (sw) or accelerator co-simulation (hw)",
    )
    query.add_argument(
        "--mips-backend", choices=available_backends(), default="exact"
    )
    query.add_argument("--rho", type=float, default=1.0)
    query.add_argument(
        "--quantized",
        action="store_true",
        help="serve the artifacts' fixed-point weight snapshot "
        "(written by `train --quantize M N`)",
    )
    query.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="answer the query set this many times through one "
        "predictor (with --cache-entries, repeats hit the story cache)",
    )
    query.add_argument(
        "--cache-entries",
        type=int,
        default=0,
        help="enable the cross-request story-encoding cache with this "
        "many LRU entries (0 disables; sw device only)",
    )
    query.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-query SLO budget in milliseconds: queries are served "
        "through the async front end (AsyncFrontend) and deadline "
        "attainment is reported after the table",
    )
    query.add_argument(
        "--retry-max",
        type=int,
        default=0,
        metavar="N",
        help="serve through the batching scheduler with a RetryPolicy "
        "of N total attempts per sub-batch: transient flush failures "
        "are replayed bit-identically (0 disables)",
    )
    query.set_defaults(handler=_cmd_query)

    bench = subparsers.add_parser(
        "serve-bench",
        help="sharded multi-task serving throughput (router + worker pool)",
    )
    _add_suite_arguments(bench)
    bench.add_argument("--requests", type=int, default=256)
    bench.add_argument("--max-batch", type=int, default=32)
    bench.add_argument("--max-wait-ms", type=float, default=5.0)
    bench.add_argument(
        "--mips-backend", choices=available_backends(), default="exact"
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=4,
        help="flush worker threads: each flush splits into up to this "
        "many concurrent sub-batches (default: 4)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=4,
        help="per-predictor MIPS shard count (wraps the backend as "
        "sharded:<name>; 1 disables sharding; default: 4)",
    )
    bench.add_argument(
        "--shard-axis",
        choices=("batch", "vocab"),
        default="batch",
        help="partition axis of the sharded MIPS scan (vocab requires "
        "the exact or threshold backend)",
    )
    bench.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help="flush worker pool kind: 'thread' shares the GIL (cheap, "
        "but CPU-bound scans serialise); 'process' rebuilds each route "
        "in worker processes from --artifacts with mmap-shared weights "
        "(requires --artifacts; default: thread)",
    )
    bench.add_argument(
        "--cache-entries",
        type=int,
        default=0,
        help="per-route story-encoding cache size in LRU entries "
        "(0 disables; replayed stories skip the memory-write phase)",
    )
    bench.add_argument(
        "--zipf",
        type=float,
        default=None,
        metavar="S",
        help="draw the request mix with zipf(S)-skewed story "
        "popularity (same story, different question) instead of "
        "round-robin — the shape that exercises --cache-entries; "
        "S=0 is uniform",
    )
    bench.add_argument(
        "--async",
        dest="async_frontend",
        action="store_true",
        help="add an AsyncFrontend pass: awaitable queries over the "
        "same router, with --deadline-ms SLO budgets and "
        "--queue-cap/--overload-policy admission control",
    )
    bench.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request SLO budget for the --async pass (deadline "
        "attainment / goodput is reported in the summary)",
    )
    bench.add_argument(
        "--queue-cap",
        type=int,
        default=None,
        metavar="N",
        help="bound the async pass's pending queue at N requests "
        "(default: unbounded)",
    )
    bench.add_argument(
        "--overload-policy",
        choices=("block", "shed", "shed-expired"),
        default="block",
        help="what a full --queue-cap queue does: 'block' applies "
        "backpressure, 'shed' rejects with OverloadError, "
        "'shed-expired' also drops past-deadline queue entries "
        "(DeadlineExceededError)",
    )
    bench.add_argument(
        "--qps",
        type=float,
        default=None,
        help="pace the --async pass open-loop at this offered request "
        "rate instead of submitting everything at once",
    )
    bench.add_argument(
        "--chaos-kill-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="deterministically inject worker-kill faults into fraction "
        "R of flush sub-batches on the scheduler rows (process mode "
        "kills real worker processes; the supervised pool rebuilds and "
        "replays — pair with --retry-max; 0 disables)",
    )
    bench.add_argument(
        "--retry-max",
        type=int,
        default=0,
        metavar="N",
        help="RetryPolicy attempt budget per flush sub-batch on the "
        "scheduler and async rows: transient failures are replayed "
        "bit-identically with deterministic backoff (0 disables)",
    )
    bench.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help="arm one per-route circuit breaker opening after N "
        "consecutive flush failures (requests for an open route fail "
        "fast with RouteUnavailableError; default: no breakers)",
    )
    bench.set_defaults(handler=_cmd_serve_bench)

    resources = subparsers.add_parser(
        "resources", help="estimate FPGA resource utilisation"
    )
    resources.add_argument("--vocab", type=int, default=170)
    resources.add_argument("--embed-dim", type=int, default=20)
    resources.add_argument("--memory", type=int, default=20)
    resources.set_defaults(handler=_cmd_resources)

    tasks = subparsers.add_parser("tasks", help="list bAbI task generators")
    tasks.set_defaults(handler=_cmd_tasks)

    sweep = subparsers.add_parser(
        "sweep", help="analytic design-space sweeps (clock / model width)"
    )
    sweep.add_argument("--vocab", type=int, default=170)
    sweep.add_argument("--embed-dim", type=int, default=20)
    sweep.add_argument(
        "--kind", choices=("frequency", "width", "interface"), default="frequency"
    )
    sweep.set_defaults(handler=_cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.handler(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
