"""Plain-numpy snapshot of trained MANN weights.

The hardware simulator and the golden inference engine consume this
frozen view instead of autograd tensors; it matches the parameter
streams the paper's host transfers to the FPGA (Wemb_a, Wemb_c, Wemb_q,
Wr, Wo and the temporal encodings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mann.config import MannConfig


@dataclass
class MannWeights:
    """Frozen weights; shapes use V=vocab, E=embed, L=memory slots.

    ``w_emb_a``  (V, E) address-memory embedding (paper's emb_a)
    ``w_emb_c``  (V, E) content-memory embedding (emb_c)
    ``w_emb_q``  (V, E) question embedding (emb_q)
    ``w_r``      (E, E) controller weight W_r (Eq. 4)
    ``w_o``      (V, E) output weight rows W_o (Eq. 6; row i gives logit i)
    ``t_a``      (L, E) temporal encoding added to address memory (zeros
                 when temporal encoding is disabled)
    ``t_c``      (L, E) temporal encoding added to content memory
    """

    config: MannConfig
    w_emb_a: np.ndarray
    w_emb_c: np.ndarray
    w_emb_q: np.ndarray
    w_r: np.ndarray
    w_o: np.ndarray
    t_a: np.ndarray
    t_c: np.ndarray

    def __post_init__(self):
        v, e, l = self.config.vocab_size, self.config.embed_dim, self.config.memory_size
        expect = {
            "w_emb_a": (v, e),
            "w_emb_c": (v, e),
            "w_emb_q": (v, e),
            "w_r": (e, e),
            "w_o": (v, e),
            "t_a": (l, e),
            "t_c": (l, e),
        }
        for name, shape in expect.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ValueError(f"{name} has shape {actual}, expected {shape}")

    def num_parameters(self) -> int:
        return sum(
            getattr(self, name).size
            for name in ("w_emb_a", "w_emb_c", "w_emb_q", "w_r", "w_o", "t_a", "t_c")
        )

    def nbytes(self, bytes_per_weight: int = 4) -> int:
        """Model size as transferred to the device (float32 by default)."""
        return self.num_parameters() * bytes_per_weight
