"""Training loop for the memory network.

Defaults follow MemN2N's bAbI recipe scaled down for the synthetic
tasks: SGD (or Adam), gradient-norm clipping at 40, learning rate
annealed by halving on a fixed epoch schedule, pad rows re-zeroed after
every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.babi.dataset import BabiDataset, EncodedBatch
from repro.mann.batch import BatchInferenceEngine
from repro.mann.config import MannConfig
from repro.mann.model import MemoryNetwork
from repro.utils.rng import new_rng


@dataclass
class TrainResult:
    """Training history and final evaluation of one model."""

    model: MemoryNetwork
    train_losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    test_accuracy: float = 0.0
    majority_accuracy: float = 0.0
    epochs_run: int = 0

    @property
    def final_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("inf")


class Trainer:
    """Mini-batch trainer with annealed SGD/Adam and grad clipping."""

    def __init__(
        self,
        model: MemoryNetwork,
        lr: float = 0.01,
        batch_size: int = 32,
        max_grad_norm: float = 40.0,
        anneal_every: int = 25,
        anneal_factor: float = 0.5,
        optimizer: str = "adam",
        seed: int = 0,
    ):
        self.model = model
        self.batch_size = int(batch_size)
        self.max_grad_norm = float(max_grad_norm)
        self.rng = new_rng(seed)
        params = model.parameters()
        if optimizer == "sgd":
            self.optimizer: nn.Optimizer = nn.SGD(params, lr=lr)
        elif optimizer == "adam":
            self.optimizer = nn.Adam(params, lr=lr)
        else:
            raise ValueError(f"unknown optimizer {optimizer!r}")
        self.schedule = nn.StepDecay(
            self.optimizer, step_size=anneal_every, gamma=anneal_factor
        )

    def run_epoch(self, batch: EncodedBatch) -> float:
        """One pass over the data; returns mean loss."""
        order = self.rng.permutation(len(batch))
        losses = []
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            logits = self.model.forward(
                batch.stories[idx], batch.questions[idx], batch.story_lengths[idx]
            )
            loss = nn.cross_entropy(logits, batch.answers[idx])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.clip_grad_norm(self.max_grad_norm)
            self.optimizer.step()
            self.model.zero_pad_rows()
            losses.append(loss.item())
        self.schedule.step()
        return float(np.mean(losses))

    def evaluate(self, batch: EncodedBatch) -> float:
        """Accuracy on a batch via the vectorised inference engine.

        Evaluating through the frozen-weight batch engine (rather than
        the autograd graph) exercises exactly the path deployment uses.
        """
        engine = BatchInferenceEngine(self.model.export_weights())
        preds = engine.predict(
            batch.stories, batch.questions, batch.story_lengths
        )
        return float((preds == batch.answers).mean())

    def fit(
        self,
        train: EncodedBatch,
        epochs: int = 40,
        test: EncodedBatch | None = None,
        target_accuracy: float | None = None,
    ) -> TrainResult:
        """Train for up to ``epochs`` epochs.

        Stops early once training accuracy reaches ``target_accuracy``
        (the synthetic tasks saturate quickly).
        """
        result = TrainResult(model=self.model)
        for _ in range(epochs):
            loss = self.run_epoch(train)
            accuracy = self.evaluate(train)
            result.train_losses.append(loss)
            result.train_accuracies.append(accuracy)
            result.epochs_run += 1
            if target_accuracy is not None and accuracy >= target_accuracy:
                break
        if test is not None:
            result.test_accuracy = self.evaluate(test)
        return result


def train_task_model(
    train_dataset: BabiDataset,
    test_dataset: BabiDataset | None = None,
    config: MannConfig | None = None,
    epochs: int = 40,
    lr: float = 0.01,
    batch_size: int = 32,
    hops: int = 3,
    embed_dim: int = 20,
    seed: int = 0,
    target_accuracy: float | None = 0.995,
) -> TrainResult:
    """Convenience wrapper: build, train and evaluate one task model."""
    if config is None:
        config = MannConfig(
            vocab_size=train_dataset.vocab_size,
            embed_dim=embed_dim,
            memory_size=train_dataset.memory_size,
            hops=hops,
            seed=seed,
        )
    model = MemoryNetwork(config)
    trainer = Trainer(model, lr=lr, batch_size=batch_size, seed=seed)
    train_batch = train_dataset.encode()
    test_batch = test_dataset.encode() if test_dataset is not None else None
    result = trainer.fit(
        train_batch, epochs=epochs, test=test_batch, target_accuracy=target_accuracy
    )
    result.majority_accuracy = train_dataset.majority_baseline_accuracy()
    return result
