"""Golden pure-numpy inference engine with a full intermediate trace.

The hardware simulator (``repro.hw``) is functionally co-simulated
against this engine: every intermediate the accelerator's modules
produce (embedded memory rows, read keys, attention weights, read
vectors, controller outputs, logits) is recorded here in the same order
the hardware computes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mann.batch import BatchInferenceEngine
from repro.mann.weights import MannWeights
from repro.mips.backend import get_backend


@dataclass
class InferenceTrace:
    """Every intermediate of one question's forward pass.

    Shapes: L = used memory slots, E = embed dim, V = vocab, T = hops.
    """

    mem_a: np.ndarray  # (L, E) address memory after write
    mem_c: np.ndarray  # (L, E) content memory after write
    keys: list[np.ndarray] = field(default_factory=list)  # T x (E,)
    scores: list[np.ndarray] = field(default_factory=list)  # T x (L,)
    attentions: list[np.ndarray] = field(default_factory=list)  # T x (L,)
    reads: list[np.ndarray] = field(default_factory=list)  # T x (E,)
    controller_outputs: list[np.ndarray] = field(default_factory=list)  # T x (E,)
    logits: np.ndarray | None = None  # (V,)
    prediction: int | None = None

    @property
    def h_final(self) -> np.ndarray:
        return self.controller_outputs[-1]


class InferenceEngine:
    """Runs Eqs. 1-6 on frozen weights, one example at a time.

    Only the story's real sentences occupy memory slots; padding slots
    are excluded, mirroring the accelerator which writes exactly one
    memory element per streamed sentence.

    This is the low-level golden reference. For deployment-shaped
    request/response serving over saved artifacts, use the facade:
    :func:`repro.serving.open_predictor` hides this engine, the
    vectorised :class:`~repro.mann.batch.BatchInferenceEngine` and the
    accelerator co-simulation behind one ``Predictor`` object.
    """

    def __init__(
        self,
        weights: MannWeights,
        mips_backend=None,
        *,
        threshold_model=None,
        **backend_params,
    ):
        self.weights = weights
        self.config = weights.config
        # Fail at construction, not on the first lazy .batch access:
        # the name must resolve, params need a backend, and backends
        # that need a fitted ThresholdModel must get one.
        if mips_backend is None and (threshold_model is not None or backend_params):
            raise ValueError("backend parameters given without a mips_backend")
        if isinstance(mips_backend, str):
            backend_cls = get_backend(mips_backend)
            if (
                getattr(backend_cls, "requires_threshold_model", False)
                and threshold_model is None
            ):
                raise ValueError(
                    f"the {mips_backend!r} backend requires a fitted ThresholdModel"
                )
        self._mips_backend = mips_backend
        self._threshold_model = threshold_model
        self._backend_params = backend_params
        self._batch: BatchInferenceEngine | None = None

    @property
    def batch(self) -> BatchInferenceEngine:
        """Vectorised engine over the same weights (built on demand).

        Inherits this engine's MIPS backend choice, so constructing
        ``InferenceEngine(weights, mips_backend="threshold", ...)`` is
        enough to run every batched entry point through that backend.
        """
        if self._batch is None:
            self._batch = BatchInferenceEngine(
                self.weights,
                self._mips_backend,
                threshold_model=self._threshold_model,
                **self._backend_params,
            )
        return self._batch

    # -- write path ----------------------------------------------------
    def embed_sentence(self, word_indices: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Bag-of-words embedding (Eq. 2): sum of non-pad columns."""
        idx = np.asarray(word_indices, dtype=np.int64)
        idx = idx[idx != 0]
        if idx.size == 0:
            return np.zeros(matrix.shape[1], dtype=matrix.dtype)
        return matrix[idx].sum(axis=0)

    def write_memory(
        self, story: np.ndarray, n_sentences: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Embed the story's sentences into address/content memories."""
        w = self.weights
        rows_a = []
        rows_c = []
        for slot in range(n_sentences):
            rows_a.append(
                self.embed_sentence(story[slot], w.w_emb_a) + w.t_a[slot]
            )
            rows_c.append(
                self.embed_sentence(story[slot], w.w_emb_c) + w.t_c[slot]
            )
        return np.array(rows_a), np.array(rows_c)

    # -- read path -----------------------------------------------------
    @staticmethod
    def attention(mem_a: np.ndarray, key: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Content-based addressing (Eq. 1); returns (scores, weights)."""
        scores = mem_a @ key
        shifted = scores - scores.max()
        exps = np.exp(shifted)
        return scores, exps / exps.sum()

    def forward_trace(self, story: np.ndarray, question: np.ndarray, n_sentences: int | None = None) -> InferenceTrace:
        """Full forward pass of one example, recording every intermediate."""
        w = self.weights
        story = np.asarray(story, dtype=np.int64)
        question = np.asarray(question, dtype=np.int64)
        if n_sentences is None:
            used = np.flatnonzero(story.any(axis=1))
            n_sentences = int(used[-1]) + 1 if used.size else 1
        if not 1 <= n_sentences <= self.config.memory_size:
            raise ValueError(
                f"n_sentences={n_sentences} outside [1, {self.config.memory_size}]"
            )

        mem_a, mem_c = self.write_memory(story, n_sentences)
        trace = InferenceTrace(mem_a=mem_a, mem_c=mem_c)

        key = self.embed_sentence(question, w.w_emb_q)  # Eq. 3, t=1
        for _ in range(self.config.hops):
            trace.keys.append(key)
            scores, attention = self.attention(mem_a, key)
            trace.scores.append(scores)
            trace.attentions.append(attention)
            read = mem_c.T @ attention  # Eq. 5
            trace.reads.append(read)
            h = read + w.w_r.T @ key  # Eq. 4 (key @ w_r for row vectors)
            trace.controller_outputs.append(h)
            key = h

        trace.logits = w.w_o @ trace.h_final  # Eq. 6
        trace.prediction = int(np.argmax(trace.logits))
        return trace

    # -- batch helpers ---------------------------------------------------
    # All whole-batch entry points delegate to the vectorised
    # BatchInferenceEngine, which is np.allclose-parity-tested against
    # forward_trace (tests/mann/test_batch_parity.py).
    def predict(self, stories: np.ndarray, questions: np.ndarray, lengths: np.ndarray | None = None) -> np.ndarray:
        """Vectorised predictions (no trace) for a whole encoded batch."""
        return self.batch.predict(stories, questions, lengths)

    def logits_batch(self, stories: np.ndarray, questions: np.ndarray, lengths: np.ndarray | None = None) -> np.ndarray:
        """Logit matrix (B, V) across a batch (used to fit thresholds)."""
        return self.batch.logits(stories, questions, lengths)

    def search_batch(self, stories, questions, lengths=None):
        """Stacked output-search results (requires a ``mips_backend``)."""
        return self.batch.search(stories, questions, lengths)

    def accuracy(self, stories, questions, answers, lengths=None) -> float:
        return self.batch.accuracy(stories, questions, answers, lengths)
