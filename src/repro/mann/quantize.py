"""Fixed-point weight quantization (the paper's ref [10] direction).

The authors' earlier work ("Quantized Memory-Augmented Neural
Networks", AAAI 2018) showed MANN inference tolerates low-precision
weights. This module provides Q-format (two's-complement fixed point)
quantization of a trained :class:`~repro.mann.weights.MannWeights`:

* :class:`QFormat` — a Qm.n representation (m integer bits, n fractional
  bits, plus sign), with quantise/dequantise and introspection helpers.
* :func:`quantize_weights` — snap every weight matrix to the grid and
  return a new ``MannWeights`` (the golden engine, the accelerator and
  the MIPS engines then run on it unchanged — weight quantization only,
  activations stay float, as in the reference's inference mode).
* :class:`QuantizationReport` — per-matrix error statistics and the
  model-transfer byte savings the smaller word width buys on the host
  interface.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.mann.weights import MannWeights

_WEIGHT_FIELDS = ("w_emb_a", "w_emb_c", "w_emb_q", "w_r", "w_o", "t_a", "t_c")


@dataclass(frozen=True)
class QFormat:
    """Two's-complement fixed point with ``int_bits``.``frac_bits``.

    Representable range is [-2^m, 2^m - 2^-n] with resolution 2^-n;
    values outside the range saturate (hardware-style clamping rather
    than wrap-around).
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self):
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ValueError("bit counts must be non-negative")
        if self.int_bits + self.frac_bits == 0:
            raise ValueError("need at least one magnitude bit")

    @property
    def total_bits(self) -> int:
        """Word width including the sign bit."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def resolution(self) -> float:
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        return 2.0**self.int_bits - self.resolution

    @property
    def min_value(self) -> float:
        return -(2.0**self.int_bits)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round to the grid and saturate to the representable range."""
        values = np.asarray(values, dtype=np.float64)
        scaled = np.round(values / self.resolution) * self.resolution
        return np.clip(scaled, self.min_value, self.max_value)

    def to_integers(self, values: np.ndarray) -> np.ndarray:
        """The raw integer codes a hardware memory would store."""
        q = self.quantize(values)
        return np.round(q / self.resolution).astype(np.int64)

    def from_integers(self, codes: np.ndarray) -> np.ndarray:
        return np.asarray(codes, dtype=np.float64) * self.resolution

    def __str__(self) -> str:
        return f"Q{self.int_bits}.{self.frac_bits}"


@dataclass
class QuantizationReport:
    """Error statistics and transfer savings of one quantization."""

    qformat: QFormat
    max_abs_error: dict[str, float]
    rms_error: dict[str, float]
    saturated_fraction: dict[str, float]
    float_bytes: int
    quantized_bytes: int

    @property
    def compression_ratio(self) -> float:
        return self.float_bytes / self.quantized_bytes

    @property
    def worst_max_abs_error(self) -> float:
        return max(self.max_abs_error.values())


@dataclass(frozen=True)
class QuantizedWeights:
    """A fixed-point model snapshot: grid-snapped weights + their format.

    ``weights`` holds float64 values lying exactly on the Qm.n grid
    (what every engine consumes unchanged); ``qformat`` remembers the
    grid. The pair round-trips losslessly through the integer codes a
    hardware memory would store — ``codes()`` /
    :meth:`from_codes` are bit-exact inverses because dequantisation
    multiplies by an exact power of two — which is how
    :mod:`repro.artifacts` persists quantized models for serving.
    """

    weights: MannWeights
    qformat: QFormat

    @classmethod
    def quantize(
        cls, weights: MannWeights, qformat: QFormat
    ) -> tuple["QuantizedWeights", QuantizationReport]:
        """Snap a trained float model to the grid (with error report)."""
        snapped, report = quantize_weights(weights, qformat)
        return cls(weights=snapped, qformat=qformat), report

    def codes(self) -> dict[str, np.ndarray]:
        """Per-matrix int64 codes (the device representation)."""
        return {
            name: self.qformat.to_integers(getattr(self.weights, name))
            for name in _WEIGHT_FIELDS
        }

    @classmethod
    def from_codes(
        cls, config, qformat: QFormat, codes: dict[str, np.ndarray]
    ) -> "QuantizedWeights":
        """Rebuild the exact grid values from stored integer codes."""
        matrices = {
            name: qformat.from_integers(codes[name]) for name in _WEIGHT_FIELDS
        }
        return cls(
            weights=MannWeights(config=config, **matrices), qformat=qformat
        )


def quantize_weights(
    weights: MannWeights, qformat: QFormat
) -> tuple[MannWeights, QuantizationReport]:
    """Quantize every weight matrix of a trained model.

    Returns the quantized weights (as float64 values lying exactly on
    the fixed-point grid, ready for the existing engines) and a report.
    """
    quantized: dict[str, np.ndarray] = {}
    max_abs: dict[str, float] = {}
    rms: dict[str, float] = {}
    saturated: dict[str, float] = {}
    for name in _WEIGHT_FIELDS:
        original = getattr(weights, name)
        snapped = qformat.quantize(original)
        quantized[name] = snapped
        error = snapped - original
        max_abs[name] = float(np.abs(error).max()) if error.size else 0.0
        rms[name] = float(np.sqrt((error**2).mean())) if error.size else 0.0
        saturated[name] = float(
            np.mean(
                (original > qformat.max_value) | (original < qformat.min_value)
            )
        )

    new_weights = MannWeights(config=weights.config, **quantized)
    n_params = weights.num_parameters()
    report = QuantizationReport(
        qformat=qformat,
        max_abs_error=max_abs,
        rms_error=rms,
        saturated_fraction=saturated,
        float_bytes=n_params * 4,
        quantized_bytes=int(np.ceil(n_params * qformat.total_bits / 8)),
    )
    return new_weights, report


def accuracy_vs_bits(
    weights: MannWeights,
    evaluate,
    frac_bits_sweep: tuple[int, ...] = (12, 10, 8, 6, 4, 2),
    int_bits: int = 3,
) -> list[tuple[QFormat, float, QuantizationReport]]:
    """Sweep fractional precision and measure accuracy via ``evaluate``.

    ``evaluate`` maps a ``MannWeights`` to an accuracy in [0, 1] (e.g.
    a closure over a test batch and the golden engine).
    """
    results = []
    for frac_bits in frac_bits_sweep:
        qformat = QFormat(int_bits, frac_bits)
        quantized, report = quantize_weights(weights, qformat)
        results.append((qformat, float(evaluate(quantized)), report))
    return results
