"""Attention-behaviour analysis of trained memory networks.

MemN2N's evaluation inspects where the attention mass lands: a model
that answers correctly *for the right reason* attends to the annotated
supporting facts. The generators record supporting-fact indices, so we
can score attention quality per hop — useful both as a training sanity
check and to explain which tasks the thresholding statistics separate
well (sharply attending models produce sharply separated logits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.babi.dataset import BabiDataset
from repro.mann.inference import InferenceEngine


@dataclass
class AttentionStats:
    """Aggregate attention behaviour over a dataset."""

    task_id: int
    n_examples: int
    support_recall_per_hop: list[float]
    support_recall_any_hop: float
    mean_entropy_per_hop: list[float]
    mean_max_attention_per_hop: list[float]

    def summary(self) -> str:
        hops = ", ".join(
            f"hop{t + 1}={r:.2f}" for t, r in enumerate(self.support_recall_per_hop)
        )
        return (
            f"task {self.task_id}: supporting-fact recall {hops} "
            f"(any hop: {self.support_recall_any_hop:.2f})"
        )


def _entropy(p: np.ndarray) -> float:
    p = np.clip(p, 1e-12, 1.0)
    return float(-(p * np.log(p)).sum())


def attention_statistics(
    engine: InferenceEngine,
    dataset: BabiDataset,
    max_examples: int | None = None,
) -> AttentionStats:
    """Score the model's attention against annotated supporting facts.

    ``support_recall_per_hop[t]`` is the fraction of examples whose
    hop-t argmax attention lands on one of the supporting sentences
    (adjusted for stories truncated to the memory window).
    """
    batch = dataset.encode()
    n = len(batch) if max_examples is None else min(len(batch), max_examples)
    hops = engine.config.hops

    hit_per_hop = np.zeros(hops)
    hit_any = 0
    entropy_per_hop = np.zeros(hops)
    max_attention_per_hop = np.zeros(hops)
    counted = 0

    for i in range(n):
        example = dataset.examples[i]
        n_sentences = int(batch.story_lengths[i])
        # Account for memory truncation: sentence j of the original
        # story occupies slot j - offset.
        offset = len(example.story) - n_sentences
        support_slots = {
            s - offset for s in example.supporting if s - offset >= 0
        }
        if not support_slots:
            continue
        trace = engine.forward_trace(
            batch.stories[i], batch.questions[i], n_sentences
        )
        any_hit = False
        for t, attention in enumerate(trace.attentions):
            top = int(np.argmax(attention))
            if top in support_slots:
                hit_per_hop[t] += 1
                any_hit = True
            entropy_per_hop[t] += _entropy(attention)
            max_attention_per_hop[t] += float(attention.max())
        hit_any += int(any_hit)
        counted += 1

    if counted == 0:
        raise ValueError("no examples with in-window supporting facts")
    return AttentionStats(
        task_id=dataset.examples[0].task_id,
        n_examples=counted,
        support_recall_per_hop=(hit_per_hop / counted).tolist(),
        support_recall_any_hop=hit_any / counted,
        mean_entropy_per_hop=(entropy_per_hop / counted).tolist(),
        mean_max_attention_per_hop=(max_attention_per_hop / counted).tolist(),
    )


@dataclass
class HopContribution:
    """How much each hop changes the controller state (read vs carry)."""

    read_norms: list[float]
    carry_norms: list[float]

    @property
    def read_dominance_per_hop(self) -> list[float]:
        return [
            r / (r + c) if (r + c) > 0 else 0.0
            for r, c in zip(self.read_norms, self.carry_norms)
        ]


def hop_contributions(
    engine: InferenceEngine,
    dataset: BabiDataset,
    max_examples: int = 50,
) -> HopContribution:
    """Average norms of the read vector vs the recurrent carry W_r k.

    Distinguishes tasks solved in one hop (later hops carry-dominated)
    from genuinely multi-hop tasks.
    """
    batch = dataset.encode()
    n = min(len(batch), max_examples)
    hops = engine.config.hops
    read_norms = np.zeros(hops)
    carry_norms = np.zeros(hops)
    for i in range(n):
        trace = engine.forward_trace(
            batch.stories[i], batch.questions[i], int(batch.story_lengths[i])
        )
        for t in range(hops):
            read_norms[t] += float(np.linalg.norm(trace.reads[t]))
            carry = trace.controller_outputs[t] - trace.reads[t]
            carry_norms[t] += float(np.linalg.norm(carry))
    return HopContribution(
        read_norms=(read_norms / n).tolist(),
        carry_norms=(carry_norms / n).tolist(),
    )
