"""Vectorised batch inference engine for the MANN (Eqs. 1-6).

Runs the full forward pass over a whole encoded batch in pure numpy
tensor ops — masked bag-of-words embedding of every story and question
at once, length-masked softmax attention across all examples per hop,
and a single ``(B, V)`` output projection — with no per-example Python
loop. Results are ``np.allclose``-equal to the per-example golden
engine (:meth:`repro.mann.inference.InferenceEngine.forward_trace`),
which stays the bit-exact per-example reference the hardware simulator
is co-simulated against; this engine is the fast host-side path that
the evaluation suite, thresholding fits and benchmarks run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mann.weights import MannWeights
from repro.mips.backend import MipsBackend, get_backend
from repro.mips.stats import BatchSearchResult


def infer_story_lengths(stories: np.ndarray) -> np.ndarray:
    """Per-example story length: index of the last non-pad sentence + 1.

    Fully-empty stories count as occupying one (all-pad) slot — the
    same inference the golden engine applies per example. Shared by
    the batch engine and the serving facade so both paths infer
    identical lengths when the caller does not pin them.
    """
    nonpad = stories.any(axis=2)  # (B, L)
    slots = stories.shape[1]
    last = slots - np.argmax(nonpad[:, ::-1], axis=1)
    return np.where(nonpad.any(axis=1), last, 1).astype(np.int64)


@dataclass
class BatchTrace:
    """Stacked intermediates of a whole batch's forward pass.

    Shapes: B = batch, L = memory slots, E = embed dim, V = vocab,
    T = hops. Slots at or beyond an example's story length hold
    all-zero memory rows, ``-inf`` attention scores and exactly zero
    attention mass, so per-example views can simply be sliced with
    ``lengths[b]``.
    """

    mem_a: np.ndarray  # (B, L, E) address memory after write
    mem_c: np.ndarray  # (B, L, E) content memory after write
    slot_mask: np.ndarray  # (B, L) bool, True on real sentences
    keys: list[np.ndarray] = field(default_factory=list)  # T x (B, E)
    scores: list[np.ndarray] = field(default_factory=list)  # T x (B, L)
    attentions: list[np.ndarray] = field(default_factory=list)  # T x (B, L)
    reads: list[np.ndarray] = field(default_factory=list)  # T x (B, E)
    controller_outputs: list[np.ndarray] = field(default_factory=list)  # T x (B, E)
    logits: np.ndarray | None = None  # (B, V)
    predictions: np.ndarray | None = None  # (B,) int64
    # Per-example output-search statistics when the engine runs a MIPS
    # backend: stacked labels/logits/comparisons/early-exit flags.
    search: BatchSearchResult | None = None

    def __len__(self) -> int:
        return self.mem_a.shape[0]

    @property
    def h_final(self) -> np.ndarray:
        """Final controller outputs h_T, shape (B, E)."""
        return self.controller_outputs[-1]

    @property
    def comparisons(self) -> np.ndarray:
        """Per-example output-scan comparison counts (Fig. 3 y-axis)."""
        if self.search is None:
            raise ValueError("trace has no search stats: engine ran without a MIPS backend")
        return self.search.comparisons

    @property
    def early_exits(self) -> np.ndarray:
        """Per-example speculative-exit flags of the MIPS backend."""
        if self.search is None:
            raise ValueError("trace has no search stats: engine ran without a MIPS backend")
        return self.search.early_exits


class BatchInferenceEngine:
    """Vectorised Eqs. 1-6 on frozen weights, a whole batch at a time.

    Padding is handled by masks rather than by trusting the trained
    pad row: word index 0 contributes nothing to any embedding (Eq. 2)
    even when the embedding matrices have a non-zero row 0, and
    attention mass beyond a story's real length is exactly zero —
    matching the golden engine, which writes exactly one memory element
    per streamed sentence.

    The output projection (Eq. 6) is pluggable: pass ``mips_backend``
    (a registry name such as ``"exact"``/``"threshold"``/``"alsh"``/
    ``"clustering"``, or an already-built backend instance) and the
    argmax runs through that backend's vectorized ``search_batch``,
    surfacing per-example comparison counts and early-exit flags in
    :class:`BatchTrace`. With no backend (the default) or with the
    exact backend, predictions are bit-identical to the golden trace's
    ``np.argmax`` over the full logit matrix.

    Serving callers normally do not construct this class directly:
    :func:`repro.serving.open_predictor` wraps it (device ``"sw"``)
    behind typed ``QueryRequest``/``QueryResponse`` objects, and
    :class:`repro.serving.BatchScheduler` feeds it coalesced
    micro-batches from individually submitted requests.
    """

    def __init__(
        self,
        weights: MannWeights,
        mips_backend: str | MipsBackend | None = None,
        *,
        threshold_model=None,
        memory_cache=None,
        **backend_params,
    ):
        self.weights = weights
        self.config = weights.config
        self.mips = self._resolve_backend(
            mips_backend, threshold_model, backend_params
        )
        #: Optional cross-request story-encoding cache
        #: (:class:`repro.serving.cache.MemoryCache`, duck-typed so the
        #: model layer does not depend on the serving layer): when set,
        #: the write phase (Eqs. 1-2) is served from the cache for
        #: replayed stories and identical stories within one batch are
        #: encoded once.
        self.memory_cache = memory_cache
        # Weights are a frozen snapshot, so the pad-zeroed gather
        # matrices are prepared once: columns [:E] of ``_w_emb_ac`` are
        # the address embedding, [E:] the content embedding.
        self._w_emb_ac = np.concatenate([weights.w_emb_a, weights.w_emb_c], axis=1)
        self._w_emb_ac[0] = 0
        self._w_emb_q = weights.w_emb_q.copy()
        self._w_emb_q[0] = 0

    def _resolve_backend(
        self,
        mips_backend: str | MipsBackend | None,
        threshold_model,
        backend_params: dict,
    ) -> MipsBackend | None:
        if mips_backend is None:
            if threshold_model is not None or backend_params:
                raise ValueError(
                    "backend parameters given without a mips_backend"
                )
            return None
        if isinstance(mips_backend, str):
            return get_backend(mips_backend).build(
                self.weights.w_o,
                threshold_model=threshold_model,
                **backend_params,
            )
        if threshold_model is not None or backend_params:
            raise ValueError(
                "threshold_model/backend parameters cannot be combined "
                "with an already-built backend instance"
            )
        if mips_backend.weight.shape[0] != self.config.vocab_size:
            raise ValueError(
                f"mips backend covers {mips_backend.weight.shape[0]} indices, "
                f"model vocabulary is {self.config.vocab_size}"
            )
        return mips_backend

    # -- write path ----------------------------------------------------
    @staticmethod
    def embed_sentences(word_indices: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Masked bag-of-words embedding (Eq. 2) of ``(..., W)`` indices.

        Returns ``(..., E)`` sums of the non-pad embedding rows, in the
        embedding matrix's dtype. Pad positions (index 0) are masked
        out instead of relying on a zeroed pad row.
        """
        idx = np.asarray(word_indices, dtype=np.int64)
        mask = (idx != 0).astype(matrix.dtype)
        return (matrix[idx] * mask[..., None]).sum(axis=-2)

    def write_memory(
        self, stories: np.ndarray, lengths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Embed every story of the batch into address/content memories.

        Returns ``(mem_a, mem_c, slot_mask)`` with memories of shape
        (B, L, E); rows of pad slots are exactly zero.
        """
        w = self.weights
        slots = stories.shape[1]
        embed = self.config.embed_dim
        slot_mask = np.arange(slots)[None, :] < lengths[:, None]  # (B, L)
        m = slot_mask[:, :, None]
        # One fused gather serves both memories; pad tokens gather the
        # zeroed row and contribute nothing.
        bow = self._w_emb_ac[stories].sum(axis=2)  # (B, L, 2E)
        mem_a = (bow[..., :embed] + w.t_a[:slots]) * m
        mem_c = (bow[..., embed:] + w.t_c[:slots]) * m
        return mem_a, mem_c, slot_mask

    def write_memory_cached(
        self, stories: np.ndarray, lengths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Memory write (Eqs. 1-2) through :attr:`memory_cache`.

        Bit-identical to :meth:`write_memory` by construction: every
        write-phase operation is row-wise per ``(example, slot)``, so
        computing only the batch's cache misses — one representative
        per distinct story (within-flush dedupe) — and scattering the
        rows back yields exactly the arrays a full recompute would.
        Cached rows are trimmed to the story's real length; the rows at
        and beyond it are exactly zero either way. Falls back to the
        plain path when no cache is configured.
        """
        cache = self.memory_cache
        if cache is None:
            return self.write_memory(stories, lengths)
        batch, slots, _ = stories.shape
        embed = self.config.embed_dim
        dtype = np.result_type(self._w_emb_ac, self.weights.t_a)
        mem_a = np.zeros((batch, slots, embed), dtype=dtype)
        mem_c = np.zeros((batch, slots, embed), dtype=dtype)
        slot_mask = np.arange(slots)[None, :] < lengths[:, None]
        #: key -> story groups sharing that hash, each group the rows of
        #: one *verified-equal* story, so duplicates inside one flush
        #: encode once and fan out (within-flush dedupe). Same guard as
        #: the cache itself: hash equality never substitutes for array
        #: equality, so colliding stories land in separate groups.
        pending: dict[bytes, list[list[int]]] = {}
        groups: list[tuple[bytes, list[int]]] = []
        for i in range(batch):
            trimmed = stories[i, : lengths[i]]
            key = cache.key(trimmed)
            deduped = False
            for rows in pending.get(key, ()):
                rep = rows[0]
                if lengths[rep] == lengths[i] and np.array_equal(
                    stories[rep, : lengths[rep]], trimmed
                ):
                    rows.append(i)  # duplicate within this flush
                    cache.note_dedupe()
                    deduped = True
                    break
            if deduped:
                continue
            hit = cache.get(key, trimmed)
            if hit is not None:
                rows_a, rows_c = hit
                mem_a[i, : rows_a.shape[0]] = rows_a
                mem_c[i, : rows_c.shape[0]] = rows_c
            else:
                rows = [i]
                pending.setdefault(key, []).append(rows)
                groups.append((key, rows))
        if groups:
            reps = np.array([rows[0] for _, rows in groups])
            # Row-wise ops make the subset compute bit-identical to the
            # same rows of a whole-batch write_memory call.
            miss_a, miss_c, _ = self.write_memory(stories[reps], lengths[reps])
            for j, (key, rows) in enumerate(groups):
                n = lengths[rows[0]]
                rows_a = np.ascontiguousarray(miss_a[j, :n])
                rows_c = np.ascontiguousarray(miss_c[j, :n])
                cache.put(key, stories[rows[0], :n], rows_a, rows_c)
                for i in rows:
                    mem_a[i, :n] = rows_a
                    mem_c[i, :n] = rows_c
        return mem_a, mem_c, slot_mask

    # -- read path -----------------------------------------------------
    @staticmethod
    def attention(
        mem_a: np.ndarray, keys: np.ndarray, slot_mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Content-based addressing (Eq. 1) for the whole batch.

        Returns ``(scores, weights)`` of shape (B, L); masked slots get
        a score of ``-inf`` and exactly zero attention weight, so the
        softmax normalises over each example's real sentences only.
        """
        scores = (mem_a @ keys[:, :, None])[:, :, 0]  # (B, L)
        scores = np.where(slot_mask, scores, -np.inf)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exps = np.exp(shifted)  # exp(-inf) == 0: pad slots drop out
        return scores, exps / exps.sum(axis=1, keepdims=True)

    # -- forward -------------------------------------------------------
    def _resolve_lengths(
        self, stories: np.ndarray, lengths: np.ndarray | None
    ) -> np.ndarray:
        batch, slots, _ = stories.shape
        if lengths is None:
            return infer_story_lengths(stories)
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.shape != (batch,):
            raise ValueError(
                f"lengths has shape {lengths.shape}, expected ({batch},)"
            )
        if np.any((lengths < 1) | (lengths > slots)):
            raise ValueError(f"story lengths outside [1, {slots}]")
        return lengths

    def _forward(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        lengths: np.ndarray | None,
        record: bool,
    ) -> tuple[np.ndarray, BatchTrace | None]:
        """Run Eqs. 1-5; returns final controller outputs (B, E)."""
        w = self.weights
        stories = np.asarray(stories, dtype=np.int64)
        questions = np.asarray(questions, dtype=np.int64)
        if stories.ndim != 3:
            raise ValueError(f"stories must be 3-D, got shape {stories.shape}")
        if questions.ndim != 2:
            raise ValueError(f"questions must be 2-D, got shape {questions.shape}")
        if len(questions) != len(stories):
            raise ValueError("stories and questions must have the same length")
        if stories.shape[1] > self.config.memory_size:
            raise ValueError(
                f"stories have {stories.shape[1]} slots, engine supports "
                f"at most {self.config.memory_size}"
            )
        lengths = self._resolve_lengths(stories, lengths)

        mem_a, mem_c, slot_mask = self.write_memory_cached(stories, lengths)
        trace = (
            BatchTrace(mem_a=mem_a, mem_c=mem_c, slot_mask=slot_mask)
            if record
            else None
        )

        key = self._w_emb_q[questions].sum(axis=1)  # Eq. 3, t=1: (B, E)
        h = key
        for _ in range(self.config.hops):
            scores, attention = self.attention(mem_a, key, slot_mask)  # Eq. 1
            read = (attention[:, None, :] @ mem_c)[:, 0, :]  # Eq. 5: (B, E)
            h = read + key @ w.w_r  # Eq. 4
            if trace is not None:
                trace.keys.append(key)
                trace.scores.append(scores)
                trace.attentions.append(attention)
                trace.reads.append(read)
                trace.controller_outputs.append(h)
            key = h  # Eq. 3, t > 1

        return h, trace

    def _project(self, h: np.ndarray) -> np.ndarray:
        """Full output projection (Eq. 6): logits (B, V)."""
        return h @ self.weights.w_o.T

    def forward_trace(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        lengths: np.ndarray | None = None,
    ) -> BatchTrace:
        """Forward pass of the whole batch recording every intermediate.

        ``trace.logits`` is always the full (B, V) matrix; with a MIPS
        backend configured, ``trace.search`` carries the backend's
        stacked per-example statistics and ``trace.predictions`` are the
        backend's labels (identical to the argmax for exact backends).
        The traced path therefore pays Eq. 6 twice (full projection for
        the golden-parity trace plus the backend's own scan) by design;
        the untraced ``predict``/``search`` path pays only the backend.
        """
        h, trace = self._forward(stories, questions, lengths, record=True)
        trace.logits = self._project(h)
        if self.mips is None:
            trace.predictions = np.argmax(trace.logits, axis=1)
        else:
            trace.search = self.mips.search_batch(h)
            trace.predictions = trace.search.labels
        return trace

    def logits(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        lengths: np.ndarray | None = None,
    ) -> np.ndarray:
        """Logit matrix (B, V) without recording intermediates."""
        h, _ = self._forward(stories, questions, lengths, record=False)
        return self._project(h)

    def search(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        lengths: np.ndarray | None = None,
    ) -> BatchSearchResult:
        """Run the output search via the configured MIPS backend."""
        if self.mips is None:
            raise ValueError(
                "engine was built without a MIPS backend; pass "
                "mips_backend= to BatchInferenceEngine"
            )
        h, _ = self._forward(stories, questions, lengths, record=False)
        return self.mips.search_batch(h)

    def predict(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        lengths: np.ndarray | None = None,
    ) -> np.ndarray:
        """Greedy predictions (B,) for the whole batch."""
        if self.mips is None:
            return np.argmax(self.logits(stories, questions, lengths), axis=1)
        return self.search(stories, questions, lengths).labels

    def accuracy(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        answers: np.ndarray,
        lengths: np.ndarray | None = None,
    ) -> float:
        preds = self.predict(stories, questions, lengths)
        return float((preds == np.asarray(answers)).mean())
