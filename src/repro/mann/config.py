"""Model hyper-parameters for the memory network."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MannConfig:
    """Configuration of the MemN2N-style MANN.

    Attributes mirror the symbols of Section II of the paper:

    ``vocab_size``    output dimension |I| (full vocabulary; answers are
                      vocabulary tokens)
    ``embed_dim``     embedding dimension |E|
    ``memory_size``   number of memory elements L
    ``hops``          number of recursive reads T performed by the READ
                      module (MemN2N "hops"; the read key of hop t>1 is
                      the previous controller output, Eq. 3)
    ``temporal_encoding``  add a learned per-slot temporal vector to the
                      address/content memories (MemN2N's TE, needed for
                      tasks whose answer depends on fact recency)
    ``seed``          weight-initialisation seed
    """

    vocab_size: int
    embed_dim: int = 20
    memory_size: int = 15
    hops: int = 3
    temporal_encoding: bool = True
    init_std: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be at least 2")
        if self.embed_dim < 1:
            raise ValueError("embed_dim must be positive")
        if self.memory_size < 1:
            raise ValueError("memory_size must be positive")
        if self.hops < 1:
            raise ValueError("hops must be at least 1")

    def with_memory_size(self, memory_size: int) -> "MannConfig":
        """Copy with a different memory size (stories vary per task)."""
        return MannConfig(
            vocab_size=self.vocab_size,
            embed_dim=self.embed_dim,
            memory_size=memory_size,
            hops=self.hops,
            temporal_encoding=self.temporal_encoding,
            init_std=self.init_std,
            seed=self.seed,
        )
