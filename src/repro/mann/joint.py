"""Joint multi-task training of one MANN over all bAbI tasks.

MemN2N's evaluation includes a *jointly* trained model: a single set of
weights for all 20 tasks, sharing the embedding, controller and output
matrices. For the accelerator this is the most favourable deployment —
one model transfer serves every task — so this module provides the
joint-training path alongside the per-task suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.babi.dataset import BabiDataset, EncodedBatch
from repro.babi.story import QAExample
from repro.babi.tasks import get_generator
from repro.babi.vocab import Vocab
from repro.mann.config import MannConfig
from repro.mann.inference import InferenceEngine
from repro.mann.model import MemoryNetwork
from repro.mann.trainer import Trainer
from repro.utils.rng import spawn_rngs


@dataclass
class JointDataset:
    """Examples of several tasks merged into one encoding space."""

    dataset: BabiDataset
    task_of_example: np.ndarray  # task id per example

    def task_indices(self, task_id: int) -> np.ndarray:
        return np.flatnonzero(self.task_of_example == task_id)


@dataclass
class JointTrainResult:
    """Jointly trained model plus per-task evaluation."""

    model: MemoryNetwork
    engine: InferenceEngine
    train: JointDataset
    test: JointDataset
    per_task_accuracy: dict[int, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.per_task_accuracy.values())))


def _generate_examples(
    task_ids: tuple[int, ...], n_per_task: int, seed: int
) -> tuple[list[QAExample], list[int]]:
    rngs = spawn_rngs(seed, len(task_ids))
    examples: list[QAExample] = []
    task_of_example: list[int] = []
    for rng, task_id in zip(rngs, task_ids):
        for example in get_generator(task_id)(rng, n_per_task):
            examples.append(example)
            task_of_example.append(task_id)
    return examples, task_of_example


def build_joint_dataset(
    task_ids: tuple[int, ...],
    n_per_task: int,
    seed: int,
    vocab: Vocab | None = None,
    memory_size: int | None = None,
    sentence_len: int | None = None,
) -> JointDataset:
    """Generate and merge examples of several tasks."""
    if not task_ids:
        raise ValueError("need at least one task")
    examples, task_of_example = _generate_examples(task_ids, n_per_task, seed)
    dataset = BabiDataset(examples, vocab, memory_size, sentence_len)
    return JointDataset(dataset, np.array(task_of_example))


def train_joint_model(
    task_ids: tuple[int, ...] = tuple(range(1, 21)),
    n_train_per_task: int = 100,
    n_test_per_task: int = 40,
    embed_dim: int = 24,
    hops: int = 3,
    epochs: int = 40,
    lr: float = 0.01,
    batch_size: int = 32,
    seed: int = 17,
) -> JointTrainResult:
    """Train one model over all requested tasks; evaluate per task."""
    # Generate both splits first so the vocabulary and the encoding
    # dimensions cover the union (the accelerator holds one model).
    train_examples, train_tasks = _generate_examples(
        task_ids, n_train_per_task, seed
    )
    test_examples, test_tasks = _generate_examples(
        task_ids, n_test_per_task, seed + 1
    )
    union = BabiDataset(train_examples + test_examples)
    train = JointDataset(
        BabiDataset(
            train_examples, union.vocab, union.memory_size, union.sentence_len
        ),
        np.array(train_tasks),
    )
    test = JointDataset(
        BabiDataset(
            test_examples, union.vocab, union.memory_size, union.sentence_len
        ),
        np.array(test_tasks),
    )
    config = MannConfig(
        vocab_size=len(train.dataset.vocab),
        embed_dim=embed_dim,
        memory_size=train.dataset.memory_size,
        hops=hops,
        seed=seed,
    )
    model = MemoryNetwork(config)
    trainer = Trainer(model, lr=lr, batch_size=batch_size, seed=seed)
    trainer.fit(train.dataset.encode(), epochs=epochs, target_accuracy=0.99)

    engine = InferenceEngine(model.export_weights())
    result = JointTrainResult(model=model, engine=engine, train=train, test=test)
    test_batch = test.dataset.encode()
    predictions = engine.predict(
        test_batch.stories, test_batch.questions, test_batch.story_lengths
    )
    for task_id in task_ids:
        idx = test.task_indices(task_id)
        result.per_task_accuracy[task_id] = float(
            (predictions[idx] == test_batch.answers[idx]).mean()
        )
    return result
