"""Memory-augmented neural network (End-to-End Memory Network).

Implements the model of Section II of the paper: bag-of-words embedding
writes (Eq. 2), content-based addressing (Eq. 1), soft memory reads
(Eq. 5), the recurrent READ controller (Eqs. 3-4) and the output layer
(Eq. 6). Training runs on the :mod:`repro.nn` autograd; inference has a
pure-numpy golden engine that records every intermediate value so the
hardware simulator can be co-simulated against it.
"""

from repro.mann.batch import BatchInferenceEngine, BatchTrace
from repro.mann.config import MannConfig
from repro.mann.inference import InferenceEngine, InferenceTrace
from repro.mann.model import MemoryNetwork
from repro.mann.quantize import (
    QFormat,
    QuantizationReport,
    QuantizedWeights,
    accuracy_vs_bits,
    quantize_weights,
)
from repro.mann.trainer import Trainer, TrainResult, train_task_model
from repro.mann.weights import MannWeights

__all__ = [
    "MannConfig",
    "MemoryNetwork",
    "MannWeights",
    "InferenceEngine",
    "InferenceTrace",
    "BatchInferenceEngine",
    "BatchTrace",
    "Trainer",
    "TrainResult",
    "train_task_model",
    "QFormat",
    "QuantizationReport",
    "QuantizedWeights",
    "quantize_weights",
    "accuracy_vs_bits",
]
