"""Trainable MemN2N built on the :mod:`repro.nn` autograd.

The forward pass follows Eqs. 1-6 of the paper with MemN2N's RNN-style
(layer-wise) weight tying: a single address embedding, content
embedding, question embedding, controller matrix ``W_r`` and output
matrix ``W_o`` are shared across hops, so multi-hop reads are exactly
the recurrent READ path of the accelerator.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.mann.config import MannConfig
from repro.mann.weights import MannWeights
from repro.utils.rng import new_rng


class MemoryNetwork(nn.Module):
    """End-to-End Memory Network over encoded bAbI batches."""

    def __init__(self, config: MannConfig):
        self.config = config
        rng = new_rng(config.seed)
        v, e, l = config.vocab_size, config.embed_dim, config.memory_size
        std = config.init_std

        def embedding_matrix() -> np.ndarray:
            weight = rng.normal(0.0, std, size=(v, e))
            weight[0] = 0.0  # pad row stays zero
            return weight

        self.w_emb_a = nn.Parameter(embedding_matrix(), name="w_emb_a")
        self.w_emb_c = nn.Parameter(embedding_matrix(), name="w_emb_c")
        self.w_emb_q = nn.Parameter(embedding_matrix(), name="w_emb_q")
        self.w_r = nn.Parameter(rng.normal(0.0, std, size=(e, e)), name="w_r")
        self.w_o = nn.Parameter(rng.normal(0.0, std, size=(v, e)), name="w_o")
        if config.temporal_encoding:
            self.t_a = nn.Parameter(rng.normal(0.0, std, size=(l, e)), name="t_a")
            self.t_c = nn.Parameter(rng.normal(0.0, std, size=(l, e)), name="t_c")
        else:
            self.t_a = nn.Parameter(np.zeros((l, e)), name="t_a")
            self.t_c = nn.Parameter(np.zeros((l, e)), name="t_c")

    # ------------------------------------------------------------------
    def forward(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        lengths: np.ndarray | None = None,
    ) -> nn.Tensor:
        """Compute logits for a batch.

        ``stories``   (B, L, W) int indices, ``questions`` (B, W),
        ``lengths``   (B,) count of real (non-pad) sentences per story;
        attention over slots beyond a story's length is masked out so
        the model matches the golden engine, which writes exactly one
        memory element per streamed sentence.
        Returns logits of shape (B, V).
        """
        stories = np.asarray(stories, dtype=np.int64)
        questions = np.asarray(questions, dtype=np.int64)
        if stories.ndim != 3:
            raise ValueError(f"stories must be 3-D, got shape {stories.shape}")
        if questions.ndim != 2:
            raise ValueError(f"questions must be 2-D, got shape {questions.shape}")
        batch, slots, _ = stories.shape
        if slots != self.config.memory_size:
            raise ValueError(
                f"stories have {slots} slots, model expects "
                f"{self.config.memory_size}"
            )
        if lengths is None:
            lengths = np.full(batch, slots, dtype=np.int64)
        else:
            lengths = np.asarray(lengths, dtype=np.int64)
        slot_mask = np.arange(slots)[None, :] < lengths[:, None]  # (B, L)
        score_bias = np.where(slot_mask, 0.0, -1e30)

        # Memory write (Eq. 2): bag-of-words sums of embedding rows,
        # plus temporal encodings (real slots only).
        mem_a = self.w_emb_a.take_rows(stories).sum(axis=2) + self.t_a * slot_mask[:, :, None]
        mem_c = self.w_emb_c.take_rows(stories).sum(axis=2) + self.t_c * slot_mask[:, :, None]

        # Initial read key (Eq. 3, t=1): embedded question.
        key = self.w_emb_q.take_rows(questions).sum(axis=1)  # (B, E)

        h = None
        for _ in range(self.config.hops):
            # Content-based addressing (Eq. 1) over the real slots.
            scores = (mem_a * key.reshape(batch, 1, -1)).sum(axis=2) + score_bias
            attention = scores.softmax(axis=1)  # (B, L)
            # Read vector (Eq. 5).
            read = (
                mem_c * attention.reshape(batch, slots, 1)
            ).sum(axis=1)  # (B, E)
            # Controller output (Eq. 4).
            h = read + key @ self.w_r
            key = h  # Eq. 3, t > 1

        # Output layer (Eq. 6): logits for every vocabulary index.
        return h @ self.w_o.T

    # ------------------------------------------------------------------
    def predict(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        lengths: np.ndarray | None = None,
    ) -> np.ndarray:
        """Greedy label predictions without building the autograd graph."""
        with nn.no_grad():
            logits = self.forward(stories, questions, lengths)
        return np.argmax(logits.data, axis=-1)

    def zero_pad_rows(self) -> None:
        """Re-zero the padding embedding rows (called after each update)."""
        self.w_emb_a.data[0] = 0.0
        self.w_emb_c.data[0] = 0.0
        self.w_emb_q.data[0] = 0.0

    def export_weights(self) -> MannWeights:
        """Freeze current parameters into a :class:`MannWeights` snapshot."""
        return MannWeights(
            config=self.config,
            w_emb_a=self.w_emb_a.data.copy(),
            w_emb_c=self.w_emb_c.data.copy(),
            w_emb_q=self.w_emb_q.data.copy(),
            w_r=self.w_r.data.copy(),
            w_o=self.w_o.data.copy(),
            t_a=self.t_a.data.copy(),
            t_c=self.t_c.data.copy(),
        )
