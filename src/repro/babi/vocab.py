"""Vocabulary: word <-> index mapping with a reserved padding token."""

from __future__ import annotations

from collections.abc import Iterable

PAD_TOKEN = "<pad>"


class Vocab:
    """Bidirectional word/index mapping.

    Index 0 is always the padding token, whose embedding row stays zero
    so padded bag-of-words sums are unaffected (Eq. 2 of the paper relies
    on summing only the real word columns).
    """

    def __init__(self, words: Iterable[str] = ()):
        self._word_to_index: dict[str, int] = {PAD_TOKEN: 0}
        self._index_to_word: list[str] = [PAD_TOKEN]
        for word in words:
            self.add(word)

    @property
    def pad_index(self) -> int:
        return 0

    def add(self, word: str) -> int:
        word = word.lower()
        if word in self._word_to_index:
            return self._word_to_index[word]
        index = len(self._index_to_word)
        self._word_to_index[word] = index
        self._index_to_word.append(word)
        return index

    def index(self, word: str) -> int:
        try:
            return self._word_to_index[word.lower()]
        except KeyError:
            raise KeyError(f"word {word!r} not in vocabulary") from None

    def word(self, index: int) -> str:
        return self._index_to_word[index]

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._word_to_index

    def __len__(self) -> int:
        return len(self._index_to_word)

    def words(self) -> list[str]:
        return list(self._index_to_word)

    @classmethod
    def from_examples(cls, examples) -> "Vocab":
        """Build a vocabulary covering every token of every example."""
        vocab = cls()
        for example in examples:
            for token in example.all_tokens():
                vocab.add(token)
        return vocab
