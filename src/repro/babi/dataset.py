"""Dataset containers and array encoding for the MANN.

The MANN consumes a story as a (memory_size, sentence_len) matrix of
word indices (bag-of-words per sentence, Eq. 2), a question index
vector, and an integer answer label over the full vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.babi.story import QAExample
from repro.babi.tasks import get_generator
from repro.babi.vocab import Vocab
from repro.utils.rng import new_rng


@dataclass
class EncodedBatch:
    """Padded index arrays for a list of QA examples.

    ``stories``  : (batch, memory_size, sentence_len) int64, pad=0
    ``questions``: (batch, sentence_len) int64, pad=0
    ``answers``  : (batch,) int64 vocabulary indices
    ``story_lengths``: (batch,) number of real (non-pad) sentences
    """

    stories: np.ndarray
    questions: np.ndarray
    answers: np.ndarray
    story_lengths: np.ndarray

    def __len__(self) -> int:
        return len(self.answers)

    def subset(self, indices: np.ndarray) -> "EncodedBatch":
        return EncodedBatch(
            self.stories[indices],
            self.questions[indices],
            self.answers[indices],
            self.story_lengths[indices],
        )


class BabiDataset:
    """A set of QA examples with a shared vocabulary and encoding."""

    def __init__(
        self,
        examples: list[QAExample],
        vocab: Vocab | None = None,
        memory_size: int | None = None,
        sentence_len: int | None = None,
    ):
        if not examples:
            raise ValueError("dataset needs at least one example")
        self.examples = list(examples)
        self.vocab = vocab if vocab is not None else Vocab.from_examples(examples)
        observed_mem = max(len(e.story) for e in examples)
        observed_len = max(
            max(max(len(s) for s in e.story), len(e.question)) for e in examples
        )
        self.memory_size = memory_size if memory_size is not None else observed_mem
        self.sentence_len = sentence_len if sentence_len is not None else observed_len
        if self.memory_size < 1 or self.sentence_len < 1:
            raise ValueError("memory_size and sentence_len must be >= 1")

    def __len__(self) -> int:
        return len(self.examples)

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def encode_example(self, example: QAExample) -> tuple[np.ndarray, np.ndarray, int]:
        """Encode one example to (story, question, answer) index arrays.

        Stories longer than ``memory_size`` keep their most recent
        sentences, matching MemN2N's fixed-size memory.
        """
        story = np.zeros((self.memory_size, self.sentence_len), dtype=np.int64)
        sentences = example.story[-self.memory_size :]
        for row, sentence in enumerate(sentences):
            tokens = sentence.tokens[: self.sentence_len]
            for col, token in enumerate(tokens):
                story[row, col] = self.vocab.index(token)
        question = np.zeros(self.sentence_len, dtype=np.int64)
        for col, token in enumerate(example.question.tokens[: self.sentence_len]):
            question[col] = self.vocab.index(token)
        answer = self.vocab.index(example.answer)
        return story, question, answer

    def encode(self, examples: list[QAExample] | None = None) -> EncodedBatch:
        examples = self.examples if examples is None else examples
        batch = len(examples)
        stories = np.zeros((batch, self.memory_size, self.sentence_len), dtype=np.int64)
        questions = np.zeros((batch, self.sentence_len), dtype=np.int64)
        answers = np.zeros(batch, dtype=np.int64)
        lengths = np.zeros(batch, dtype=np.int64)
        for i, example in enumerate(examples):
            s, q, a = self.encode_example(example)
            stories[i], questions[i], answers[i] = s, q, a
            lengths[i] = min(len(example.story), self.memory_size)
        return EncodedBatch(stories, questions, answers, lengths)

    def split(self, train_fraction: float, seed: int = 0) -> tuple["BabiDataset", "BabiDataset"]:
        """Shuffled train/test split sharing vocab and encoding dims."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = new_rng(seed)
        order = rng.permutation(len(self.examples))
        cut = int(round(train_fraction * len(self.examples)))
        cut = max(1, min(len(self.examples) - 1, cut))
        train = [self.examples[i] for i in order[:cut]]
        test = [self.examples[i] for i in order[cut:]]
        make = lambda ex: BabiDataset(  # noqa: E731 - tiny local factory
            ex, self.vocab, self.memory_size, self.sentence_len
        )
        return make(train), make(test)

    def answer_indices(self) -> np.ndarray:
        return np.array([self.vocab.index(e.answer) for e in self.examples])

    def majority_baseline_accuracy(self) -> float:
        """Accuracy of always answering the most common label."""
        answers = self.answer_indices()
        _, counts = np.unique(answers, return_counts=True)
        return float(counts.max()) / len(answers)


def generate_task_dataset(
    task_id: int,
    n_train: int,
    n_test: int,
    seed: int = 0,
    memory_size: int | None = None,
) -> tuple[BabiDataset, BabiDataset]:
    """Generate train and test datasets for one task with shared vocab."""
    generator = get_generator(task_id)
    rng = new_rng(seed)
    train_examples = generator(rng, n_train)
    test_examples = generator(rng, n_test)
    combined = BabiDataset(
        train_examples + test_examples, memory_size=memory_size
    )
    train = BabiDataset(
        train_examples, combined.vocab, combined.memory_size, combined.sentence_len
    )
    test = BabiDataset(
        test_examples, combined.vocab, combined.memory_size, combined.sentence_len
    )
    return train, test
