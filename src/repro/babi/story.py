"""Story data structures shared by the task generators."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Sentence:
    """One declarative story sentence as a token list (no punctuation)."""

    tokens: tuple[str, ...]

    def __post_init__(self):
        if not self.tokens:
            raise ValueError("a sentence needs at least one token")
        object.__setattr__(self, "tokens", tuple(t.lower() for t in self.tokens))

    @classmethod
    def from_text(cls, text: str) -> "Sentence":
        return cls(tuple(text.replace(".", "").replace("?", "").lower().split()))

    def text(self) -> str:
        return " ".join(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class QAExample:
    """A story, a question about it, and the single-token answer.

    ``answer`` is a single vocabulary token; multi-word bAbI answers
    (tasks 8 and 19) are joined with commas into one token, matching how
    MemN2N treats them as atomic labels.
    ``supporting`` holds indices into ``story`` of the facts that entail
    the answer (used by tests to validate generator correctness).
    """

    task_id: int
    story: list[Sentence]
    question: Sentence
    answer: str
    supporting: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        self.answer = self.answer.lower()
        if not self.story:
            raise ValueError("story must contain at least one sentence")
        for idx in self.supporting:
            if not 0 <= idx < len(self.story):
                raise ValueError(
                    f"supporting index {idx} out of range for story of "
                    f"length {len(self.story)}"
                )

    def all_tokens(self) -> list[str]:
        tokens: list[str] = []
        for sentence in self.story:
            tokens.extend(sentence.tokens)
        tokens.extend(self.question.tokens)
        tokens.append(self.answer)
        return tokens

    def text(self) -> str:
        """Readable rendering used by the examples."""
        lines = [f"{i + 1} {s.text()}." for i, s in enumerate(self.story)]
        lines.append(f"Q: {self.question.text()}?  A: {self.answer}")
        return "\n".join(lines)
