"""Read/write the original bAbI text format.

The published dataset ships as plain-text files:

    1 Mary moved to the bathroom.
    2 John went to the hallway.
    3 Where is Mary? 	bathroom	1

Lines are numbered within a story; a question line carries the answer
and the 1-based supporting-fact line numbers after tabs; numbering
restarting at 1 opens a new story. This module converts between that
format and :class:`~repro.babi.story.QAExample`, so anyone holding the
real dataset can feed it through the identical pipeline (and our
generators can emit files byte-compatible with bAbI tooling).
"""

from __future__ import annotations

from pathlib import Path

from repro.babi.story import QAExample, Sentence


def format_examples(examples: list[QAExample]) -> str:
    """Render examples in the bAbI file format (one story each).

    Multi-token answers (tasks 8/19) keep their comma-joined form,
    matching the original files.
    """
    lines: list[str] = []
    for example in examples:
        number = 1
        line_of_fact: dict[int, int] = {}
        for fact_index, sentence in enumerate(example.story):
            text = sentence.text().capitalize()
            lines.append(f"{number} {text}.")
            line_of_fact[fact_index] = number
            number += 1
        question_text = example.question.text().capitalize()
        supports = " ".join(
            str(line_of_fact[i]) for i in example.supporting
        )
        lines.append(f"{number} {question_text}?\t{example.answer}\t{supports}")
    return "\n".join(lines) + "\n"


def parse_text(text: str, task_id: int = 0) -> list[QAExample]:
    """Parse bAbI-format text into QA examples.

    Every question line yields one example whose story is all statement
    lines seen so far in the current story block (questions are not part
    of the memory, as in MemN2N preprocessing).
    """
    examples: list[QAExample] = []
    story: list[Sentence] = []
    fact_of_line: dict[int, int] = {}

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        space = line.find(" ")
        if space < 0:
            raise ValueError(f"malformed bAbI line (no number): {line!r}")
        try:
            number = int(line[:space])
        except ValueError:
            raise ValueError(f"malformed bAbI line number: {line!r}") from None
        body = line[space + 1 :]
        if number == 1:
            story = []
            fact_of_line = {}

        if "\t" in body:
            question_part, answer, *rest = body.split("\t")
            if not story:
                raise ValueError(f"question before any facts: {line!r}")
            supporting: list[int] = []
            if rest and rest[0].strip():
                for token in rest[0].split():
                    fact_line = int(token)
                    if fact_line not in fact_of_line:
                        raise ValueError(
                            f"supporting line {fact_line} not found: {line!r}"
                        )
                    supporting.append(fact_of_line[fact_line])
            examples.append(
                QAExample(
                    task_id=task_id,
                    story=list(story),
                    question=Sentence.from_text(question_part),
                    answer=answer.strip(),
                    supporting=tuple(supporting),
                )
            )
        else:
            fact_of_line[number] = len(story)
            story.append(Sentence.from_text(body))
    return examples


def write_babi_file(path: str | Path, examples: list[QAExample]) -> None:
    Path(path).write_text(format_examples(examples))


def read_babi_file(path: str | Path, task_id: int = 0) -> list[QAExample]:
    return parse_text(Path(path).read_text(), task_id=task_id)
