"""Registry of the 20 bAbI task generators.

Each generator is a callable ``generate(rng, n_examples) -> list[QAExample]``
implementing the semantics of one bAbI task type. Use
:func:`get_generator` to look one up by its 1-based task id.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.babi.story import QAExample
from repro.babi.tasks import (
    basic,
    counting,
    deduction,
    motivation,
    pathfinding,
    position,
    relations,
    temporal,
    yesno,
)

TaskGenerator = Callable[[np.random.Generator, int], list[QAExample]]

TASK_NAMES: dict[int, str] = {
    1: "single supporting fact",
    2: "two supporting facts",
    3: "three supporting facts",
    4: "two argument relations",
    5: "three argument relations",
    6: "yes/no questions",
    7: "counting",
    8: "lists/sets",
    9: "simple negation",
    10: "indefinite knowledge",
    11: "basic coreference",
    12: "conjunction",
    13: "compound coreference",
    14: "time reasoning",
    15: "basic deduction",
    16: "basic induction",
    17: "positional reasoning",
    18: "size reasoning",
    19: "path finding",
    20: "agent's motivation",
}

_GENERATORS: dict[int, TaskGenerator] = {
    1: basic.generate_task1,
    2: basic.generate_task2,
    3: basic.generate_task3,
    4: relations.generate_task4,
    5: relations.generate_task5,
    6: yesno.generate_task6,
    7: counting.generate_task7,
    8: counting.generate_task8,
    9: yesno.generate_task9,
    10: yesno.generate_task10,
    11: basic.generate_task11,
    12: basic.generate_task12,
    13: basic.generate_task13,
    14: temporal.generate_task14,
    15: deduction.generate_task15,
    16: deduction.generate_task16,
    17: position.generate_task17,
    18: position.generate_task18,
    19: pathfinding.generate_task19,
    20: motivation.generate_task20,
}


def all_task_ids() -> list[int]:
    """The 1-based ids of every implemented task, in order."""
    return sorted(_GENERATORS)


def get_generator(task_id: int) -> TaskGenerator:
    """Return the generator for a 1-based bAbI task id."""
    try:
        return _GENERATORS[task_id]
    except KeyError:
        raise KeyError(
            f"unknown bAbI task id {task_id}; valid ids are 1..20"
        ) from None
