"""Tasks 6, 9, 10: yes/no questions, negation, indefinite knowledge."""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import (
    MOVE_VERBS,
    WorldConfig,
    WorldState,
    choose,
    choose_distinct,
)


def generate_task6(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    n_facts: tuple[int, int] = (3, 8),
) -> list[QAExample]:
    """Task 6: yes/no questions ("is mary in the kitchen?")."""
    actors = config.actors()
    locations = config.locations()
    examples = []
    for _ in range(n_examples):
        state = WorldState()
        story: list[Sentence] = []
        n = int(rng.integers(n_facts[0], n_facts[1] + 1))
        for i in range(n):
            actor = choose(rng, actors)
            location = choose(rng, locations)
            verb = choose(rng, MOVE_VERBS)
            story.append(Sentence.from_text(f"{actor} {verb} the {location}"))
            state.move(actor, location, i)
        asked = choose(rng, list(state.actor_location))
        actual = state.actor_location[asked]
        if rng.random() < 0.5:
            queried = actual
            answer = "yes"
        else:
            queried = choose(rng, [loc for loc in locations if loc != actual])
            answer = "no"
        question = Sentence.from_text(f"is {asked} in the {queried}")
        supporting = (state.actor_location_fact[asked],)
        examples.append(QAExample(6, story, question, answer, supporting))
    return examples


def generate_task9(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    n_facts: tuple[int, int] = (3, 7),
) -> list[QAExample]:
    """Task 9: simple negation ("mary is no longer in the kitchen")."""
    actors = config.actors()
    locations = config.locations()
    examples = []
    for _ in range(n_examples):
        story: list[Sentence] = []
        # location knowledge: actor -> (location, polarity, fact index)
        knowledge: dict[str, tuple[str, bool, int]] = {}
        n = int(rng.integers(n_facts[0], n_facts[1] + 1))
        for i in range(n):
            actor = choose(rng, actors)
            location = choose(rng, locations)
            if rng.random() < 0.3:
                story.append(
                    Sentence.from_text(f"{actor} is no longer in the {location}")
                )
                knowledge[actor] = (location, False, i)
            else:
                story.append(Sentence.from_text(f"{actor} is in the {location}"))
                knowledge[actor] = (location, True, i)
        asked = choose(rng, list(knowledge))
        location, polarity, fact_index = knowledge[asked]
        if rng.random() < 0.5:
            # Ask about the mentioned location: yes if positive, no if negated.
            question = Sentence.from_text(f"is {asked} in the {location}")
            answer = "yes" if polarity else "no"
        else:
            other = choose(rng, [loc for loc in locations if loc != location])
            question = Sentence.from_text(f"is {asked} in the {other}")
            # Positive knowledge of being elsewhere implies "no";
            # negated knowledge says nothing about other -> "maybe".
            answer = "no" if polarity else "maybe"
        examples.append(QAExample(9, story, question, answer, (fact_index,)))
    return examples


def generate_task10(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    n_facts: tuple[int, int] = (3, 7),
) -> list[QAExample]:
    """Task 10: indefinite knowledge ("bill is either in the school or the park")."""
    actors = config.actors()
    locations = config.locations()
    examples = []
    for _ in range(n_examples):
        story: list[Sentence] = []
        # actor -> ("definite", loc, idx) or ("either", (a, b), idx)
        knowledge: dict[str, tuple] = {}
        n = int(rng.integers(n_facts[0], n_facts[1] + 1))
        for i in range(n):
            actor = choose(rng, actors)
            if rng.random() < 0.4:
                a, b = choose_distinct(rng, locations, 2)
                story.append(
                    Sentence.from_text(f"{actor} is either in the {a} or the {b}")
                )
                knowledge[actor] = ("either", (a, b), i)
            else:
                location = choose(rng, locations)
                story.append(Sentence.from_text(f"{actor} is in the {location}"))
                knowledge[actor] = ("definite", location, i)
        asked = choose(rng, list(knowledge))
        kind, info, fact_index = knowledge[asked]
        queried = choose(rng, locations)
        question = Sentence.from_text(f"is {asked} in the {queried}")
        if kind == "definite":
            answer = "yes" if queried == info else "no"
        else:
            answer = "maybe" if queried in info else "no"
        examples.append(QAExample(10, story, question, answer, (fact_index,)))
    return examples
