"""Task 14: time reasoning."""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import WorldConfig, choose

# Ordered earliest -> latest; questions ask "where was X before the Y visit".
TIME_SLOTS = (
    "yesterday morning",
    "yesterday afternoon",
    "yesterday evening",
    "this morning",
    "this afternoon",
    "this evening",
)


def generate_task14(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    n_slots: tuple[int, int] = (3, 5),
) -> list[QAExample]:
    """Task 14: time reasoning.

    An actor visits distinct locations at labelled times which are
    narrated in shuffled order; the question asks where the actor was
    immediately before a given visit, so the model must reconstruct the
    timeline rather than rely on narration order.
    """
    actors = config.actors()
    locations = config.locations()
    examples = []
    for _ in range(n_examples):
        actor = choose(rng, actors)
        k = int(rng.integers(n_slots[0], n_slots[1] + 1))
        slot_ids = sorted(
            rng.choice(len(TIME_SLOTS), size=k, replace=False).tolist()
        )
        visit_locations: list[str] = []
        for _slot in slot_ids:
            pool = [
                loc for loc in locations
                if not visit_locations or loc != visit_locations[-1]
            ]
            visit_locations.append(choose(rng, pool))

        order = rng.permutation(k)
        story: list[Sentence] = []
        fact_of_visit: dict[int, int] = {}
        for narration_pos, visit in enumerate(order.tolist()):
            slot = TIME_SLOTS[slot_ids[visit]]
            loc = visit_locations[visit]
            story.append(
                Sentence.from_text(f"{slot} {actor} went to the {loc}")
            )
            fact_of_visit[visit] = narration_pos
        # Ask about a visit that has a predecessor in time.
        target = int(rng.integers(1, k))
        question = Sentence.from_text(
            f"where was {actor} before the {visit_locations[target]}"
        )
        answer = visit_locations[target - 1]
        supporting = tuple(
            sorted({fact_of_visit[target], fact_of_visit[target - 1]})
        )
        examples.append(QAExample(14, story, question, answer, supporting))
    return examples
