"""Tasks 17 and 18: positional and size reasoning (yes/no answers)."""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import CONTAINERS, DIRECTION_DELTA, SHAPES, choose, choose_distinct

_POSITION_PHRASES = {
    "north": "above",
    "south": "below",
    "east": "to the right of",
    "west": "to the left of",
}


def generate_task17(
    rng: np.random.Generator,
    n_examples: int,
    n_shapes: int = 3,
) -> list[QAExample]:
    """Task 17: positional reasoning on a 2-D grid.

    Shapes are placed relative to each other; the question asks whether
    one shape stands in a given relation to another, which requires
    composing the placements.
    """
    examples = []
    for _ in range(n_examples):
        shapes = choose_distinct(rng, SHAPES, n_shapes)
        # Chain placements: shape[i+1] relative to shape[i].
        coords: dict[str, tuple[int, int]] = {shapes[0]: (0, 0)}
        story: list[Sentence] = []
        for i in range(1, n_shapes):
            anchor = shapes[i - 1]
            direction = choose(rng, list(_POSITION_PHRASES))
            dx, dy = DIRECTION_DELTA[direction]
            ax, ay = coords[anchor]
            coords[shapes[i]] = (ax + dx, ay + dy)
            story.append(
                Sentence.from_text(
                    f"the {shapes[i]} is {_POSITION_PHRASES[direction]} the {anchor}"
                )
            )
        a, b = choose_distinct(rng, shapes, 2)
        direction = choose(rng, list(_POSITION_PHRASES))
        dx, dy = DIRECTION_DELTA[direction]
        ax, ay = coords[a]
        bx, by = coords[b]
        # Relation holds when a is strictly displaced from b along the axis.
        if dx:
            holds = (ax - bx) * dx > 0
        else:
            holds = (ay - by) * dy > 0
        question = Sentence.from_text(
            f"is the {a} {_POSITION_PHRASES[direction]} the {b}"
        )
        answer = "yes" if holds else "no"
        supporting = tuple(range(len(story)))
        examples.append(QAExample(17, story, question, answer, supporting))
    return examples


def generate_task18(
    rng: np.random.Generator,
    n_examples: int,
    n_items: int = 4,
) -> list[QAExample]:
    """Task 18: size reasoning via transitive "fits inside" facts."""
    examples = []
    for _ in range(n_examples):
        items = choose_distinct(rng, CONTAINERS, n_items)
        # items[0] < items[1] < ... in size; narrate adjacent facts shuffled.
        sentences = [
            Sentence.from_text(f"the {items[i]} fits inside the {items[i + 1]}")
            for i in range(n_items - 1)
        ]
        order = rng.permutation(len(sentences)).tolist()
        story = [sentences[i] for i in order]
        a_idx, b_idx = sorted(
            rng.choice(n_items, size=2, replace=False).tolist()
        )
        a, b = items[a_idx], items[b_idx]  # a is smaller than b
        if rng.random() < 0.5:
            question = Sentence.from_text(f"does the {a} fit inside the {b}")
            answer = "yes"
        else:
            question = Sentence.from_text(f"does the {b} fit inside the {a}")
            answer = "no"
        chain = set(range(min(a_idx, b_idx), max(a_idx, b_idx)))
        supporting = tuple(
            sorted(pos for pos, original in enumerate(order) if original in chain)
        )
        examples.append(QAExample(18, story, question, answer, supporting))
    return examples
