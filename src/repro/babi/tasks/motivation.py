"""Task 20: agent's motivation."""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import MOTIVE_TARGET, MOTIVES, WorldConfig, choose

_MOTIVE_OBJECT = {
    "hungry": "apple",
    "thirsty": "milk",
    "tired": "pajamas",
    "bored": "football",
}


def generate_task20(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
) -> list[QAExample]:
    """Task 20: agent's motivation.

    Stories: "john is hungry. john went to the kitchen. john grabbed the
    apple." Questions: "why did john go to the kitchen" -> hungry;
    "where will john go" -> kitchen (asked before the move is narrated).
    """
    actors = config.actors()
    examples = []
    for _ in range(n_examples):
        actor = choose(rng, actors)
        motive = choose(rng, MOTIVES)
        target = MOTIVE_TARGET[motive]
        obj = _MOTIVE_OBJECT[motive]

        # Optionally narrate an unrelated actor first (distractor).
        story: list[Sentence] = []
        if rng.random() < 0.5:
            other = choose(rng, [a for a in actors if a != actor])
            other_motive = choose(rng, MOTIVES)
            story.append(Sentence.from_text(f"{other} is {other_motive}"))
        motive_idx = len(story)
        story.append(Sentence.from_text(f"{actor} is {motive}"))

        style = rng.random()
        if style < 0.4:
            # Predictive question: where will the actor go?
            question = Sentence.from_text(f"where will {actor} go")
            answer = target
            supporting = (motive_idx,)
        else:
            move_idx = len(story)
            story.append(Sentence.from_text(f"{actor} went to the {target}"))
            if rng.random() < 0.5:
                story.append(Sentence.from_text(f"{actor} grabbed the {obj}"))
            if style < 0.7:
                question = Sentence.from_text(
                    f"why did {actor} go to the {target}"
                )
                answer = motive
                supporting = (motive_idx,)
            else:
                question = Sentence.from_text(f"where is {actor}")
                answer = target
                supporting = (move_idx,)
        examples.append(QAExample(20, story, question, answer, supporting))
    return examples
