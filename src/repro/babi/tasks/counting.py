"""Tasks 7 and 8: counting and lists/sets."""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import (
    DROP_VERBS,
    GRAB_VERBS,
    MOVE_VERBS,
    WorldConfig,
    WorldState,
    choose,
)

NUMBER_WORDS = ("none", "one", "two", "three", "four", "five")


def _simulate_carrying(
    rng: np.random.Generator,
    actors,
    locations,
    objects,
    n_facts: int,
) -> tuple[list[Sentence], WorldState, dict[str, list[int]]]:
    """Random walk of moves/grabs/drops shared by tasks 7 and 8.

    Also returns, per actor, the indices of the facts in which that
    actor's carried-object set changed (grabs and drops) — the
    supporting evidence for "what/how many is X carrying" questions.
    """
    state = WorldState()
    story: list[Sentence] = []
    carry_facts: dict[str, list[int]] = {actor: [] for actor in actors}
    for i in range(n_facts):
        actor = choose(rng, actors)
        carried = state.carried_by(actor)
        free = [o for o in objects if state.carrier_of(o) is None]
        roll = rng.random()
        if actor not in state.actor_location or roll < 0.35:
            location = choose(rng, locations)
            verb = choose(rng, MOVE_VERBS)
            story.append(Sentence.from_text(f"{actor} {verb} the {location}"))
            state.move(actor, location, i)
        elif carried and roll < 0.55:
            obj = choose(rng, carried)
            verb = choose(rng, DROP_VERBS)
            story.append(Sentence.from_text(f"{actor} {verb} the {obj}"))
            state.drop(actor, obj, i)
            carry_facts[actor].append(i)
        elif free:
            obj = choose(rng, free)
            verb = choose(rng, GRAB_VERBS)
            story.append(Sentence.from_text(f"{actor} {verb} the {obj}"))
            state.grab(actor, obj, i)
            carry_facts[actor].append(i)
        else:
            location = choose(rng, locations)
            verb = choose(rng, MOVE_VERBS)
            story.append(Sentence.from_text(f"{actor} {verb} the {location}"))
            state.move(actor, location, i)
    return story, state, carry_facts


def generate_task7(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(n_objects=4),
    n_facts: tuple[int, int] = (5, 10),
) -> list[QAExample]:
    """Task 7: counting ("how many objects is mary carrying?")."""
    actors = config.actors()
    locations = config.locations()
    objects = config.objects()
    examples = []
    for _ in range(n_examples):
        n = int(rng.integers(n_facts[0], n_facts[1] + 1))
        story, state, carry_facts = _simulate_carrying(
            rng, actors, locations, objects, n
        )
        asked = choose(rng, actors)
        count = len(state.carried_by(asked))
        answer = NUMBER_WORDS[count] if count < len(NUMBER_WORDS) else str(count)
        question = Sentence.from_text(f"how many objects is {asked} carrying")
        supporting = tuple(carry_facts[asked]) or (len(story) - 1,)
        examples.append(QAExample(7, story, question, answer, supporting))
    return examples


def generate_task8(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(n_objects=4),
    n_facts: tuple[int, int] = (5, 10),
) -> list[QAExample]:
    """Task 8: lists/sets ("what is mary carrying?").

    Multi-object answers are joined with commas into one label token in
    sorted order (the MemN2N convention for multi-word answers).
    """
    actors = config.actors()
    locations = config.locations()
    objects = config.objects()
    examples = []
    for _ in range(n_examples):
        n = int(rng.integers(n_facts[0], n_facts[1] + 1))
        story, state, carry_facts = _simulate_carrying(
            rng, actors, locations, objects, n
        )
        asked = choose(rng, actors)
        carried = sorted(state.carried_by(asked))
        answer = ",".join(carried) if carried else "nothing"
        question = Sentence.from_text(f"what is {asked} carrying")
        supporting = tuple(carry_facts[asked]) or (len(story) - 1,)
        examples.append(QAExample(8, story, question, answer, supporting))
    return examples
