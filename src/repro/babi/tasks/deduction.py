"""Tasks 15 and 16: basic deduction and basic induction."""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import (
    ANIMAL_NAMES,
    ANIMAL_PLURALS,
    ANIMALS,
    COLORS,
    choose,
    choose_distinct,
)


def generate_task15(
    rng: np.random.Generator,
    n_examples: int,
    n_species: int = 4,
) -> list[QAExample]:
    """Task 15: basic deduction.

    Rules "mice are afraid of wolves" plus facts "gertrude is a mouse"
    entail "what is gertrude afraid of? -> wolf".
    """
    examples = []
    for _ in range(n_examples):
        species = choose_distinct(rng, ANIMALS, n_species)
        # Each species fears another listed species (derangement-ish).
        fears: dict[str, str] = {}
        for i, s in enumerate(species):
            others = [x for x in species if x != s]
            fears[s] = choose(rng, others)
        names = choose_distinct(rng, ANIMAL_NAMES, n_species)
        identity = dict(zip(names, species))

        rule_sentences = []
        for s in species:
            rule_sentences.append(
                Sentence.from_text(
                    f"{ANIMAL_PLURALS[s]} are afraid of {ANIMAL_PLURALS[fears[s]]}"
                )
            )
        fact_sentences = [
            Sentence.from_text(f"{name} is a {identity[name]}") for name in names
        ]
        sentences = rule_sentences + fact_sentences
        order = rng.permutation(len(sentences)).tolist()
        story = [sentences[i] for i in order]
        position = {id(sentences[i]): pos for pos, i in enumerate(order)}

        asked = choose(rng, names)
        asked_species = identity[asked]
        answer = fears[asked_species]
        question = Sentence.from_text(f"what is {asked} afraid of")
        rule_idx = position[id(rule_sentences[species.index(asked_species)])]
        fact_idx = position[id(fact_sentences[names.index(asked)])]
        supporting = tuple(sorted({rule_idx, fact_idx}))
        examples.append(QAExample(15, story, question, answer, supporting))
    return examples


def generate_task16(
    rng: np.random.Generator,
    n_examples: int,
    n_individuals: int = 4,
) -> list[QAExample]:
    """Task 16: basic induction.

    "lily is a swan. lily is white. bernhard is a swan." entails
    "what color is bernhard? -> white".
    """
    examples = []
    for _ in range(n_examples):
        species = choose_distinct(rng, ANIMALS, 3)
        species_color = dict(zip(species, choose_distinct(rng, COLORS, 3)))
        names = choose_distinct(rng, ANIMAL_NAMES, n_individuals)
        identity = {name: choose(rng, species) for name in names}
        # Ensure the queried individual shares a species with a coloured one.
        target = names[-1]
        reference = names[0]
        identity[target] = identity[reference]

        sentences: list[Sentence] = []
        color_fact_of: dict[str, int] = {}
        species_fact_of: dict[str, int] = {}
        for name in names:
            sentences.append(Sentence.from_text(f"{name} is a {identity[name]}"))
            species_fact_of[name] = len(sentences) - 1
            if name != target:
                sentences.append(
                    Sentence.from_text(
                        f"{name} is {species_color[identity[name]]}"
                    )
                )
                color_fact_of[name] = len(sentences) - 1

        question = Sentence.from_text(f"what color is {target}")
        answer = species_color[identity[target]]
        supporting = tuple(
            sorted(
                {
                    species_fact_of[target],
                    species_fact_of[reference],
                    color_fact_of[reference],
                }
            )
        )
        examples.append(QAExample(16, list(sentences), question, answer, supporting))
    return examples
