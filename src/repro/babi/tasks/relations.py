"""Tasks 4 and 5: two- and three-argument relations."""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import (
    DIRECTIONS,
    OPPOSITE_DIRECTION,
    WorldConfig,
    WorldState,
    choose,
    choose_distinct,
)


def generate_task4(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(n_locations=6),
    n_facts: tuple[int, int] = (2, 4),
) -> list[QAExample]:
    """Task 4: two-argument relations.

    Facts like "the kitchen is north of the garden"; questions ask either
    "what is north of the garden" or "what is the kitchen north of".
    """
    locations = config.locations()
    examples = []
    for _ in range(n_examples):
        story: list[Sentence] = []
        facts: list[tuple[str, str, str]] = []  # (a, direction, b)
        n = int(rng.integers(n_facts[0], n_facts[1] + 1))
        used_pairs: set[tuple[str, str]] = set()
        while len(facts) < n:
            a, b = choose_distinct(rng, locations, 2)
            if (a, b) in used_pairs or (b, a) in used_pairs:
                continue
            used_pairs.add((a, b))
            direction = choose(rng, DIRECTIONS)
            story.append(Sentence.from_text(f"the {a} is {direction} of the {b}"))
            facts.append((a, direction, b))
        a, direction, b = facts[int(rng.integers(len(facts)))]
        fact_index = next(
            i for i, (fa, fd, fb) in enumerate(facts) if (fa, fd, fb) == (a, direction, b)
        )
        if rng.random() < 0.5:
            question = Sentence.from_text(f"what is {direction} of the {b}")
            answer = a
        else:
            # "the A is north of the B"  =>  "what is the B south of?" -> A
            question = Sentence.from_text(
                f"what is the {b} {OPPOSITE_DIRECTION[direction]} of"
            )
            answer = a
        examples.append(QAExample(4, story, question, answer, (fact_index,)))
    return examples


def generate_task5(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    n_facts: tuple[int, int] = (3, 8),
) -> list[QAExample]:
    """Task 5: three-argument relations ("mary gave the apple to john").

    Questions: who gave X to Y / what did A give to Y / who received X.
    """
    actors = config.actors()
    objects = config.objects()
    examples = []
    for _ in range(n_examples):
        state = WorldState()
        story: list[Sentence] = []
        gives: list[tuple[str, str, str, int]] = []  # giver, obj, receiver, idx
        # Seed ownership so gives are well defined.
        owners: dict[str, str] = {}
        for obj in objects:
            owner = choose(rng, actors)
            owners[obj] = owner
            story.append(Sentence.from_text(f"{owner} picked up the {obj}"))
            state.grab(owner, obj, len(story) - 1)
        n = int(rng.integers(n_facts[0], n_facts[1] + 1))
        for _ in range(n):
            obj = choose(rng, objects)
            giver = owners[obj]
            receiver = choose(rng, [a for a in actors if a != giver])
            story.append(
                Sentence.from_text(f"{giver} gave the {obj} to {receiver}")
            )
            state.give(giver, receiver, obj, len(story) - 1)
            owners[obj] = receiver
            gives.append((giver, obj, receiver, len(story) - 1))
        giver, obj, receiver, fact_index = gives[int(rng.integers(len(gives)))]
        # Only the final transfer of an object is unambiguous for
        # "who gave X" style questions; restrict to the last give of obj.
        giver, obj, receiver, fact_index = next(
            g for g in reversed(gives) if g[1] == obj
        )
        style = rng.random()
        if style < 1 / 3:
            question = Sentence.from_text(f"who gave the {obj} to {receiver}")
            answer = giver
        elif style < 2 / 3:
            question = Sentence.from_text(f"what did {giver} give to {receiver}")
            answer = obj
        else:
            question = Sentence.from_text(f"who did {giver} give the {obj} to")
            answer = receiver
        examples.append(QAExample(5, story, question, answer, (fact_index,)))
    return examples
