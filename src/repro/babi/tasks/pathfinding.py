"""Task 19: path finding between locations on a grid."""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import (
    DIRECTION_DELTA,
    DIRECTION_LETTER,
    LOCATIONS,
    choose,
    choose_distinct,
)


def _layout_locations(
    rng: np.random.Generator, names: list[str]
) -> dict[str, tuple[int, int]]:
    """Place locations on a grid by a self-avoiding random walk."""
    coords: dict[str, tuple[int, int]] = {names[0]: (0, 0)}
    occupied = {(0, 0)}
    for name in names[1:]:
        anchor = choose(rng, list(coords))
        placed = False
        for direction in rng.permutation(list(DIRECTION_DELTA)).tolist():
            dx, dy = DIRECTION_DELTA[direction]
            ax, ay = coords[anchor]
            candidate = (ax + dx, ay + dy)
            if candidate not in occupied:
                coords[name] = candidate
                occupied.add(candidate)
                placed = True
                break
        if not placed:
            # Extremely unlikely with <= 6 locations; restart the layout.
            return _layout_locations(rng, names)
    return coords


def _adjacency_facts(
    rng: np.random.Generator, coords: dict[str, tuple[int, int]]
) -> list[tuple[str, str, str]]:
    """All (a, direction, b) adjacencies, each narrated once."""
    facts = []
    names = list(coords)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            ax, ay = coords[a]
            bx, by = coords[b]
            for direction, (dx, dy) in DIRECTION_DELTA.items():
                if (ax - bx, ay - by) == (dx, dy):
                    facts.append((a, direction, b))
    order = rng.permutation(len(facts)).tolist()
    return [facts[i] for i in order]


def _shortest_path(
    coords: dict[str, tuple[int, int]],
    start: str,
    goal: str,
    max_len: int = 2,
) -> list[str] | None:
    """BFS over grid-adjacent locations; returns direction names."""
    from collections import deque

    position_to_name = {pos: name for name, pos in coords.items()}
    queue = deque([(coords[start], [])])
    seen = {coords[start]}
    while queue:
        pos, path = queue.popleft()
        if position_to_name.get(pos) == goal:
            return path
        if len(path) >= max_len:
            continue
        for direction, (dx, dy) in DIRECTION_DELTA.items():
            nxt = (pos[0] + dx, pos[1] + dy)
            if nxt in seen or nxt not in position_to_name:
                continue
            seen.add(nxt)
            queue.append((nxt, path + [direction]))
    return None


def generate_task19(
    rng: np.random.Generator,
    n_examples: int,
    n_locations: int = 5,
    path_length: int = 2,
) -> list[QAExample]:
    """Task 19: path finding.

    The answer is the two-step direction sequence as a single token,
    e.g. "n,w" — matching the original task's compound answers.
    """
    examples = []
    attempts = 0
    while len(examples) < n_examples:
        attempts += 1
        if attempts > n_examples * 200:
            raise RuntimeError("task 19 generation failed to converge")
        names = choose_distinct(rng, LOCATIONS, n_locations)
        coords = _layout_locations(rng, names)
        start, goal = choose_distinct(rng, names, 2)
        path = _shortest_path(coords, start, goal, max_len=path_length)
        if path is None or len(path) != path_length:
            continue
        facts = _adjacency_facts(rng, coords)
        story = [
            Sentence.from_text(f"the {a} is {direction} of the {b}")
            for a, direction, b in facts
        ]
        question = Sentence.from_text(f"how do you go from the {start} to the {goal}")
        answer = ",".join(DIRECTION_LETTER[d] for d in path)
        supporting = tuple(range(len(story)))
        examples.append(QAExample(19, story, question, answer, supporting))
    return examples
