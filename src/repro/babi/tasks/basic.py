"""Tasks 1-3 (supporting facts) and 11-13 (coreference, conjunction).

These are the actor/location/object tasks driven by the shared
:class:`~repro.babi.world.WorldState` simulation.
"""

from __future__ import annotations

import numpy as np

from repro.babi.story import QAExample, Sentence
from repro.babi.world import (
    GRAB_VERBS,
    MOVE_VERBS,
    WorldConfig,
    WorldState,
    choose,
    choose_distinct,
)


def _move_sentence(rng: np.random.Generator, actor: str, location: str) -> Sentence:
    verb = choose(rng, MOVE_VERBS)
    return Sentence.from_text(f"{actor} {verb} the {location}")


def _grab_sentence(rng: np.random.Generator, actor: str, obj: str) -> Sentence:
    verb = choose(rng, GRAB_VERBS)
    return Sentence.from_text(f"{actor} {verb} the {obj}")


def generate_task1(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    story_length: tuple[int, int] = (2, 8),
) -> list[QAExample]:
    """Task 1: single supporting fact.

    Actors wander; the question asks for the current location of an
    actor who has moved at least once.
    """
    actors = config.actors()
    locations = config.locations()
    examples = []
    for _ in range(n_examples):
        state = WorldState()
        story: list[Sentence] = []
        n_facts = int(rng.integers(story_length[0], story_length[1] + 1))
        for i in range(n_facts):
            actor = choose(rng, actors)
            location = choose(rng, locations)
            story.append(_move_sentence(rng, actor, location))
            state.move(actor, location, i)
        asked = choose(rng, list(state.actor_location))
        question = Sentence.from_text(f"where is {asked}")
        answer = state.actor_location[asked]
        supporting = (state.actor_location_fact[asked],)
        examples.append(QAExample(1, story, question, answer, supporting))
    return examples


def generate_task2(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    story_length: tuple[int, int] = (4, 10),
) -> list[QAExample]:
    """Task 2: two supporting facts.

    "Where is the football?" needs the grab fact and the carrier's most
    recent move fact.
    """
    actors = config.actors()
    locations = config.locations()
    objects = config.objects()
    examples = []
    while len(examples) < n_examples:
        state = WorldState()
        story: list[Sentence] = []
        n_facts = int(rng.integers(story_length[0], story_length[1] + 1))
        for i in range(n_facts):
            actor = choose(rng, actors)
            if rng.random() < 0.55 or actor not in state.actor_location:
                location = choose(rng, locations)
                story.append(_move_sentence(rng, actor, location))
                state.move(actor, location, i)
            else:
                free = [o for o in objects if state.carrier_of(o) is None]
                if not free:
                    location = choose(rng, locations)
                    story.append(_move_sentence(rng, actor, location))
                    state.move(actor, location, i)
                    continue
                obj = choose(rng, free)
                story.append(_grab_sentence(rng, actor, obj))
                state.grab(actor, obj, i)
        # Need an object whose carrier has a known location.
        candidates = [
            obj
            for obj in objects
            if state.carrier_of(obj) is not None
            and state.carrier_of(obj) in state.actor_location
        ]
        if not candidates:
            continue
        obj = choose(rng, candidates)
        carrier = state.carrier_of(obj)
        question = Sentence.from_text(f"where is the {obj}")
        answer = state.actor_location[carrier]
        supporting = (
            state.holding_fact[(carrier, obj)],
            state.actor_location_fact[carrier],
        )
        examples.append(QAExample(2, story, question, answer, supporting))
    return examples


def generate_task3(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    story_length: tuple[int, int] = (8, 14),
) -> list[QAExample]:
    """Task 3: three supporting facts.

    "Where was the football before the kitchen?" requires the grab fact
    and two consecutive carrier moves.
    """
    actors = config.actors()
    locations = config.locations()
    objects = config.objects()
    examples = []
    while len(examples) < n_examples:
        state = WorldState()
        story: list[Sentence] = []
        n_facts = int(rng.integers(story_length[0], story_length[1] + 1))
        for _ in range(n_facts):
            actor = choose(rng, actors)
            carried = state.carried_by(actor)
            free = [o for o in objects if state.carrier_of(o) is None]
            wants_grab = (
                not carried
                and free
                and actor in state.actor_location
                and rng.random() < 0.5
            )
            if wants_grab:
                obj = choose(rng, free)
                story.append(_grab_sentence(rng, actor, obj))
                state.grab(actor, obj, len(story) - 1)
            else:
                location = choose(rng, locations)
                story.append(_move_sentence(rng, actor, location))
                state.move(actor, location, len(story) - 1)
        # Need an object that has visited >= 2 distinct locations.
        candidates = [
            obj
            for obj, history in state.object_location_history.items()
            if len(history) >= 2
        ]
        if not candidates:
            continue
        obj = choose(rng, candidates)
        history = state.object_location_history[obj]
        current_loc, current_fact = history[-1]
        previous_loc, previous_fact = history[-2]
        carrier = state.carrier_of(obj)
        grab_fact = state.holding_fact.get((carrier, obj)) if carrier else None
        question = Sentence.from_text(f"where was the {obj} before the {current_loc}")
        supporting = tuple(
            sorted(
                {previous_fact, current_fact}
                | ({grab_fact} if grab_fact is not None else set())
            )
        )
        examples.append(QAExample(3, story, question, previous_loc, supporting))
    return examples


def generate_task11(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    n_rounds: tuple[int, int] = (2, 5),
) -> list[QAExample]:
    """Task 11: basic coreference ("after that she went to ...")."""
    actors = config.actors()
    locations = config.locations()
    pronoun = {
        "mary": "she", "sandra": "she", "julie": "she",
        "john": "he", "daniel": "he", "fred": "he", "bill": "he", "jeff": "he",
    }
    examples = []
    for _ in range(n_examples):
        state = WorldState()
        story: list[Sentence] = []
        last_actor = None
        n = int(rng.integers(n_rounds[0], n_rounds[1] + 1))
        for _ in range(n):
            actor = choose(rng, actors)
            location = choose(rng, locations)
            story.append(_move_sentence(rng, actor, location))
            state.move(actor, location, len(story) - 1)
            if rng.random() < 0.6:
                follow = choose(rng, locations)
                who = pronoun.get(actor, "they")
                story.append(
                    Sentence.from_text(f"after that {who} went to the {follow}")
                )
                state.move(actor, follow, len(story) - 1)
            last_actor = actor
        asked = last_actor if rng.random() < 0.7 else choose(rng, list(state.actor_location))
        question = Sentence.from_text(f"where is {asked}")
        answer = state.actor_location[asked]
        supporting = (state.actor_location_fact[asked],)
        examples.append(QAExample(11, story, question, answer, supporting))
    return examples


def generate_task12(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    n_facts: tuple[int, int] = (2, 6),
) -> list[QAExample]:
    """Task 12: conjunction ("mary and john went to the kitchen")."""
    actors = config.actors()
    locations = config.locations()
    examples = []
    for _ in range(n_examples):
        state = WorldState()
        story: list[Sentence] = []
        n = int(rng.integers(n_facts[0], n_facts[1] + 1))
        for i in range(n):
            a, b = choose_distinct(rng, actors, 2)
            location = choose(rng, locations)
            story.append(Sentence.from_text(f"{a} and {b} went to the {location}"))
            state.move(a, location, i)
            state.move(b, location, i)
        asked = choose(rng, list(state.actor_location))
        question = Sentence.from_text(f"where is {asked}")
        answer = state.actor_location[asked]
        supporting = (state.actor_location_fact[asked],)
        examples.append(QAExample(12, story, question, answer, supporting))
    return examples


def generate_task13(
    rng: np.random.Generator,
    n_examples: int,
    config: WorldConfig = WorldConfig(),
    n_rounds: tuple[int, int] = (2, 4),
) -> list[QAExample]:
    """Task 13: compound coreference ("afterwards they moved to ...")."""
    actors = config.actors()
    locations = config.locations()
    examples = []
    for _ in range(n_examples):
        state = WorldState()
        story: list[Sentence] = []
        group: list[str] = []
        n = int(rng.integers(n_rounds[0], n_rounds[1] + 1))
        for _ in range(n):
            a, b = choose_distinct(rng, actors, 2)
            group = [a, b]
            location = choose(rng, locations)
            story.append(Sentence.from_text(f"{a} and {b} went to the {location}"))
            for member in group:
                state.move(member, location, len(story) - 1)
            if rng.random() < 0.6:
                follow = choose(rng, locations)
                story.append(
                    Sentence.from_text(f"afterwards they moved to the {follow}")
                )
                for member in group:
                    state.move(member, follow, len(story) - 1)
        asked = choose(rng, group)
        question = Sentence.from_text(f"where is {asked}")
        answer = state.actor_location[asked]
        supporting = (state.actor_location_fact[asked],)
        examples.append(QAExample(13, story, question, answer, supporting))
    return examples
