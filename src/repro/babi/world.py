"""Story-world vocabulary pools and state tracking.

The generators share a small world: named actors who move between
locations, carry objects and hand them to each other. ``WorldState``
tracks where everyone and everything is so that questions can be
answered (and supporting facts recorded) exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

ACTORS = ("mary", "john", "sandra", "daniel", "fred", "bill", "julie", "jeff")
LOCATIONS = (
    "kitchen",
    "garden",
    "office",
    "bathroom",
    "bedroom",
    "hallway",
    "cinema",
    "park",
    "school",
)
OBJECTS = ("apple", "football", "milk", "book", "pajamas")
MOVE_VERBS = ("went to", "travelled to", "moved to", "journeyed to")
GRAB_VERBS = ("got", "grabbed", "took", "picked up")
DROP_VERBS = ("dropped", "discarded", "left", "put down")

# Pools used by the reasoning tasks that do not involve actors.
ANIMALS = ("wolf", "mouse", "cat", "sheep", "swan", "lion", "frog", "rhino")
ANIMAL_PLURALS = {
    "wolf": "wolves",
    "mouse": "mice",
    "cat": "cats",
    "sheep": "sheep",
    "swan": "swans",
    "lion": "lions",
    "frog": "frogs",
    "rhino": "rhinos",
}
ANIMAL_NAMES = ("gertrude", "lily", "bernhard", "brian", "greg", "julius", "emily", "winona")
COLORS = ("white", "gray", "green", "yellow")
SHAPES = ("triangle", "pink rectangle", "blue square", "red square", "red sphere")
CONTAINERS = ("box", "suitcase", "chest", "chocolates box", "crate", "cupboard")
DIRECTIONS = ("north", "south", "east", "west")
DIRECTION_LETTER = {"north": "n", "south": "s", "east": "e", "west": "w"}
DIRECTION_DELTA = {
    "north": (0, 1),
    "south": (0, -1),
    "east": (1, 0),
    "west": (-1, 0),
}
OPPOSITE_DIRECTION = {
    "north": "south",
    "south": "north",
    "east": "west",
    "west": "east",
}
MOTIVES = ("hungry", "thirsty", "tired", "bored")
MOTIVE_TARGET = {
    "hungry": "kitchen",
    "thirsty": "kitchen",
    "tired": "bedroom",
    "bored": "garden",
}


@dataclass(frozen=True)
class WorldConfig:
    """Which pools (and how much of them) a generator draws from."""

    n_actors: int = 4
    n_locations: int = 6
    n_objects: int = 3

    def actors(self) -> tuple[str, ...]:
        if not 1 <= self.n_actors <= len(ACTORS):
            raise ValueError(f"n_actors must be in [1, {len(ACTORS)}]")
        return ACTORS[: self.n_actors]

    def locations(self) -> tuple[str, ...]:
        if not 2 <= self.n_locations <= len(LOCATIONS):
            raise ValueError(f"n_locations must be in [2, {len(LOCATIONS)}]")
        return LOCATIONS[: self.n_locations]

    def objects(self) -> tuple[str, ...]:
        if not 1 <= self.n_objects <= len(OBJECTS):
            raise ValueError(f"n_objects must be in [1, {len(OBJECTS)}]")
        return OBJECTS[: self.n_objects]


@dataclass
class WorldState:
    """Mutable ground truth of the actor/object/location world.

    Every mutation records the index of the sentence that caused it, so
    question generators can cite supporting facts precisely.
    """

    actor_location: dict[str, str] = field(default_factory=dict)
    actor_location_fact: dict[str, int] = field(default_factory=dict)
    holding: dict[str, list[str]] = field(default_factory=dict)
    holding_fact: dict[tuple[str, str], int] = field(default_factory=dict)
    object_location_history: dict[str, list[tuple[str, int]]] = field(default_factory=dict)

    def move(self, actor: str, location: str, fact_index: int) -> None:
        self.actor_location[actor] = location
        self.actor_location_fact[actor] = fact_index
        for obj in self.holding.get(actor, []):
            self._record_object_location(obj, location, fact_index)

    def grab(self, actor: str, obj: str, fact_index: int) -> None:
        self.holding.setdefault(actor, []).append(obj)
        self.holding_fact[(actor, obj)] = fact_index
        location = self.actor_location.get(actor)
        if location is not None:
            self._record_object_location(obj, location, fact_index)

    def drop(self, actor: str, obj: str, fact_index: int) -> None:
        carried = self.holding.get(actor, [])
        if obj not in carried:
            raise ValueError(f"{actor} is not holding {obj}")
        carried.remove(obj)
        self.holding_fact.pop((actor, obj), None)

    def give(self, giver: str, receiver: str, obj: str, fact_index: int) -> None:
        self.drop(giver, obj, fact_index)
        self.grab(receiver, obj, fact_index)

    def carried_by(self, actor: str) -> list[str]:
        return list(self.holding.get(actor, []))

    def carrier_of(self, obj: str) -> str | None:
        for actor, objs in self.holding.items():
            if obj in objs:
                return actor
        return None

    def location_of_object(self, obj: str) -> str | None:
        history = self.object_location_history.get(obj)
        return history[-1][0] if history else None

    def _record_object_location(self, obj: str, location: str, fact_index: int) -> None:
        history = self.object_location_history.setdefault(obj, [])
        if not history or history[-1][0] != location:
            history.append((location, fact_index))


def choose(rng: np.random.Generator, pool) -> str:
    """Pick one element of ``pool`` uniformly (numpy Generator helper)."""
    return pool[int(rng.integers(len(pool)))]


def choose_distinct(rng: np.random.Generator, pool, count: int) -> list[str]:
    """Pick ``count`` distinct elements of ``pool`` uniformly."""
    if count > len(pool):
        raise ValueError(f"cannot pick {count} distinct items from {len(pool)}")
    indices = rng.choice(len(pool), size=count, replace=False)
    return [pool[int(i)] for i in indices]
