"""Density estimation of per-index logit values (Step 1 of Algorithm 1).

Two estimators are provided:

* :class:`LogitHistogram` — fixed-bin histogram, the cheap estimator an
  embedded host can compute (``HG_i`` / ``HG_ibar`` in Algorithm 1).
* :class:`GaussianKde` — kernel density estimation with a Gaussian
  kernel and Silverman bandwidth, the estimator the paper names for
  ``p(z_i | y = i)``.
"""

from __future__ import annotations

import numpy as np


class LogitHistogram:
    """Streaming 1-D histogram with fixed bin edges.

    Edges are set once from an expected value range; samples outside the
    range fall into the edge bins so no mass is lost.
    """

    def __init__(self, low: float, high: float, n_bins: int = 64):
        if not np.isfinite(low) or not np.isfinite(high) or low >= high:
            raise ValueError(f"invalid histogram range [{low}, {high}]")
        if n_bins < 2:
            raise ValueError("need at least 2 bins")
        self.edges = np.linspace(low, high, n_bins + 1)
        self.counts = np.zeros(n_bins, dtype=np.int64)

    @property
    def n_bins(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def bin_index(self, value: float) -> int:
        idx = int(np.searchsorted(self.edges, value, side="right")) - 1
        return min(max(idx, 0), self.n_bins - 1)

    def update(self, value: float) -> None:
        self.counts[self.bin_index(value)] += 1

    def update_many(self, values: np.ndarray) -> None:
        """Vectorised bulk update; equivalent to ``update`` per value."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="right") - 1
        np.clip(idx, 0, self.n_bins - 1, out=idx)
        self.counts += np.bincount(idx, minlength=self.n_bins)

    def pdf(self, value: float) -> float:
        """Density estimate at ``value`` (0 when the histogram is empty)."""
        if self.total == 0:
            return 0.0
        width = self.edges[1] - self.edges[0]
        return self.counts[self.bin_index(value)] / (self.total * width)

    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def mean(self) -> float:
        if self.total == 0:
            return float("nan")
        return float((self.bin_centers() * self.counts).sum() / self.total)


class GaussianKde:
    """Gaussian kernel density estimate with Silverman's bandwidth."""

    def __init__(self, samples: np.ndarray, bandwidth: float | None = None):
        samples = np.asarray(samples, dtype=np.float64).ravel()
        if samples.size == 0:
            raise ValueError("KDE needs at least one sample")
        self.samples = samples
        if bandwidth is None:
            std = float(samples.std())
            n = samples.size
            # Silverman's rule; fall back to a fixed width for degenerate data.
            bandwidth = 1.06 * std * n ** (-1 / 5) if std > 0 else 0.1
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = float(bandwidth)

    def pdf(self, value: float | np.ndarray) -> np.ndarray | float:
        value = np.asarray(value, dtype=np.float64)
        scalar = value.ndim == 0
        grid = np.atleast_1d(value)
        z = (grid[:, None] - self.samples[None, :]) / self.bandwidth
        dens = np.exp(-0.5 * z**2).sum(axis=1)
        dens /= self.samples.size * self.bandwidth * np.sqrt(2 * np.pi)
        return float(dens[0]) if scalar else dens
