"""Maximum inner-product search (MIPS) engines for the output layer.

The OUTPUT module computes logits ``z_i = W_o[i] . h`` sequentially and
returns the argmax (Eq. 6). This package provides:

* :class:`ExactMips` — the conventional full sequential search
  (Fig. 2a), counting every dot product and comparison.
* :class:`InferenceThresholding` — the paper's data-based speculative
  MIPS (Algorithm 1, Fig. 2b): per-index logit distributions estimated
  on the training set, Bayes-posterior thresholds, and an efficient
  visiting order by silhouette coefficient.
* Related-work baselines: asymmetric-LSH (Shrivastava & Li 2014) and
  spherical k-means clustering MIPS (Auvolat et al. 2015).
"""

from repro.mips.exact import ExactMips
from repro.mips.histograms import GaussianKde, LogitHistogram
from repro.mips.lsh import AlshMips
from repro.mips.clustering import ClusteringMips
from repro.mips.ordering import index_order_by_silhouette, silhouette_coefficient
from repro.mips.stats import SearchResult, SearchStats
from repro.mips.thresholding import InferenceThresholding, ThresholdModel, fit_threshold_model

__all__ = [
    "ExactMips",
    "LogitHistogram",
    "GaussianKde",
    "AlshMips",
    "ClusteringMips",
    "silhouette_coefficient",
    "index_order_by_silhouette",
    "SearchResult",
    "SearchStats",
    "InferenceThresholding",
    "ThresholdModel",
    "fit_threshold_model",
]
