"""Maximum inner-product search (MIPS) backends for the output layer.

The OUTPUT module computes logits ``z_i = W_o[i] . h`` sequentially and
returns the argmax (Eq. 6). This package provides that search as a
pluggable, string-keyed *backend* layer (:mod:`repro.mips.backend`):

* ``"exact"`` — :class:`ExactMips`, the conventional full sequential
  search (Fig. 2a), counting every dot product and comparison.
* ``"threshold"`` — :class:`InferenceThresholding`, the paper's
  data-based speculative MIPS (Algorithm 1, Fig. 2b): per-index logit
  distributions estimated on the training set, Bayes-posterior
  thresholds, and an efficient visiting order by silhouette coefficient.
* ``"alsh"`` / ``"clustering"`` — related-work baselines: asymmetric
  LSH (Shrivastava & Li 2014) and spherical k-means clustering MIPS
  (Auvolat et al. 2015).

Every backend implements ``search(query) -> SearchResult`` and a
vectorized ``search_batch(queries) -> BatchSearchResult`` (stacked
labels/logits/comparisons/early-exit arrays), and is constructed via
``get_backend(name).build(weight, order=None, **context)``.

Any backend composes with the shard-parallel wrapper
(:mod:`repro.mips.sharding`) through the ``"sharded:<inner>"`` name —
``get_backend("sharded:threshold")`` — which partitions ``search_batch``
across the batch or vocab axis and merges with bit-exact parity.
"""

from repro.mips.backend import (
    MipsBackend,
    available_backends,
    build_backend,
    get_backend,
    inner_products,
    register_backend,
)
from repro.mips.sharding import ShardedBackend, ShardPlan
from repro.mips.exact import ExactMips
from repro.mips.histograms import GaussianKde, LogitHistogram
from repro.mips.lsh import AlshMips
from repro.mips.clustering import ClusteringMips
from repro.mips.ordering import index_order_by_silhouette, silhouette_coefficient
from repro.mips.stats import BatchSearchResult, SearchResult, SearchStats, ShardStats
from repro.mips.thresholding import InferenceThresholding, ThresholdModel, fit_threshold_model

__all__ = [
    "MipsBackend",
    "available_backends",
    "build_backend",
    "get_backend",
    "inner_products",
    "register_backend",
    "ShardPlan",
    "ShardStats",
    "ShardedBackend",
    "ExactMips",
    "LogitHistogram",
    "GaussianKde",
    "AlshMips",
    "ClusteringMips",
    "silhouette_coefficient",
    "index_order_by_silhouette",
    "BatchSearchResult",
    "SearchResult",
    "SearchStats",
    "InferenceThresholding",
    "ThresholdModel",
    "fit_threshold_model",
]
