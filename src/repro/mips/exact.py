"""Conventional full sequential MIPS (Fig. 2a)."""

from __future__ import annotations

import numpy as np

from repro.mips.stats import SearchResult


class ExactMips:
    """Sequential scan over every output row — the baseline the OUTPUT
    module implements without inference thresholding.

    The scan order is configurable so the hardware simulator can reuse
    this engine with the silhouette ordering while remaining exact.
    """

    def __init__(self, weight: np.ndarray, order: np.ndarray | None = None):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be (num_indices, dim)")
        if order is None:
            order = np.arange(self.weight.shape[0])
        self.order = np.asarray(order, dtype=np.int64)
        if sorted(self.order.tolist()) != list(range(self.weight.shape[0])):
            raise ValueError("order must be a permutation of all indices")

    @property
    def num_indices(self) -> int:
        return self.weight.shape[0]

    def search(self, query: np.ndarray) -> SearchResult:
        """Scan all indices; returns the exact argmax."""
        query = np.asarray(query, dtype=np.float64)
        best_index = -1
        best_logit = -np.inf
        comparisons = 0
        for index in self.order:
            logit = float(self.weight[index] @ query)
            comparisons += 1
            if logit > best_logit:
                best_logit = logit
                best_index = int(index)
        return SearchResult(best_index, best_logit, comparisons)

    def search_batch(self, queries: np.ndarray) -> list[SearchResult]:
        return [self.search(q) for q in np.asarray(queries)]
