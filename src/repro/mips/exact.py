"""Conventional full sequential MIPS (Fig. 2a)."""

from __future__ import annotations

import numpy as np

from repro.mips.backend import as_query_matrix, inner_products, register_backend
from repro.mips.stats import BatchSearchResult, SearchResult


@register_backend("exact", "full", "brute")
class ExactMips:
    """Scan over every output row — the baseline the OUTPUT module
    implements without inference thresholding.

    The scan order is configurable so the hardware simulator can reuse
    this engine with the silhouette ordering while remaining exact. The
    scan itself is vectorized (one matvec/matmul plus an argmax in scan
    order) but reports the same result and the same ``comparisons``
    count as the sequential reference loop: ties on the maximum logit
    resolve to the first index in ``order``, because the running-maximum
    comparator uses a strict ``>``.
    """

    #: Documented agreement with the brute-force argmax (this IS it).
    min_recall = 1.0

    def __init__(self, weight: np.ndarray, order: np.ndarray | None = None):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be (num_indices, dim)")
        if order is None:
            order = np.arange(self.weight.shape[0])
        self.order = np.asarray(order, dtype=np.int64)
        if sorted(self.order.tolist()) != list(range(self.weight.shape[0])):
            raise ValueError("order must be a permutation of all indices")
        # Rows pre-gathered into scan order: the whole search is then
        # one contiguous matvec + first-occurrence argmax.
        self._ordered_weight = self.weight[self.order]

    @classmethod
    def build(
        cls,
        weight: np.ndarray,
        order: np.ndarray | None = None,
        *,
        threshold_model=None,
        rho: float = 1.0,
        index_ordering: bool = True,
        seed: int = 0,
    ) -> "ExactMips":
        """Registry hook; the thresholding context is accepted unused."""
        return cls(weight, order)

    @property
    def num_indices(self) -> int:
        return self.weight.shape[0]

    def search(self, query: np.ndarray) -> SearchResult:
        """Scan all indices; returns the exact argmax."""
        query = np.asarray(query, dtype=np.float64)
        logits = inner_products(query[None, :], self._ordered_weight)[0]
        pos = int(np.argmax(logits))  # first max in scan order wins ties
        return SearchResult(int(self.order[pos]), float(logits[pos]), logits.shape[0])

    def _search_loop(self, query: np.ndarray) -> SearchResult:
        """Seed per-row reference loop, kept to pin the vectorized scan
        (tie-breaking and comparison count) in regression tests."""
        query = np.asarray(query, dtype=np.float64)
        best_index = -1
        best_logit = -np.inf
        comparisons = 0
        for index in self.order:
            logit = float(self.weight[index] @ query)
            comparisons += 1
            if logit > best_logit:
                best_logit = logit
                best_index = int(index)
        return SearchResult(best_index, best_logit, comparisons)

    def search_batch(self, queries: np.ndarray) -> BatchSearchResult:
        """Whole-batch exact scan: one (B, V) matmul + row argmax."""
        queries = as_query_matrix(queries)
        logits = inner_products(queries, self._ordered_weight)  # (B, V) in scan order
        pos = np.argmax(logits, axis=1)
        rows = np.arange(len(queries))
        return BatchSearchResult(
            labels=self.order[pos],
            logits=logits[rows, pos],
            comparisons=np.full(len(queries), self.num_indices, dtype=np.int64),
            early_exits=np.zeros(len(queries), dtype=bool),
        )
