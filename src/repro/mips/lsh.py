"""Asymmetric LSH MIPS baseline (Shrivastava & Li, NIPS 2014).

Related-work Section VI-B: hashing approximations of MIPS exist but are
"too slow to be used in the output layer of a DNN in resource-limited
environments". This implementation lets the benchmarks quantify that
claim against inference thresholding on the same queries.

The MIPS -> near-neighbour reduction appends ||x||^{2^k} terms to the
database vectors (after scaling into the unit ball) so signed random
projections approximate inner-product order.
"""

from __future__ import annotations

import numpy as np

from repro.mips.backend import (
    as_query_matrix,
    inner_products,
    register_backend,
    scan_candidates,
)
from repro.mips.stats import BatchSearchResult, SearchResult


@register_backend("alsh", "lsh", "hashing")
class AlshMips:
    """L2-ALSH(SL) with signed-random-projection hash tables.

    The batched kernel hashes every query against every table in a
    handful of matmuls; only the per-query bucket union stays a Python
    loop (hash tables are inherently pointer-chasing), after which all
    candidate logits are scored in one padded gather + einsum.
    """

    #: Documented agreement with the exact argmax on gaussian data at
    #: the default table configuration (hashing recall is what
    #: Section VI-B argues is the method's weakness).
    min_recall = 0.5

    def __init__(
        self,
        weight: np.ndarray,
        n_tables: int = 8,
        n_bits: int = 8,
        m_augment: int = 3,
        scale: float = 0.83,
        seed: int = 0,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be (num_indices, dim)")
        self.n_tables = int(n_tables)
        self.n_bits = int(n_bits)
        self.m_augment = int(m_augment)
        rng = np.random.default_rng(seed)

        max_norm = float(np.linalg.norm(self.weight, axis=1).max())
        self._scale = scale / max_norm if max_norm > 0 else 1.0
        scaled = self.weight * self._scale
        norms = np.linalg.norm(scaled, axis=1)
        # Augment: [x, ||x||^2, ||x||^4, ...]
        augments = [norms ** (2 ** (k + 1)) for k in range(self.m_augment)]
        self._database = np.hstack([scaled] + [a[:, None] for a in augments])

        dim = self._database.shape[1]
        self._planes = rng.normal(size=(self.n_tables, self.n_bits, dim))
        self._tables: list[dict[int, list[int]]] = []
        for t in range(self.n_tables):
            table: dict[int, list[int]] = {}
            codes = self._hash_codes(self._database, t)
            for row, code in enumerate(codes):
                table.setdefault(int(code), []).append(row)
            self._tables.append(table)

    def _hash_codes(self, points: np.ndarray, table: int) -> np.ndarray:
        # Partition-stable projections: a sign flip of a near-zero
        # projection under batch slicing would change candidate sets.
        projections = inner_products(points, self._planes[table])
        bits = (projections > 0).astype(np.int64)
        weights = 1 << np.arange(self.n_bits, dtype=np.int64)
        return bits @ weights

    def _augment_queries(self, queries: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        q = np.divide(queries, norms, out=queries.copy(), where=norms > 0)
        # Asymmetric transform: queries are padded with 1/2 entries.
        return np.hstack([q, np.full((len(queries), self.m_augment), 0.5)])

    @classmethod
    def build(
        cls,
        weight: np.ndarray,
        order: np.ndarray | None = None,
        *,
        threshold_model=None,
        rho: float = 1.0,
        index_ordering: bool = True,
        seed: int = 0,
        n_tables: int = 8,
        n_bits: int = 8,
        m_augment: int = 3,
        scale: float = 0.83,
    ) -> "AlshMips":
        """Registry hook; thresholding context is accepted and unused."""
        return cls(
            weight,
            n_tables=n_tables,
            n_bits=n_bits,
            m_augment=m_augment,
            scale=scale,
            seed=seed,
        )

    @property
    def num_indices(self) -> int:
        return self.weight.shape[0]

    def search(self, query: np.ndarray) -> SearchResult:
        """Probe all tables, rank candidate union by true inner product."""
        return self.search_batch(np.asarray(query, dtype=np.float64)).result(0)

    def search_batch(self, queries: np.ndarray) -> BatchSearchResult:
        """Hash the whole batch at once, then score all candidates."""
        queries = as_query_matrix(queries)
        augmented = self._augment_queries(queries)
        codes = np.stack(
            [self._hash_codes(augmented, t) for t in range(self.n_tables)]
        )  # (T, B)
        candidates: list[np.ndarray] = []
        for b in range(len(queries)):
            union: set[int] = set()
            for t in range(self.n_tables):
                union.update(self._tables[t].get(int(codes[t, b]), []))
            if union:
                # Ascending index order, so max ties resolve to the
                # smallest candidate index like the sequential scan.
                candidates.append(np.fromiter(sorted(union), dtype=np.int64))
            else:
                candidates.append(np.arange(self.weight.shape[0], dtype=np.int64))
        return scan_candidates(self.weight, queries, candidates)
