"""Asymmetric LSH MIPS baseline (Shrivastava & Li, NIPS 2014).

Related-work Section VI-B: hashing approximations of MIPS exist but are
"too slow to be used in the output layer of a DNN in resource-limited
environments". This implementation lets the benchmarks quantify that
claim against inference thresholding on the same queries.

The MIPS -> near-neighbour reduction appends ||x||^{2^k} terms to the
database vectors (after scaling into the unit ball) so signed random
projections approximate inner-product order.
"""

from __future__ import annotations

import numpy as np

from repro.mips.stats import SearchResult


class AlshMips:
    """L2-ALSH(SL) with signed-random-projection hash tables."""

    def __init__(
        self,
        weight: np.ndarray,
        n_tables: int = 8,
        n_bits: int = 8,
        m_augment: int = 3,
        scale: float = 0.83,
        seed: int = 0,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be (num_indices, dim)")
        self.n_tables = int(n_tables)
        self.n_bits = int(n_bits)
        self.m_augment = int(m_augment)
        rng = np.random.default_rng(seed)

        max_norm = float(np.linalg.norm(self.weight, axis=1).max())
        self._scale = scale / max_norm if max_norm > 0 else 1.0
        scaled = self.weight * self._scale
        norms = np.linalg.norm(scaled, axis=1)
        # Augment: [x, ||x||^2, ||x||^4, ...]
        augments = [norms ** (2 ** (k + 1)) for k in range(self.m_augment)]
        self._database = np.hstack([scaled] + [a[:, None] for a in augments])

        dim = self._database.shape[1]
        self._planes = rng.normal(size=(self.n_tables, self.n_bits, dim))
        self._tables: list[dict[int, list[int]]] = []
        for t in range(self.n_tables):
            table: dict[int, list[int]] = {}
            codes = self._hash_codes(self._database, t)
            for row, code in enumerate(codes):
                table.setdefault(int(code), []).append(row)
            self._tables.append(table)

    def _hash_codes(self, points: np.ndarray, table: int) -> np.ndarray:
        projections = points @ self._planes[table].T
        bits = (projections > 0).astype(np.int64)
        weights = 1 << np.arange(self.n_bits, dtype=np.int64)
        return bits @ weights

    def _augment_query(self, query: np.ndarray) -> np.ndarray:
        norm = float(np.linalg.norm(query))
        q = query / norm if norm > 0 else query
        # Asymmetric transform: query is padded with 1/2 entries.
        return np.concatenate([q, np.full(self.m_augment, 0.5)])

    def search(self, query: np.ndarray) -> SearchResult:
        """Probe all tables, rank candidate union by true inner product."""
        query = np.asarray(query, dtype=np.float64)
        augmented = self._augment_query(query)
        candidates: set[int] = set()
        for t in range(self.n_tables):
            code = int(self._hash_codes(augmented[None, :], t)[0])
            candidates.update(self._tables[t].get(code, []))
        if not candidates:
            candidates = set(range(self.weight.shape[0]))
        best_index = -1
        best_logit = -np.inf
        comparisons = 0
        for index in sorted(candidates):
            logit = float(self.weight[index] @ query)
            comparisons += 1
            if logit > best_logit:
                best_logit = logit
                best_index = index
        return SearchResult(best_index, best_logit, comparisons)

    def search_batch(self, queries: np.ndarray) -> list[SearchResult]:
        return [self.search(q) for q in np.asarray(queries)]
