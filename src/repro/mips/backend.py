"""Pluggable MIPS backend layer: protocol, registry, shared kernels.

Every output-layer search engine (the exact scan, the paper's inference
thresholding, and the related-work ALSH/clustering baselines) is a
*backend*: an object exposing

* ``search(query) -> SearchResult`` — one query,
* ``search_batch(queries) -> BatchSearchResult`` — a genuinely
  vectorized whole-batch kernel returning stacked arrays,

built from a string-keyed registry::

    from repro.mips import get_backend
    engine = get_backend("threshold").build(
        weights.w_o, threshold_model=tm, rho=1.0
    )

Each registered class carries a ``build(weight, order=None, **context)``
classmethod with a uniform keyword surface (``threshold_model``,
``rho``, ``index_ordering``, ``seed`` plus backend-specific tuning
knobs), so backend choice is one constructor argument for every
consumer — the batch inference engine, the evaluation experiments, the
hardware simulator's OUTPUT module and the CLI.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.mips.stats import BatchSearchResult, SearchResult


@runtime_checkable
class MipsBackend(Protocol):
    """Structural interface every registered MIPS engine satisfies.

    Classes may additionally set ``requires_threshold_model = True`` so
    consumers (e.g. the accelerator constructor) can fail fast when no
    fitted :class:`~repro.mips.thresholding.ThresholdModel` is at hand.
    """

    weight: np.ndarray

    def search(self, query: np.ndarray) -> SearchResult: ...

    def search_batch(self, queries: np.ndarray) -> BatchSearchResult: ...


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, type] = {}
_CANONICAL: dict[str, type] = {}


def register_backend(name: str, *aliases: str):
    """Class decorator adding a backend under ``name`` (plus aliases)."""

    def decorator(cls: type) -> type:
        for key in (name, *aliases):
            key = key.strip().lower()
            if key in _REGISTRY and _REGISTRY[key] is not cls:
                raise ValueError(
                    f"MIPS backend name {key!r} is already registered "
                    f"to {_REGISTRY[key].__name__}"
                )
            _REGISTRY[key] = cls
        cls.backend_name = name
        _CANONICAL[name] = cls
        return cls

    return decorator


def available_backends() -> tuple[str, ...]:
    """Canonical names of every registered backend, sorted."""
    return tuple(sorted(_CANONICAL))


#: Composition prefix: ``"sharded:<inner>"`` resolves to a
#: :class:`~repro.mips.sharding.ShardedBackend` factory over the inner
#: registered backend (e.g. ``get_backend("sharded:exact")``).
SHARDED_PREFIX = "sharded:"


def get_backend(name: str) -> type:
    """Look up a backend class by name or alias (case-insensitive).

    Names starting with ``"sharded:"`` resolve to a partition-parallel
    wrapper of the inner backend — ``get_backend("sharded:threshold")``
    returns a factory whose ``build(...)`` accepts the inner backend's
    context plus ``n_shards``/``shard_axis``/``merge``.
    """
    try:
        key = name.strip().lower()
    except AttributeError:
        raise TypeError(f"backend name must be a string, got {type(name).__name__}")
    if key.startswith(SHARDED_PREFIX):
        from repro.mips.sharding import sharded_backend_factory

        return sharded_backend_factory(key[len(SHARDED_PREFIX):])
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown MIPS backend {name!r}; available: "
            f"{', '.join(available_backends())} "
            f"(each also composable as 'sharded:<name>')"
        )
    return _REGISTRY[key]


def build_backend(
    name: str, weight: np.ndarray, order: np.ndarray | None = None, **context
) -> MipsBackend:
    """Shorthand for ``get_backend(name).build(weight, order, **context)``."""
    return get_backend(name).build(weight, order, **context)


# ---------------------------------------------------------------------------
# Shared batched kernels
# ---------------------------------------------------------------------------
def inner_products(queries: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """The (B, N) inner-product matrix ``queries @ rows.T`` — computed
    with a *partition-stable* kernel.

    Every scoring engine routes its logit evaluations through this one
    function because the sharded backend's exact-parity contract needs
    a numeric guarantee a plain BLAS ``@`` cannot give: slicing either
    operand along the batch or row axis must reproduce the exact same
    bits as the unsliced call. BLAS dispatches different micro-kernels
    (and different reduction orders) depending on operand shape, so
    ``Q[a:b] @ W.T`` can differ from ``(Q @ W.T)[a:b]`` in the last
    ulp. ``np.einsum`` without ``optimize`` computes each output
    element as a fixed-order reduction over its own query/row fiber
    pair, independent of the other rows present in the call — which
    makes shard merges bit-identical by construction, on any CPU.
    """
    return np.einsum("be,ne->bn", queries, rows, optimize=False)


def scan_candidates(
    weight: np.ndarray,
    queries: np.ndarray,
    candidates: list[np.ndarray],
    base_comparisons: int | np.ndarray = 0,
) -> BatchSearchResult:
    """Score per-query candidate lists in one padded gather + einsum.

    ``candidates[b]`` is query b's visit order; ties break to the first
    candidate in that order, exactly like the sequential scan's strict
    ``>`` running maximum. ``base_comparisons`` adds fixed per-query
    costs (e.g. the centroid dot products of the clustering index).
    """
    queries = np.asarray(queries, dtype=np.float64)
    n_queries = len(candidates)
    counts = np.array([len(c) for c in candidates], dtype=np.int64)
    if n_queries == 0 or int(counts.max(initial=0)) == 0:
        return BatchSearchResult(
            labels=np.full(n_queries, -1, dtype=np.int64),
            logits=np.full(n_queries, -np.inf),
            comparisons=np.broadcast_to(
                np.asarray(base_comparisons, dtype=np.int64), (n_queries,)
            ).copy(),
            early_exits=np.zeros(n_queries, dtype=bool),
        )
    width = int(counts.max())
    padded = np.zeros((n_queries, width), dtype=np.int64)
    for b, cand in enumerate(candidates):
        padded[b, : len(cand)] = cand
    valid = np.arange(width)[None, :] < counts[:, None]
    # (B, C) candidate logits; padding slots are masked to -inf so the
    # row argmax lands on the first real maximum in visit order.
    scores = np.einsum("bce,be->bc", weight[padded], queries)
    scores = np.where(valid, scores, -np.inf)
    pos = np.argmax(scores, axis=1)
    rows = np.arange(n_queries)
    # Rows with no candidates keep the sequential scan's -1 sentinel
    # instead of claiming padding index 0 with a -inf logit.
    return BatchSearchResult(
        labels=np.where(counts > 0, padded[rows, pos], -1),
        logits=scores[rows, pos],
        comparisons=base_comparisons + counts,
        early_exits=np.zeros(n_queries, dtype=bool),
    )


def as_query_matrix(queries: np.ndarray) -> np.ndarray:
    """Normalise ``search_batch`` input to a float64 (B, E) matrix."""
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries[None, :]
    if queries.ndim != 2:
        raise ValueError(f"queries must be 1-D or 2-D, got shape {queries.shape}")
    return queries
