"""Efficient index order for inference thresholding (Step 3, Algorithm 1).

The silhouette coefficient (Rousseeuw 1987) of the two 1-D clusters
"z_i when i is the argmax" vs "z_i when it is not" measures how
separable an index's logit distribution is; indices are visited in
descending order of their average silhouette, so the most decisive
indices are tested first.
"""

from __future__ import annotations

import numpy as np


def _mean_abs_distance_sorted(value: float, sorted_values: np.ndarray, prefix: np.ndarray) -> float:
    """Mean |value - x| over sorted_values in O(log n) via prefix sums."""
    n = len(sorted_values)
    pos = int(np.searchsorted(sorted_values, value))
    left_sum = prefix[pos]
    right_sum = prefix[n] - left_sum
    return (value * pos - left_sum + right_sum - value * (n - pos)) / n


def silhouette_coefficient(
    positives: np.ndarray,
    negatives: np.ndarray,
    max_samples: int = 256,
    seed: int = 0,
) -> float:
    """Average silhouette of the positive cluster vs the negative one.

    ``positives`` are logits observed when the index was the correct
    argmax; ``negatives`` when it was not. Returns 0 when either cluster
    is empty or a silhouette is undefined (singleton clusters score by
    convention 0 in the original definition only when a==b; we keep the
    standard (b - a) / max(a, b) with a=0 for singletons).
    """
    positives = np.asarray(positives, dtype=np.float64).ravel()
    negatives = np.asarray(negatives, dtype=np.float64).ravel()
    if positives.size == 0 or negatives.size == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    if positives.size > max_samples:
        positives = rng.choice(positives, size=max_samples, replace=False)
    if negatives.size > max_samples:
        negatives = rng.choice(negatives, size=max_samples, replace=False)

    pos_sorted = np.sort(positives)
    neg_sorted = np.sort(negatives)
    pos_prefix = np.concatenate([[0.0], np.cumsum(pos_sorted)])
    neg_prefix = np.concatenate([[0.0], np.cumsum(neg_sorted)])

    scores = []
    n_pos = pos_sorted.size
    for value in pos_sorted:
        if n_pos > 1:
            # Exclude the point itself from its own-cluster distance.
            a = (
                _mean_abs_distance_sorted(value, pos_sorted, pos_prefix)
                * n_pos
                / (n_pos - 1)
            )
        else:
            a = 0.0
        b = _mean_abs_distance_sorted(value, neg_sorted, neg_prefix)
        denom = max(a, b)
        scores.append((b - a) / denom if denom > 0 else 0.0)
    return float(np.mean(scores))


def index_order_by_silhouette(
    silhouettes: np.ndarray,
    descending: bool = True,
) -> np.ndarray:
    """Visiting order of output indices by silhouette coefficient.

    Ties (and indices never seen in training, silhouette 0) keep their
    natural index order thanks to the stable sort.
    """
    silhouettes = np.asarray(silhouettes, dtype=np.float64)
    key = -silhouettes if descending else silhouettes
    return np.argsort(key, kind="stable")
