"""Result/statistics containers shared by all MIPS engines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchResult:
    """Outcome of one MIPS query.

    ``comparisons`` counts logit evaluations (each is one |E|-wide dot
    product in the OUTPUT module plus one compare), the paper's Fig. 3
    y-axis. ``early_exit`` is True when inference thresholding returned
    speculatively before scanning every index.
    """

    label: int
    logit: float
    comparisons: int
    early_exit: bool = False


@dataclass
class SearchStats:
    """Aggregate counters over many queries."""

    queries: int = 0
    comparisons: int = 0
    early_exits: int = 0
    correct: int = 0
    labels: list[int] = field(default_factory=list)

    def record(self, result: SearchResult, true_label: int | None = None) -> None:
        self.queries += 1
        self.comparisons += result.comparisons
        self.early_exits += int(result.early_exit)
        self.labels.append(result.label)
        if true_label is not None and result.label == int(true_label):
            self.correct += 1

    @property
    def mean_comparisons(self) -> float:
        return self.comparisons / self.queries if self.queries else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.queries if self.queries else 0.0

    @property
    def early_exit_rate(self) -> float:
        return self.early_exits / self.queries if self.queries else 0.0
