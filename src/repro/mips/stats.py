"""Result/statistics containers shared by all MIPS engines."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SearchResult:
    """Outcome of one MIPS query.

    ``comparisons`` counts logit evaluations (each is one |E|-wide dot
    product in the OUTPUT module plus one compare), the paper's Fig. 3
    y-axis. ``early_exit`` is True when inference thresholding returned
    speculatively before scanning every index.
    """

    label: int
    logit: float
    comparisons: int
    early_exit: bool = False


@dataclass
class ShardStats:
    """Per-shard execution statistics of one sharded ``search_batch``.

    ``sizes`` counts the items each shard processed — queries on the
    batch axis, candidate output rows on the vocab axis — and
    ``comparisons`` the logit evaluations each shard paid, so serving
    traces can show how a flush's scan work split across partitions.
    """

    axis: str  # "batch" or "vocab"
    sizes: np.ndarray  # (S,) int64 items per shard
    comparisons: np.ndarray  # (S,) int64 total logit evaluations per shard
    early_exits: np.ndarray  # (S,) int64 early-exit count per shard

    def __post_init__(self):
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        self.comparisons = np.asarray(self.comparisons, dtype=np.int64)
        self.early_exits = np.asarray(self.early_exits, dtype=np.int64)

    @property
    def n_shards(self) -> int:
        return int(self.sizes.shape[0])


@dataclass
class BatchSearchResult:
    """Stacked outcome of a whole batch of MIPS queries.

    Every registered backend's ``search_batch`` returns this container:
    one numpy array per field instead of a Python list of
    :class:`SearchResult`, so downstream consumers (the batch inference
    engine, the Fig. 3 sweep, benchmarks) can aggregate comparison and
    early-exit statistics without a per-query loop. Use ``to_list()``
    (or ``result(i)``) where scalar results are genuinely needed; the
    deprecated list-of-``SearchResult`` iteration/indexing shims were
    removed after one release.

    ``shards`` is populated by the sharded backend wrapper
    (:class:`~repro.mips.sharding.ShardedBackend`) with per-partition
    execution statistics; plain backends leave it ``None``.
    """

    labels: np.ndarray  # (B,) int64 argmax index per query
    logits: np.ndarray  # (B,) float64 winning logit per query
    comparisons: np.ndarray  # (B,) int64 logit evaluations per query
    early_exits: np.ndarray  # (B,) bool speculative-exit flag per query
    shards: ShardStats | None = None  # set by the sharded wrapper only

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.logits = np.asarray(self.logits, dtype=np.float64)
        self.comparisons = np.asarray(self.comparisons, dtype=np.int64)
        self.early_exits = np.asarray(self.early_exits, dtype=bool)
        n = self.labels.shape
        for name in ("logits", "comparisons", "early_exits"):
            if getattr(self, name).shape != n:
                raise ValueError(
                    f"{name} has shape {getattr(self, name).shape}, "
                    f"expected {n} to match labels"
                )
        if self.labels.ndim != 1:
            raise ValueError("batch result fields must be 1-D arrays")

    def __len__(self) -> int:
        return self.labels.shape[0]

    # -- aggregate views -------------------------------------------------
    @property
    def mean_comparisons(self) -> float:
        return float(self.comparisons.mean()) if len(self) else 0.0

    @property
    def early_exit_rate(self) -> float:
        return float(self.early_exits.mean()) if len(self) else 0.0

    def accuracy(self, answers: np.ndarray) -> float:
        """Fraction of queries whose label matches ``answers``."""
        answers = np.asarray(answers)
        if answers.shape != self.labels.shape:
            raise ValueError(
                f"answers has shape {answers.shape}, expected {self.labels.shape}"
            )
        return float((self.labels == answers).mean()) if len(self) else 0.0

    # -- scalar access ---------------------------------------------------
    def result(self, i: int) -> SearchResult:
        """The i-th query's outcome as a scalar :class:`SearchResult`."""
        return SearchResult(
            int(self.labels[i]),
            float(self.logits[i]),
            int(self.comparisons[i]),
            bool(self.early_exits[i]),
        )

    def to_list(self) -> list[SearchResult]:
        """Materialise the batch as scalar results (no deprecation)."""
        return [self.result(i) for i in range(len(self))]

    @classmethod
    def from_results(cls, results: list[SearchResult]) -> "BatchSearchResult":
        """Stack scalar results (for backends without a batched kernel)."""
        return cls(
            labels=np.array([r.label for r in results], dtype=np.int64),
            logits=np.array([r.logit for r in results], dtype=np.float64),
            comparisons=np.array([r.comparisons for r in results], dtype=np.int64),
            early_exits=np.array([r.early_exit for r in results], dtype=bool),
        )

@dataclass
class SearchStats:
    """Aggregate counters over many queries."""

    queries: int = 0
    comparisons: int = 0
    early_exits: int = 0
    correct: int = 0
    labels: list[int] = field(default_factory=list)

    def record(self, result: SearchResult, true_label: int | None = None) -> None:
        self.queries += 1
        self.comparisons += result.comparisons
        self.early_exits += int(result.early_exit)
        self.labels.append(result.label)
        if true_label is not None and result.label == int(true_label):
            self.correct += 1

    def record_batch(
        self, results: BatchSearchResult, true_labels: np.ndarray | None = None
    ) -> None:
        """Fold a whole stacked batch into the counters at once."""
        self.queries += len(results)
        self.comparisons += int(results.comparisons.sum())
        self.early_exits += int(results.early_exits.sum())
        self.labels.extend(int(label) for label in results.labels)
        if true_labels is not None:
            self.correct += int(
                (results.labels == np.asarray(true_labels)).sum()
            )

    @property
    def mean_comparisons(self) -> float:
        return self.comparisons / self.queries if self.queries else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.queries if self.queries else 0.0

    @property
    def early_exit_rate(self) -> float:
        return self.early_exits / self.queries if self.queries else 0.0
