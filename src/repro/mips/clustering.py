"""Clustering-based approximate MIPS baseline (Auvolat et al., 2015).

Spherical k-means over the output rows; a query visits the ``n_probe``
clusters whose centroids have the largest inner product with the query
and scans only their members.
"""

from __future__ import annotations

import numpy as np

from repro.mips.stats import SearchResult


class ClusteringMips:
    """Spherical k-means MIPS index."""

    def __init__(
        self,
        weight: np.ndarray,
        n_clusters: int = 8,
        n_probe: int = 2,
        n_iterations: int = 20,
        seed: int = 0,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be (num_indices, dim)")
        n_rows = self.weight.shape[0]
        self.n_clusters = int(min(n_clusters, n_rows))
        self.n_probe = int(min(n_probe, self.n_clusters))
        rng = np.random.default_rng(seed)

        norms = np.linalg.norm(self.weight, axis=1, keepdims=True)
        normalised = np.divide(
            self.weight, norms, out=np.zeros_like(self.weight), where=norms > 0
        )
        start = rng.choice(n_rows, size=self.n_clusters, replace=False)
        centroids = normalised[start].copy()
        assignment = np.zeros(n_rows, dtype=np.int64)
        for _ in range(n_iterations):
            similarity = normalised @ centroids.T
            new_assignment = similarity.argmax(axis=1)
            if np.array_equal(new_assignment, assignment):
                assignment = new_assignment
                break
            assignment = new_assignment
            for c in range(self.n_clusters):
                members = normalised[assignment == c]
                if len(members):
                    mean = members.mean(axis=0)
                    norm = np.linalg.norm(mean)
                    centroids[c] = mean / norm if norm > 0 else mean
        self.centroids = centroids
        self.members: list[np.ndarray] = [
            np.flatnonzero(assignment == c) for c in range(self.n_clusters)
        ]
        self.assignment = assignment

    def search(self, query: np.ndarray) -> SearchResult:
        query = np.asarray(query, dtype=np.float64)
        centroid_scores = self.centroids @ query
        probe = np.argsort(-centroid_scores)[: self.n_probe]
        best_index = -1
        best_logit = -np.inf
        comparisons = len(centroid_scores)  # centroid dots also cost work
        for cluster in probe:
            for index in self.members[cluster]:
                logit = float(self.weight[index] @ query)
                comparisons += 1
                if logit > best_logit:
                    best_logit = logit
                    best_index = int(index)
        if best_index < 0:  # all probed clusters empty; full fallback
            for index in range(self.weight.shape[0]):
                logit = float(self.weight[index] @ query)
                comparisons += 1
                if logit > best_logit:
                    best_logit = logit
                    best_index = index
        return SearchResult(best_index, best_logit, comparisons)

    def search_batch(self, queries: np.ndarray) -> list[SearchResult]:
        return [self.search(q) for q in np.asarray(queries)]
