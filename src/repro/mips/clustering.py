"""Clustering-based approximate MIPS baseline (Auvolat et al., 2015).

Spherical k-means over the output rows; a query visits the ``n_probe``
clusters whose centroids have the largest inner product with the query
and scans only their members.
"""

from __future__ import annotations

import numpy as np

from repro.mips.backend import (
    as_query_matrix,
    inner_products,
    register_backend,
    scan_candidates,
)
from repro.mips.stats import BatchSearchResult, SearchResult


@register_backend("clustering", "kmeans")
class ClusteringMips:
    """Spherical k-means MIPS index.

    The batched kernel ranks every query against every centroid in one
    matmul, assembles each query's member visit list (probe order, then
    ascending index within a cluster — the sequential scan's order) and
    scores all candidates in one padded gather + einsum.
    """

    #: Documented agreement with the exact argmax on gaussian data at
    #: the default (8 clusters, probe 2) configuration.
    min_recall = 0.6

    def __init__(
        self,
        weight: np.ndarray,
        n_clusters: int = 8,
        n_probe: int = 2,
        n_iterations: int = 20,
        seed: int = 0,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be (num_indices, dim)")
        n_rows = self.weight.shape[0]
        self.n_clusters = int(min(n_clusters, n_rows))
        self.n_probe = int(min(n_probe, self.n_clusters))
        rng = np.random.default_rng(seed)

        norms = np.linalg.norm(self.weight, axis=1, keepdims=True)
        normalised = np.divide(
            self.weight, norms, out=np.zeros_like(self.weight), where=norms > 0
        )
        start = rng.choice(n_rows, size=self.n_clusters, replace=False)
        centroids = normalised[start].copy()
        assignment = np.zeros(n_rows, dtype=np.int64)
        for _ in range(n_iterations):
            similarity = normalised @ centroids.T
            new_assignment = similarity.argmax(axis=1)
            if np.array_equal(new_assignment, assignment):
                assignment = new_assignment
                break
            assignment = new_assignment
            for c in range(self.n_clusters):
                members = normalised[assignment == c]
                if len(members):
                    mean = members.mean(axis=0)
                    norm = np.linalg.norm(mean)
                    centroids[c] = mean / norm if norm > 0 else mean
        self.centroids = centroids
        self.members: list[np.ndarray] = [
            np.flatnonzero(assignment == c) for c in range(self.n_clusters)
        ]
        self.assignment = assignment

    @classmethod
    def build(
        cls,
        weight: np.ndarray,
        order: np.ndarray | None = None,
        *,
        threshold_model=None,
        rho: float = 1.0,
        index_ordering: bool = True,
        seed: int = 0,
        n_clusters: int = 8,
        n_probe: int = 2,
        n_iterations: int = 20,
    ) -> "ClusteringMips":
        """Registry hook; thresholding context is accepted and unused."""
        return cls(
            weight,
            n_clusters=n_clusters,
            n_probe=n_probe,
            n_iterations=n_iterations,
            seed=seed,
        )

    @property
    def num_indices(self) -> int:
        return self.weight.shape[0]

    def search(self, query: np.ndarray) -> SearchResult:
        return self.search_batch(np.asarray(query, dtype=np.float64)).result(0)

    def search_batch(self, queries: np.ndarray) -> BatchSearchResult:
        """Rank all centroids at once, then score every member list."""
        queries = as_query_matrix(queries)
        centroid_scores = inner_products(queries, self.centroids)  # (B, C)
        probes = np.argsort(-centroid_scores, axis=1)[:, : self.n_probe]
        candidates: list[np.ndarray] = []
        for probe in probes:
            members = np.concatenate([self.members[c] for c in probe])
            if members.size == 0:  # all probed clusters empty; full fallback
                members = np.arange(self.weight.shape[0], dtype=np.int64)
            candidates.append(members)
        # Centroid dot products also cost work, as in the sequential scan.
        return scan_candidates(
            self.weight, queries, candidates, base_comparisons=self.n_clusters
        )
