"""Inference thresholding — the paper's Algorithm 1.

Step 1  estimate per-index logit distributions on correctly classified
        training examples (histogram HG_i for "i was the argmax",
        HG_ibar for "i was not").
Step 2  turn them into thresholds: theta_i is the smallest logit whose
        Bayes posterior p(y=i | z_i) reaches the thresholding constant
        rho.
Step 3  order indices by descending silhouette coefficient.
Step 4  at inference, scan indices in that order and return index a as
        soon as z_a > theta_a; fall back to the exact argmax when no
        logit clears its threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mips.backend import as_query_matrix, inner_products, register_backend
from repro.mips.histograms import GaussianKde, LogitHistogram
from repro.mips.ordering import index_order_by_silhouette, silhouette_coefficient
from repro.mips.stats import BatchSearchResult, SearchResult


@dataclass
class ThresholdModel:
    """Fitted Step 1-3 state, independent of the rho used at inference.

    ``thresholds(rho)`` materialises Step 2 for a given rho so one fit
    can serve the whole Fig. 3 sweep.

    Densities default to the cheap fixed-bin histograms (``HG_i`` in
    Algorithm 1); when fitted with ``density="kde"`` the posteriors use
    Gaussian kernel density estimates instead — the estimator the paper
    names for ``p(z_i | y = i)`` — at higher fitting cost.
    """

    n_indices: int
    positive_hists: dict[int, LogitHistogram]
    negative_hists: dict[int, LogitHistogram]
    priors: np.ndarray  # p(y = i) on the training set
    silhouettes: np.ndarray
    order: np.ndarray  # descending silhouette (Step 3)
    positive_kdes: dict[int, GaussianKde] | None = None
    negative_kdes: dict[int, GaussianKde] | None = None

    @property
    def uses_kde(self) -> bool:
        return self.positive_kdes is not None

    def _densities(self, index: int, value: float) -> tuple[float, float]:
        if self.uses_kde:
            pos = self.positive_kdes.get(index)
            neg = (self.negative_kdes or {}).get(index)
            like_pos = float(pos.pdf(value)) if pos is not None else 0.0
            like_neg = float(neg.pdf(value)) if neg is not None else 0.0
            return like_pos, like_neg
        pos = self.positive_hists.get(index)
        neg = self.negative_hists.get(index)
        like_pos = pos.pdf(value) if pos is not None and pos.total else 0.0
        like_neg = neg.pdf(value) if neg is not None and neg.total else 0.0
        return like_pos, like_neg

    def posterior(self, index: int, value: float) -> float:
        """p(y = i | z_i = value) via Bayes over the two densities."""
        if index not in self.positive_hists or not self.positive_hists[index].total:
            return 0.0
        prior = float(self.priors[index])
        like_pos, like_neg = self._densities(index, value)
        like_pos *= prior
        like_neg *= 1.0 - prior
        denom = like_pos + like_neg
        return like_pos / denom if denom > 0 else 0.0

    def thresholds(self, rho: float) -> np.ndarray:
        """Step 2: theta_i = min{ z : p(y=i|z) >= rho } per index.

        Indices with no positive training mass get +inf (never
        speculated). rho may be 1.0: bins where the negative histogram
        has zero density then define the threshold.
        """
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {rho}")
        theta = np.full(self.n_indices, np.inf)
        for index, pos in self.positive_hists.items():
            if pos.total == 0:
                continue
            centers = pos.bin_centers()
            candidates = [
                center
                for center, count in zip(centers, pos.counts)
                if count > 0 and self.posterior(index, float(center)) >= rho
            ]
            if candidates:
                theta[index] = float(min(candidates))
        return theta


def fit_threshold_model(
    logits: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 64,
    range_padding: float = 0.1,
    density: str = "histogram",
) -> ThresholdModel:
    """Step 1 + Step 3 of Algorithm 1 from training-set logits.

    ``logits`` is (N, I) from forward passes of the trained model M on
    the training data; ``labels`` the true training labels. Only
    correctly predicted examples update the statistics, exactly as in
    Algorithm 1. ``density`` selects the estimator for the posteriors:
    ``"histogram"`` (cheap, Algorithm 1's HG_i) or ``"kde"`` (Gaussian
    kernels, the estimator the paper names for p(z_i|y=i)).
    """
    if density not in ("histogram", "kde"):
        raise ValueError(f"unknown density estimator {density!r}")
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("logits must be (N, I)")
    if len(labels) != len(logits):
        raise ValueError("labels and logits must have the same length")
    n, n_indices = logits.shape
    if labels.size and (labels.min() < 0 or labels.max() >= n_indices):
        raise ValueError(f"labels must lie in [0, {n_indices})")

    low = float(logits.min())
    high = float(logits.max())
    pad = (high - low) * range_padding + 1e-9
    low, high = low - pad, high + pad

    positive_hists: dict[int, LogitHistogram] = {}
    negative_hists: dict[int, LogitHistogram] = {}
    positive_samples: dict[int, np.ndarray] = {}
    negative_samples: dict[int, np.ndarray] = {}
    prior_counts = np.bincount(labels, minlength=n_indices).astype(np.float64)

    # Algorithm 1 only learns from correct predictions. The statistics
    # are split per index with boolean masks over the whole (batched)
    # logit matrix rather than a per-row Python loop.
    correct = logits.argmax(axis=1) == labels
    correct_logits = logits[correct]
    correct_labels = labels[correct]
    for index in range(n_indices):
        column = correct_logits[:, index]
        is_positive = correct_labels == index
        positives = column[is_positive]
        negatives = column[~is_positive]
        if positives.size:
            hist = LogitHistogram(low, high, n_bins)
            hist.update_many(positives)
            positive_hists[index] = hist
            positive_samples[index] = positives
        if negatives.size:
            hist = LogitHistogram(low, high, n_bins)
            hist.update_many(negatives)
            negative_hists[index] = hist
            negative_samples[index] = negatives

    priors = prior_counts / max(n, 1)
    silhouettes = np.zeros(n_indices)
    empty = np.empty(0)
    for index in range(n_indices):
        silhouettes[index] = silhouette_coefficient(
            positive_samples.get(index, empty),
            negative_samples.get(index, empty),
        )
    order = index_order_by_silhouette(silhouettes)

    positive_kdes = negative_kdes = None
    if density == "kde":
        positive_kdes = {
            index: GaussianKde(samples)
            for index, samples in positive_samples.items()
        }
        negative_kdes = {
            index: GaussianKde(samples)
            for index, samples in negative_samples.items()
        }
    return ThresholdModel(
        n_indices=n_indices,
        positive_hists=positive_hists,
        negative_hists=negative_hists,
        priors=priors,
        silhouettes=silhouettes,
        order=order,
        positive_kdes=positive_kdes,
        negative_kdes=negative_kdes,
    )


@register_backend("threshold", "ith", "inference_thresholding")
class InferenceThresholding:
    """Step 4 of Algorithm 1: the speculative sequential search engine.

    The batched kernel evaluates all logits of the batch in one matmul
    (in visit order), then recovers the sequential semantics exactly:
    the first index whose logit clears its threshold wins with
    ``comparisons`` equal to its 1-based position, and rows with no
    clearing logit fall back to the full-scan argmax — identical
    labels, comparison counts and early-exit flags to the per-query
    scan, which is what the OUTPUT module's cycle model charges for.
    """

    #: Documented agreement with the exact argmax at rho = 1.0 on a
    #: trained model (paper: < 0.1 % accuracy loss; Fig. 3).
    min_recall = 0.95

    #: Consumers must supply a fitted ThresholdModel at build time.
    requires_threshold_model = True

    #: The scan order may be partitioned across vocab shards: each
    #: shard reports its first clearing position and the merge takes
    #: the earliest in global scan order, reproducing Step 4 exactly
    #: (see repro.mips.sharding). The shards snapshot ``theta`` at
    #: build time, unlike this class's per-call lookup.
    vocab_shardable = True

    def __init__(
        self,
        weight: np.ndarray,
        model: ThresholdModel,
        rho: float = 1.0,
        use_index_ordering: bool = True,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.shape[0] != model.n_indices:
            raise ValueError(
                f"weight has {self.weight.shape[0]} rows, threshold model "
                f"covers {model.n_indices} indices"
            )
        self.model = model
        self.rho = float(rho)
        self.use_index_ordering = bool(use_index_ordering)
        self.theta = model.thresholds(rho)
        self.order = (
            model.order.copy()
            if use_index_ordering
            else np.arange(model.n_indices)
        )
        self._ordered_weight = self.weight[self.order]

    @classmethod
    def build(
        cls,
        weight: np.ndarray,
        order: np.ndarray | None = None,
        *,
        threshold_model: ThresholdModel | None = None,
        rho: float = 1.0,
        index_ordering: bool = True,
        seed: int = 0,
    ) -> "InferenceThresholding":
        """Registry hook; the visit order comes from the fitted model."""
        if threshold_model is None:
            raise ValueError(
                "the 'threshold' backend requires a fitted ThresholdModel"
            )
        return cls(weight, threshold_model, rho=rho, use_index_ordering=index_ordering)

    @property
    def num_indices(self) -> int:
        return self.weight.shape[0]

    def search(self, query: np.ndarray) -> SearchResult:
        """Visit indices in order; exit early once z_a > theta_a."""
        return self.search_batch(np.asarray(query, dtype=np.float64)).result(0)

    def search_batch(self, queries: np.ndarray) -> BatchSearchResult:
        """Batched Step 4: all visit-order logits in one matmul."""
        queries = as_query_matrix(queries)
        logits = inner_products(queries, self._ordered_weight)  # (B, V) in visit order
        # theta is looked up per call (not precomputed in visit order)
        # so callers may retune ``self.theta`` between searches.
        exceed = logits > self.theta[self.order][None, :]
        speculated = exceed.any(axis=1)
        first = np.argmax(exceed, axis=1)  # first clearing index, visit order
        fallback = np.argmax(logits, axis=1)  # full-scan argmax, first wins
        pos = np.where(speculated, first, fallback)
        rows = np.arange(len(queries))
        return BatchSearchResult(
            labels=self.order[pos],
            logits=logits[rows, pos],
            comparisons=np.where(speculated, first + 1, self.num_indices),
            early_exits=speculated,
        )
