"""Shard-parallel MIPS execution: partition the scan, merge exactly.

The paper's accelerator gets its throughput from parallel PE lanes
scanning memory partitions concurrently; this module is the software
shape of that structure. A :class:`ShardedBackend` wraps any registered
backend and partitions ``search_batch`` along one of two axes:

* ``axis="batch"`` — the query axis. Each shard is any disjoint subset
  of the batch (contiguous by default), answered by the *same* inner
  backend; per-query results are scattered back to their submission
  positions. Exact for every backend, because queries are independent
  and the shared scoring kernel
  (:func:`~repro.mips.backend.inner_products`) is partition-stable.
* ``axis="vocab"`` — the candidate axis. The scan order is split into
  contiguous chunks, one weight partition per chunk over its slice of
  the output rows. Two merge overlays exist, picked by the inner
  backend:

  - exhaustive scans (``min_recall == 1.0`` — the exact backend):
    per-query winners merge with the sequential scan's strict ``>``
    running maximum, in scan order, seeded from the first shard so
    all-``-inf`` rows still resolve to the first candidate in scan
    order exactly like the unsharded argmax.
  - speculative scans declaring ``vocab_shardable = True`` (inference
    thresholding): each shard reports its first *clearing* position
    (``z > theta``) plus its local fallback argmax; the merge takes the
    earliest clearing position in global scan order (comparisons = its
    1-based position, ``early_exit`` set), falling back to the
    running-maximum merge when no shard clears — identical labels,
    logits, comparison counts and early-exit flags to the unsharded
    Step-4 kernel. The shard engines snapshot ``theta`` at build time;
    retuning thresholds afterwards requires rebuilding the wrapper.

  Other approximate engines (ALSH, clustering) raise: their candidate
  generation depends on the whole index, so a vocab partition cannot be
  bit-identical to the unsharded engine.

Both axes produce **bit-identical** :class:`BatchSearchResult` arrays
to the unwrapped backend — labels, logits, comparisons and early-exit
flags — which the sharding-parity CI matrix enforces for all four
registered engines. Per-shard execution statistics ride along in
``BatchSearchResult.shards`` and therefore surface in
``BatchTrace.search``.

Backends compose through the registry::

    engine = get_backend("sharded:threshold").build(
        w_o, threshold_model=tm, n_shards=4, shard_axis="vocab"
    )

An optional ``executor`` (any ``concurrent.futures.Executor``) runs
shard sub-searches concurrently; by default shards run sequentially and
concurrency comes from the serving scheduler's worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mips.backend import get_backend, inner_products
from repro.mips.stats import BatchSearchResult, SearchResult, ShardStats

AXES = ("batch", "vocab")
#: Merge rules: "concat" reassembles batch-axis shards at their
#: submission positions; "running-max" replays the sequential scan's
#: strict > maximum across vocab-axis partitions (speculative inner
#: scans additionally merge per-shard clearing positions first).
#: "auto" picks by axis.
MERGES = ("auto", "concat", "running-max")


@dataclass(frozen=True)
class ShardPlan:
    """How one ``search_batch`` call is partitioned.

    ``n_shards`` is an upper bound: fewer items than shards simply
    leave trailing shards empty (they are skipped, not errors).
    ``partition`` may be overridden; batch-axis partitions may be any
    disjoint cover of the items (results are scattered back by index),
    while vocab-axis partitions must stay contiguous ascending runs —
    the merge walks shards in scan order, so an interleaved vocab
    partition could not reproduce the sequential tie-break.
    """

    n_shards: int = 2
    axis: str = "batch"
    merge: str = "auto"

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.axis not in AXES:
            raise ValueError(f"axis must be one of {AXES}, got {self.axis!r}")
        if self.merge not in MERGES:
            raise ValueError(f"merge must be one of {MERGES}, got {self.merge!r}")
        resolved = self.resolved_merge
        if self.axis == "batch" and resolved != "concat":
            raise ValueError("batch-axis shards can only merge by 'concat'")
        if self.axis == "vocab" and resolved != "running-max":
            raise ValueError("vocab-axis shards can only merge by 'running-max'")

    @property
    def resolved_merge(self) -> str:
        if self.merge != "auto":
            return self.merge
        return "concat" if self.axis == "batch" else "running-max"

    def partition(self, n_items: int) -> list[np.ndarray]:
        """Split ``range(n_items)`` into ``n_shards`` contiguous chunks
        (balanced sizes, possibly empty when items are scarce)."""
        return np.array_split(np.arange(n_items, dtype=np.int64), self.n_shards)


def _check_partition_cover(parts: list[np.ndarray], n_items: int, what: str):
    """Every item assigned to exactly one shard — wrong partitions must
    fail loudly, not silently drop or duplicate results."""
    total = sum(len(p) for p in parts)
    flat = (
        np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])
        if parts
        else np.zeros(0, dtype=np.int64)
    )
    if (
        total != n_items
        or (flat.size and (flat.min() < 0 or flat.max() >= n_items))
        or not np.all(np.bincount(flat, minlength=n_items) == 1)
    ):
        raise ValueError(
            f"shard plan does not partition the {n_items} {what}: each "
            "index must appear in exactly one shard"
        )


def _check_contiguous(parts: list[np.ndarray]):
    for part in parts:
        if len(part) and not np.array_equal(
            part, np.arange(part[0], part[0] + len(part))
        ):
            raise ValueError(
                "vocab-axis shard plans must partition the scan order "
                "into contiguous ascending runs (the merge walks shards "
                "in scan order)"
            )


@dataclass
class _SpeculativeShard:
    """One vocab shard's reductions of the thresholded scan."""

    exceeded: np.ndarray  # (B,) bool: any z > theta inside this chunk
    first_pos: np.ndarray  # (B,) int64 first clearing pos, chunk-local
    first_logits: np.ndarray  # (B,) float64 logit at that position
    fallback_pos: np.ndarray  # (B,) int64 chunk-local argmax position
    fallback_logits: np.ndarray  # (B,) float64 logit at the argmax


class ShardedBackend:
    """Partition-parallel wrapper satisfying the ``MipsBackend`` protocol.

    Construct via the registry (``get_backend("sharded:<inner>")``) or
    directly with an inner backend name and its build context. The
    wrapper owns either one inner engine over the full weight (batch
    axis) or one weight partition per scan-order chunk (vocab axis).
    """

    def __init__(
        self,
        weight: np.ndarray,
        inner: str,
        plan: ShardPlan,
        order: np.ndarray | None = None,
        executor=None,
        **context,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be (num_indices, dim)")
        inner_cls = get_backend(inner)
        if getattr(inner_cls, "backend_name", "").startswith("sharded"):
            raise ValueError("sharded backends cannot be nested")
        self.inner_name = inner_cls.backend_name
        self.plan = plan
        self.executor = executor

        if plan.axis == "batch":
            self._inner = inner_cls.build(self.weight, order, **context)
            self._chunks = None
            return

        exhaustive = getattr(inner_cls, "min_recall", 0.0) >= 1.0
        speculative = getattr(inner_cls, "vocab_shardable", False)
        if not (exhaustive or speculative):
            raise ValueError(
                f"vocab-axis sharding requires an exhaustive scan "
                f"(min_recall == 1.0) or a vocab-shardable speculative "
                f"scan; backend {self.inner_name!r} is approximate — "
                f"use shard_axis='batch'"
            )
        # Partition the *scan order*, not the raw index range, so a
        # custom visit order keeps its tie-break semantics: both vocab
        # merges walk shards in scan order exactly like the sequential
        # comparator walks indices. The full-size engine only resolves
        # the order (and, for speculative scans, the thresholds) and is
        # dropped — shard partitions hold the only live weight copies.
        full = inner_cls.build(self.weight, order, **context)
        self._inner = None
        parts = plan.partition(self.weight.shape[0])
        _check_partition_cover(parts, self.weight.shape[0], "scan positions")
        _check_contiguous(parts)
        self._chunks = [full.order[part] for part in parts]
        # Global visit position where each chunk starts (empty chunks
        # contribute zero length, keeping offsets aligned).
        sizes = [len(c) for c in self._chunks]
        self._offsets = np.concatenate(([0], np.cumsum(sizes)))[:-1]
        if speculative:
            self._vocab_merge = "speculative"
            theta_ordered = full.theta[full.order]
            self._shard_engines = None
            self._spec_shards = [
                (self.weight[chunk], theta_ordered[part])
                for chunk, part in zip(self._chunks, parts)
            ]
        else:
            self._vocab_merge = "running-max"
            self._shard_engines = [
                inner_cls.build(self.weight[chunk], None, **context)
                if len(chunk)
                else None
                for chunk in self._chunks
            ]

    @property
    def num_indices(self) -> int:
        return self.weight.shape[0]

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    # -- scalar path ----------------------------------------------------
    def search(self, query: np.ndarray) -> SearchResult:
        """One query through the sharded path (parity with the inner
        backend's scalar search, which shares the same kernel)."""
        return self.search_batch(
            np.asarray(query, dtype=np.float64)[None, :]
        ).result(0)

    # -- batched path ---------------------------------------------------
    def search_batch(self, queries: np.ndarray) -> BatchSearchResult:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if self.plan.axis == "batch":
            return self._search_batch_axis(queries)
        if self._vocab_merge == "speculative":
            return self._search_vocab_speculative(queries)
        return self._search_vocab_axis(queries)

    def _run_shards(self, jobs):
        """Execute shard thunks, optionally on the configured executor."""
        if self.executor is None:
            return [job() for job in jobs]
        return [f.result() for f in [self.executor.submit(job) for job in jobs]]

    def _search_batch_axis(self, queries: np.ndarray) -> BatchSearchResult:
        parts = [p for p in self.plan.partition(len(queries)) if len(p)]
        if not parts:  # empty batch: one empty inner call keeps shapes
            empty = self._inner.search_batch(queries)
            return self._with_stats(empty, [empty], "batch", [0])
        _check_partition_cover(parts, len(queries), "queries")
        # Index with the partition arrays themselves: a plan override
        # may assign any disjoint subset to a shard, so results are
        # scattered back to their submission positions rather than
        # concatenated (which would silently assume contiguous runs).
        results = self._run_shards(
            [
                (lambda p=part: self._inner.search_batch(queries[p]))
                for part in parts
            ]
        )
        n = len(queries)
        labels = np.empty(n, dtype=np.int64)
        logits = np.empty(n, dtype=np.float64)
        comparisons = np.empty(n, dtype=np.int64)
        early_exits = np.empty(n, dtype=bool)
        for part, result in zip(parts, results):
            labels[part] = result.labels
            logits[part] = result.logits
            comparisons[part] = result.comparisons
            early_exits[part] = result.early_exits
        merged = BatchSearchResult(
            labels=labels,
            logits=logits,
            comparisons=comparisons,
            early_exits=early_exits,
        )
        return self._with_stats(merged, results, "batch", [len(p) for p in parts])

    def _search_vocab_axis(self, queries: np.ndarray) -> BatchSearchResult:
        n_queries = len(queries)
        live = [
            (chunk, engine)
            for chunk, engine in zip(self._chunks, self._shard_engines)
            if engine is not None
        ]
        results = self._run_shards(
            [
                (lambda engine=engine: engine.search_batch(queries))
                for _, engine in live
            ]
        )
        chunks = [chunk for chunk, _ in live]
        if not results:  # zero-row weight: keep the sentinel shapes
            merged = BatchSearchResult(
                labels=np.full(n_queries, -1, dtype=np.int64),
                logits=np.full(n_queries, -np.inf),
                comparisons=np.zeros(n_queries, dtype=np.int64),
                early_exits=np.zeros(n_queries, dtype=bool),
            )
            return self._with_stats(merged, results, "vocab", [])

        # Seed the running maximum from the first shard instead of a
        # -1/-inf sentinel: when every shard score is -inf (all-masked
        # candidate rows) the strict > below never fires, and the merge
        # must still fall back to the first candidate in scan order —
        # exactly what the unsharded scan's first-occurrence argmax
        # returns.
        first, chunk0 = results[0], chunks[0]
        best_labels = np.where(
            first.labels >= 0, chunk0[first.labels], -1
        ).astype(np.int64)
        best_logits = first.logits.copy()
        comparisons = first.comparisons.astype(np.int64).copy()
        for chunk, result in zip(chunks[1:], results[1:]):
            # Strict > replays the sequential comparator: an exact tie
            # stays with the earlier shard, i.e. the first index in
            # scan order, exactly like the unsharded running maximum.
            wins = result.logits > best_logits
            mapped = np.where(result.labels >= 0, chunk[result.labels], -1)
            best_logits = np.where(wins, result.logits, best_logits)
            best_labels = np.where(wins, mapped, best_labels)
            comparisons += result.comparisons
        merged = BatchSearchResult(
            labels=best_labels,
            logits=best_logits,
            comparisons=comparisons,
            early_exits=np.zeros(n_queries, dtype=bool),
        )
        return self._with_stats(
            merged, results, "vocab", [len(c) for c in chunks]
        )

    def _search_vocab_speculative(self, queries: np.ndarray) -> BatchSearchResult:
        """Vocab-sharded Step 4: merge per-shard clearing positions.

        Each shard scans its scan-order slice with the shared
        partition-stable kernel; the earliest clearing position in
        global scan order wins speculatively, otherwise the fallback
        argmax merges exactly like the exhaustive running maximum.
        """
        n_queries = len(queries)
        rows = np.arange(n_queries)

        def scan(weight, theta):
            logits = inner_products(queries, weight)  # (B, C) scan-order slice
            exceed = logits > theta[None, :]
            first_pos = np.argmax(exceed, axis=1)
            fallback_pos = np.argmax(logits, axis=1)
            return _SpeculativeShard(
                exceeded=exceed.any(axis=1),
                first_pos=first_pos,
                first_logits=logits[rows, first_pos],
                fallback_pos=fallback_pos,
                fallback_logits=logits[rows, fallback_pos],
            )

        live = [
            (chunk, offset, weight, theta)
            for chunk, offset, (weight, theta) in zip(
                self._chunks, self._offsets, self._spec_shards
            )
            if len(chunk)
        ]
        results = self._run_shards(
            [
                (lambda w=weight, t=theta: scan(w, t))
                for _, _, weight, theta in live
            ]
        )
        chunks = [chunk for chunk, _, _, _ in live]
        offsets = [offset for _, offset, _, _ in live]

        # Speculative winner: the first shard in scan order reporting a
        # clearing position — its chunk-local position plus the chunk's
        # global offset is exactly the unsharded kernel's first index
        # with z > theta.
        exceeded = np.stack([r.exceeded for r in results])  # (S, B)
        speculated = exceeded.any(axis=0)
        winner = np.argmax(exceeded, axis=0)  # first clearing shard
        spec_labels = np.stack(
            [chunk[r.first_pos] for chunk, r in zip(chunks, results)]
        )[winner, rows]
        spec_logits = np.stack([r.first_logits for r in results])[winner, rows]
        spec_comparisons = np.stack(
            [offset + r.first_pos + 1 for offset, r in zip(offsets, results)]
        )[winner, rows]

        # Fallback rows replay the full-scan argmax: strict > running
        # maximum over the shard-local argmaxes, seeded from the first
        # shard (first occurrence wins ties, like np.argmax).
        fb_labels = chunks[0][results[0].fallback_pos]
        fb_logits = results[0].fallback_logits.copy()
        for chunk, result in zip(chunks[1:], results[1:]):
            wins = result.fallback_logits > fb_logits
            fb_logits = np.where(wins, result.fallback_logits, fb_logits)
            fb_labels = np.where(wins, chunk[result.fallback_pos], fb_labels)

        comparisons = np.where(
            speculated, spec_comparisons, self.num_indices
        ).astype(np.int64)
        merged = BatchSearchResult(
            labels=np.where(speculated, spec_labels, fb_labels),
            logits=np.where(speculated, spec_logits, fb_logits),
            comparisons=comparisons,
            early_exits=speculated,
        )
        # Per-shard accounting: charge each shard the slice of the
        # merged sequential comparison count that falls inside its
        # chunk, so shard comparisons sum to the merged total exactly.
        sizes = np.array([len(c) for c in chunks], dtype=np.int64)
        per_shard = [
            int(
                np.clip(comparisons - offset, 0, size).sum()
            )
            for offset, size in zip(offsets, sizes)
        ]
        exits = [
            int((speculated & (winner == s)).sum()) for s in range(len(chunks))
        ]
        merged.shards = ShardStats(
            axis="vocab",
            sizes=sizes,
            comparisons=np.asarray(per_shard, dtype=np.int64),
            early_exits=np.asarray(exits, dtype=np.int64),
        )
        return merged

    @staticmethod
    def _with_stats(merged, shard_results, axis, sizes) -> BatchSearchResult:
        merged.shards = ShardStats(
            axis=axis,
            sizes=np.asarray(sizes, dtype=np.int64),
            comparisons=np.array(
                [int(r.comparisons.sum()) for r in shard_results], dtype=np.int64
            ),
            early_exits=np.array(
                [int(r.early_exits.sum()) for r in shard_results], dtype=np.int64
            ),
        )
        return merged


# ---------------------------------------------------------------------------
# registry factory
# ---------------------------------------------------------------------------
_FACTORY_CACHE: dict[str, type] = {}


def sharded_backend_factory(inner_name: str) -> type:
    """A class-like ``build`` target for ``get_backend("sharded:<inner>")``.

    Mirrors the inner backend's introspection attributes
    (``requires_threshold_model``, ``min_recall``, ``vocab_shardable``)
    so consumers that fail fast on missing context keep working, and
    exposes a ``build`` classmethod with the uniform registry signature
    plus the sharding knobs ``n_shards`` / ``shard_axis`` / ``merge`` /
    ``executor``.
    """
    key = inner_name.strip().lower()
    if key.startswith("sharded"):
        raise KeyError("sharded backends cannot be nested")
    inner_cls = get_backend(key)  # raises KeyError for unknown inner names
    canonical = inner_cls.backend_name
    if canonical in _FACTORY_CACHE:
        return _FACTORY_CACHE[canonical]

    def build(
        cls,
        weight: np.ndarray,
        order: np.ndarray | None = None,
        *,
        n_shards: int = 2,
        shard_axis: str = "batch",
        merge: str = "auto",
        executor=None,
        **context,
    ) -> ShardedBackend:
        plan = ShardPlan(n_shards=n_shards, axis=shard_axis, merge=merge)
        return cls(
            weight, canonical, plan, order=order, executor=executor, **context
        )

    factory = type(
        f"Sharded{inner_cls.__name__}",
        (ShardedBackend,),
        {
            "backend_name": f"sharded:{canonical}",
            "inner_backend": inner_cls,
            "requires_threshold_model": getattr(
                inner_cls, "requires_threshold_model", False
            ),
            "min_recall": getattr(inner_cls, "min_recall", 0.0),
            "vocab_shardable": getattr(inner_cls, "vocab_shardable", False),
            "build": classmethod(build),
        },
    )
    _FACTORY_CACHE[canonical] = factory
    return factory
