"""Shard-parallel MIPS execution: partition the scan, merge exactly.

The paper's accelerator gets its throughput from parallel PE lanes
scanning memory partitions concurrently; this module is the software
shape of that structure. A :class:`ShardedBackend` wraps any registered
backend and partitions ``search_batch`` along one of two axes:

* ``axis="batch"`` — the query axis. Each shard is a contiguous slice
  of the batch, answered by the *same* inner backend; results are
  merged by concatenation. Exact for every backend, because queries
  are independent and the shared scoring kernel
  (:func:`~repro.mips.backend.inner_products`) is partition-stable.
* ``axis="vocab"`` — the candidate axis. The scan order is split into
  contiguous chunks, one inner backend per chunk over its slice of the
  output rows; per-query winners are merged with the sequential scan's
  strict ``>`` running maximum, in scan order. Exactness requires the
  inner scan to visit every candidate, so this axis is restricted to
  backends documented exhaustive (``min_recall == 1.0`` — the exact
  scan); approximate or speculative engines raise.

Both axes produce **bit-identical** :class:`BatchSearchResult` arrays
to the unwrapped backend — labels, logits, comparisons and early-exit
flags — which the sharding-parity CI matrix enforces for all four
registered engines. Per-shard execution statistics ride along in
``BatchSearchResult.shards`` and therefore surface in
``BatchTrace.search``.

Backends compose through the registry::

    engine = get_backend("sharded:threshold").build(
        w_o, threshold_model=tm, n_shards=4, shard_axis="batch"
    )

An optional ``executor`` (any ``concurrent.futures.Executor``) runs
shard sub-searches concurrently; by default shards run sequentially and
concurrency comes from the serving scheduler's worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mips.backend import get_backend
from repro.mips.stats import BatchSearchResult, SearchResult, ShardStats

AXES = ("batch", "vocab")
#: Merge rules: "concat" reassembles batch-axis slices in submission
#: order; "running-max" replays the sequential scan's strict > maximum
#: across vocab-axis partitions. "auto" picks by axis.
MERGES = ("auto", "concat", "running-max")


@dataclass(frozen=True)
class ShardPlan:
    """How one ``search_batch`` call is partitioned.

    ``n_shards`` is an upper bound: fewer items than shards simply
    leave trailing shards empty (they are skipped, not errors).
    """

    n_shards: int = 2
    axis: str = "batch"
    merge: str = "auto"

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.axis not in AXES:
            raise ValueError(f"axis must be one of {AXES}, got {self.axis!r}")
        if self.merge not in MERGES:
            raise ValueError(f"merge must be one of {MERGES}, got {self.merge!r}")
        resolved = self.resolved_merge
        if self.axis == "batch" and resolved != "concat":
            raise ValueError("batch-axis shards can only merge by 'concat'")
        if self.axis == "vocab" and resolved != "running-max":
            raise ValueError("vocab-axis shards can only merge by 'running-max'")

    @property
    def resolved_merge(self) -> str:
        if self.merge != "auto":
            return self.merge
        return "concat" if self.axis == "batch" else "running-max"

    def partition(self, n_items: int) -> list[np.ndarray]:
        """Split ``range(n_items)`` into ``n_shards`` contiguous chunks
        (balanced sizes, possibly empty when items are scarce)."""
        return np.array_split(np.arange(n_items, dtype=np.int64), self.n_shards)


class ShardedBackend:
    """Partition-parallel wrapper satisfying the ``MipsBackend`` protocol.

    Construct via the registry (``get_backend("sharded:<inner>")``) or
    directly with an inner backend name and its build context. The
    wrapper owns either one inner engine over the full weight (batch
    axis) or one engine per scan-order chunk (vocab axis).
    """

    def __init__(
        self,
        weight: np.ndarray,
        inner: str,
        plan: ShardPlan,
        order: np.ndarray | None = None,
        executor=None,
        **context,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be (num_indices, dim)")
        inner_cls = get_backend(inner)
        if getattr(inner_cls, "backend_name", "").startswith("sharded"):
            raise ValueError("sharded backends cannot be nested")
        self.inner_name = inner_cls.backend_name
        self.plan = plan
        self.executor = executor

        if plan.axis == "batch":
            self._inner = inner_cls.build(self.weight, order, **context)
            self._chunks = None
        else:
            if getattr(inner_cls, "min_recall", 0.0) < 1.0:
                raise ValueError(
                    f"vocab-axis sharding requires an exhaustive scan "
                    f"(min_recall == 1.0); backend {self.inner_name!r} is "
                    f"approximate or speculative — use shard_axis='batch'"
                )
            # Partition the *scan order*, not the raw index range, so a
            # custom visit order keeps its tie-break semantics: the
            # running-max merge walks shards in scan order exactly like
            # the sequential comparator walks indices. The full-size
            # engine only resolves the order and is dropped — shard
            # engines hold the only live weight copies.
            full = inner_cls.build(self.weight, order, **context)
            self._inner = None
            self._chunks = [
                full.order[part]
                for part in plan.partition(self.weight.shape[0])
            ]
            self._shard_engines = [
                inner_cls.build(self.weight[chunk], None, **context)
                if len(chunk)
                else None
                for chunk in self._chunks
            ]

    @property
    def num_indices(self) -> int:
        return self.weight.shape[0]

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    # -- scalar path ----------------------------------------------------
    def search(self, query: np.ndarray) -> SearchResult:
        """One query through the sharded path (parity with the inner
        backend's scalar search, which shares the same kernel)."""
        return self.search_batch(
            np.asarray(query, dtype=np.float64)[None, :]
        ).result(0)

    # -- batched path ---------------------------------------------------
    def search_batch(self, queries: np.ndarray) -> BatchSearchResult:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if self.plan.axis == "batch":
            return self._search_batch_axis(queries)
        return self._search_vocab_axis(queries)

    def _run_shards(self, jobs):
        """Execute shard thunks, optionally on the configured executor."""
        if self.executor is None:
            return [job() for job in jobs]
        return [f.result() for f in [self.executor.submit(job) for job in jobs]]

    def _search_batch_axis(self, queries: np.ndarray) -> BatchSearchResult:
        parts = [p for p in self.plan.partition(len(queries)) if len(p)]
        if not parts:  # empty batch: one empty inner call keeps shapes
            empty = self._inner.search_batch(queries)
            return self._with_stats(empty, [empty], "batch", [0])
        results = self._run_shards(
            [
                (lambda p=part: self._inner.search_batch(queries[p[0]: p[-1] + 1]))
                for part in parts
            ]
        )
        merged = BatchSearchResult(
            labels=np.concatenate([r.labels for r in results]),
            logits=np.concatenate([r.logits for r in results]),
            comparisons=np.concatenate([r.comparisons for r in results]),
            early_exits=np.concatenate([r.early_exits for r in results]),
        )
        return self._with_stats(merged, results, "batch", [len(p) for p in parts])

    def _search_vocab_axis(self, queries: np.ndarray) -> BatchSearchResult:
        n_queries = len(queries)
        jobs = [
            (lambda engine=engine: engine.search_batch(queries))
            for engine in self._shard_engines
            if engine is not None
        ]
        chunks = [c for c in self._chunks if len(c)]
        results = self._run_shards(jobs)

        best_labels = np.full(n_queries, -1, dtype=np.int64)
        best_logits = np.full(n_queries, -np.inf)
        comparisons = np.zeros(n_queries, dtype=np.int64)
        for chunk, result in zip(chunks, results):
            # Strict > replays the sequential comparator: an exact tie
            # stays with the earlier shard, i.e. the first index in
            # scan order, exactly like the unsharded running maximum.
            wins = result.logits > best_logits
            best_logits = np.where(wins, result.logits, best_logits)
            best_labels = np.where(wins, chunk[result.labels], best_labels)
            comparisons += result.comparisons
        merged = BatchSearchResult(
            labels=best_labels,
            logits=best_logits,
            comparisons=comparisons,
            early_exits=np.zeros(n_queries, dtype=bool),
        )
        return self._with_stats(
            merged, results, "vocab", [len(c) for c in chunks]
        )

    @staticmethod
    def _with_stats(merged, shard_results, axis, sizes) -> BatchSearchResult:
        merged.shards = ShardStats(
            axis=axis,
            sizes=np.asarray(sizes, dtype=np.int64),
            comparisons=np.array(
                [int(r.comparisons.sum()) for r in shard_results], dtype=np.int64
            ),
            early_exits=np.array(
                [int(r.early_exits.sum()) for r in shard_results], dtype=np.int64
            ),
        )
        return merged


# ---------------------------------------------------------------------------
# registry factory
# ---------------------------------------------------------------------------
_FACTORY_CACHE: dict[str, type] = {}


def sharded_backend_factory(inner_name: str) -> type:
    """A class-like ``build`` target for ``get_backend("sharded:<inner>")``.

    Mirrors the inner backend's introspection attributes
    (``requires_threshold_model``, ``min_recall``) so consumers that
    fail fast on missing context keep working, and exposes a ``build``
    classmethod with the uniform registry signature plus the sharding
    knobs ``n_shards`` / ``shard_axis`` / ``merge`` / ``executor``.
    """
    key = inner_name.strip().lower()
    if key.startswith("sharded"):
        raise KeyError("sharded backends cannot be nested")
    inner_cls = get_backend(key)  # raises KeyError for unknown inner names
    canonical = inner_cls.backend_name
    if canonical in _FACTORY_CACHE:
        return _FACTORY_CACHE[canonical]

    def build(
        cls,
        weight: np.ndarray,
        order: np.ndarray | None = None,
        *,
        n_shards: int = 2,
        shard_axis: str = "batch",
        merge: str = "auto",
        executor=None,
        **context,
    ) -> ShardedBackend:
        plan = ShardPlan(n_shards=n_shards, axis=shard_axis, merge=merge)
        return cls(
            weight, canonical, plan, order=order, executor=executor, **context
        )

    factory = type(
        f"Sharded{inner_cls.__name__}",
        (ShardedBackend,),
        {
            "backend_name": f"sharded:{canonical}",
            "inner_backend": inner_cls,
            "requires_threshold_model": getattr(
                inner_cls, "requires_threshold_model", False
            ),
            "min_recall": getattr(inner_cls, "min_recall", 0.0),
            "build": classmethod(build),
        },
    )
    _FACTORY_CACHE[canonical] = factory
    return factory
