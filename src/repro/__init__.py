"""repro — reproduction of Park et al., DATE 2019.

"Energy-Efficient Inference Accelerator for Memory-Augmented Neural
Networks on an FPGA".

Public API overview
-------------------
``repro.nn``
    Minimal numpy reverse-mode autograd (Tensor, layers, optimisers).
``repro.babi``
    Synthetic bAbI story-world generator for all 20 QA task types.
``repro.mann``
    End-to-End Memory Network (MemN2N) model, trainer, golden
    inference engine and fixed-point quantization.
``repro.mips``
    Maximum inner-product search engines, including the paper's
    inference thresholding (Algorithm 1) and related-work baselines.
``repro.hw``
    Cycle-level dataflow simulation of the FPGA accelerator (Fig. 1),
    energy model, host-interface model and calibration constants.
``repro.devices``
    Analytic CPU/GPU baseline device models.
``repro.eval``
    Experiment drivers reproducing every table and figure.
``repro.artifacts``
    Persistent model artifacts: save/load a trained suite bit-exactly.
``repro.serving``
    Serving facade: ``open_predictor`` + micro-batching
    ``BatchScheduler`` over typed query requests/responses.
"""

from repro import artifacts, babi, devices, eval, hw, mann, mips, nn, serving, utils

__version__ = "1.1.0"

__all__ = [
    "artifacts",
    "babi",
    "devices",
    "eval",
    "hw",
    "mann",
    "mips",
    "nn",
    "serving",
    "utils",
    "__version__",
]
